"""Ablation A3 — min-token initialisation on/off.

Section 7.1 replaces the cascade's expensive top levels with a min-token
sort into 128 chunks.  This ablation compares cascade training cost and
resulting pruning with and without that initialisation.

Expected shape: initialisation cuts training time substantially (fewer and
smaller models at the top) with only a minor effect on pruning.
"""

import time

import pytest

from repro.core import TokenGroupMatrix, knn_search
from repro.datasets import make_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries

NUM_GROUPS = 64


@pytest.mark.benchmark(group="ablation-init")
def test_ablation_initialisation(report, benchmark):
    dataset = make_dataset("KOSARAK", scale=0.003, seed=0)
    queries = sample_queries(dataset, 50, seed=21)

    def evaluate():
        results = {}
        for label, initial in (("min-token-16", 16), ("no-init", 1)):
            l2p = L2PPartitioner(
                pairs_per_model=1_500,
                epochs=3,
                initial_groups=initial,
                min_group_size=8,
                seed=0,
            )
            start = time.perf_counter()
            partition = l2p.partition(dataset, NUM_GROUPS)
            train_seconds = time.perf_counter() - start
            tgm = TokenGroupMatrix(dataset, partition.groups)
            candidates = sum(
                knn_search(dataset, tgm, q, 10).stats.candidates_verified for q in queries
            )
            results[label] = (train_seconds, l2p.stats_.models_trained, candidates)
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [label, round(seconds, 3), models, candidates]
        for label, (seconds, models, candidates) in results.items()
    ]
    report(
        "ablation_init",
        "Ablation A3: cascade initialisation (min-token chunks vs none)",
        ["init", "train s", "models", "kNN candidates"],
        rows,
    )
    # Initialisation trains fewer models in less time, and pruning stays
    # within ~25% of the fully-learned cascade.
    assert results["min-token-16"][0] < results["no-init"][0]
    assert results["min-token-16"][1] < results["no-init"][1]
    assert results["min-token-16"][2] <= results["no-init"][2] * 1.25
