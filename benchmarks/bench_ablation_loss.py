"""Ablation A2 — surrogate loss (Eq 18) vs the hard loss (Eq 15).

The paper replaces Equation 15 with the Equation 18 surrogate because the
hard loss has zero gradient almost everywhere.  This ablation trains the
same cascade with both and compares the achieved (hard) objective and the
pruning behaviour of the resulting index.
"""

import pytest

from repro.core import TokenGroupMatrix, knn_search
from repro.datasets import powerlaw_similarity_dataset
from repro.learn import L2PPartitioner
from repro.partitioning import gpo_sampled
from repro.workloads import sample_queries

NUM_GROUPS = 32


@pytest.mark.benchmark(group="ablation-loss")
def test_ablation_loss_function(report, benchmark):
    dataset = powerlaw_similarity_dataset(
        1_000, 1_200, 10, alpha=1.5, num_templates=20, seed=19
    )
    queries = sample_queries(dataset, 50, seed=20)

    def evaluate():
        results = {}
        for loss in ("surrogate", "hard"):
            l2p = L2PPartitioner(
                pairs_per_model=1_200,
                epochs=3,
                initial_groups=1,
                min_group_size=6,
                loss=loss,
                seed=0,
            )
            partition = l2p.partition(dataset, NUM_GROUPS)
            tgm = TokenGroupMatrix(dataset, partition.groups)
            candidates = sum(
                knn_search(dataset, tgm, q, 10).stats.candidates_verified for q in queries
            )
            objective = gpo_sampled(dataset, partition, sample_size=24, seed=1)
            final_losses = [history[-1] for history in l2p.stats_.loss_histories]
            mean_final_loss = sum(final_losses) / len(final_losses)
            results[loss] = (objective, candidates, mean_final_loss)
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [loss, round(objective, 1), candidates, round(final_loss, 4)]
        for loss, (objective, candidates, final_loss) in results.items()
    ]
    report(
        "ablation_loss",
        "Ablation A2: Eq 18 surrogate vs Eq 15 hard loss",
        ["loss", "sampled GPO", "kNN candidates", "mean final loss"],
        rows,
    )
    # Training with the hard loss cannot move the weights; the surrogate
    # must achieve a better (or equal) partitioning objective and pruning.
    assert results["surrogate"][0] <= results["hard"][0] * 1.05
    assert results["surrogate"][1] <= results["hard"][1] * 1.05
