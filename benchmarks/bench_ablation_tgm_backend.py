"""Ablation A1 — dense vs Roaring-backed TGM.

The paper deploys the TGM compressed with Roaring [41].  This ablation
quantifies the trade-off our two backends expose: the dense numpy matrix
scans faster, the roaring backend shrinks the index on sparse universes.
"""

import time

import pytest

from repro.core import TokenGroupMatrix, range_search
from repro.datasets import make_dataset
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

NUM_GROUPS = 64


@pytest.mark.benchmark(group="ablation-tgm")
def test_ablation_tgm_backend(report, benchmark):
    dataset = make_dataset("AOL", scale=0.0005, seed=0)  # sparse: |T| >> |D| tokens/set
    partition = MinTokenPartitioner().partition(dataset, NUM_GROUPS)
    queries = sample_queries(dataset, 40, seed=18)

    def evaluate():
        results = {}
        for backend in ("dense", "roaring"):
            start = time.perf_counter()
            tgm = TokenGroupMatrix(dataset, partition.groups, backend=backend)
            if backend == "roaring":
                tgm.run_optimize()
            build_seconds = time.perf_counter() - start
            start = time.perf_counter()
            for query in queries:
                range_search(dataset, tgm, query, 0.7)
            query_ms = (time.perf_counter() - start) / len(queries) * 1000
            results[backend] = (tgm.byte_size(), build_seconds, query_ms)
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [backend, size, round(build, 4), round(query, 3)]
        for backend, (size, build, query) in results.items()
    ]
    report(
        "ablation_tgm",
        "Ablation A1: TGM backend (dense vs roaring)",
        ["backend", "bytes", "build s", "query ms"],
        rows,
    )
    # Roaring compresses the sparse universe; dense scans at least as fast.
    assert results["roaring"][0] < results["dense"][0]
    assert results["dense"][2] <= results["roaring"][2] * 1.5
