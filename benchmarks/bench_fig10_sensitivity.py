"""Figure 10 — sensitivity to the number of groups n and result size k.

Sweeps n and k on the clustered benchmark dataset and reports mean kNN
latency.  Paper's shape: more groups accelerate queries with diminishing
returns (eventually index scan cost dominates), and larger k is slower.
"""

import time

import pytest

from repro.core import TokenGroupMatrix, knn_search
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries

GROUP_COUNTS = [4, 16, 64, 256]
KS = [1, 10, 50]
QUERIES = 60


@pytest.mark.benchmark(group="fig10")
def test_fig10_groups_and_k(report, benchmark, clustered_bench_dataset):
    dataset = clustered_bench_dataset
    queries = sample_queries(dataset, QUERIES, seed=8)

    def sweep():
        l2p = L2PPartitioner(
            pairs_per_model=1_500, epochs=3, initial_groups=4, min_group_size=8, seed=0
        )
        l2p.partition(dataset, max(GROUP_COUNTS))
        # The cascade's level partitions give nested group counts for free.
        by_count = {}
        for partition in l2p.level_partitions_:
            for target in GROUP_COUNTS:
                if partition.num_groups == target:
                    by_count[target] = partition
        timings = {}
        for target in GROUP_COUNTS:
            partition = by_count.get(target)
            if partition is None:
                continue
            tgm = TokenGroupMatrix(dataset, partition.groups)
            for k in KS:
                start = time.perf_counter()
                candidates = 0
                for query in queries:
                    candidates += knn_search(dataset, tgm, query, k).stats.candidates_verified
                timings[(target, k)] = (
                    (time.perf_counter() - start) / len(queries) * 1000,
                    candidates // len(queries),
                )
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for target in GROUP_COUNTS:
        row = [target]
        for k in KS:
            entry = timings.get((target, k))
            row.append(round(entry[0], 3) if entry else "-")
        for k in KS:
            entry = timings.get((target, k))
            row.append(entry[1] if entry else "-")
        rows.append(row)
    report(
        "fig10",
        "Figure 10: mean kNN latency (ms) and candidates vs n and k",
        ["n"] + [f"k={k} ms" for k in KS] + [f"k={k} cands" for k in KS],
        rows,
    )

    # Shape assertions:
    # (1) candidates shrink as n grows (pruning gets finer),
    # (2) larger k never verifies fewer candidates at fixed n.
    for k in KS:
        first = timings.get((GROUP_COUNTS[0], k))
        last = timings.get((GROUP_COUNTS[-1], k))
        if first and last:
            assert last[1] <= first[1]
    for target in GROUP_COUNTS:
        small_k = timings.get((target, KS[0]))
        large_k = timings.get((target, KS[-1]))
        if small_k and large_k:
            assert large_k[1] >= small_k[1]
