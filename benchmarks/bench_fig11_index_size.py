"""Figure 11 — index size and construction time: LES3 vs DualTrans vs InvIdx.

Paper's shape: the TGM (Roaring-compressed) is by far the smallest index —
up to 90% smaller than DualTrans's R-tree and InvIdx's postings — while its
construction time is dominated by (one-time) model training.
"""

import time

import pytest

from repro.baselines import DualTransSearch, InvertedIndexSearch
from repro.core import TokenGroupMatrix
from repro.datasets import make_dataset
from repro.learn import L2PPartitioner

DATASETS = {"KOSARAK": 0.002, "DBLP": 0.0003, "AOL": 0.0002}
NUM_GROUPS = 24


@pytest.mark.benchmark(group="fig11")
def test_fig11_index_size_and_build(report, benchmark):
    def build_all():
        results = []
        for name, scale in DATASETS.items():
            dataset = make_dataset(name, scale=scale, seed=0)

            start = time.perf_counter()
            l2p = L2PPartitioner(
                pairs_per_model=1_000, epochs=3, initial_groups=8, min_group_size=8, seed=0
            )
            partition = l2p.partition(dataset, NUM_GROUPS)
            tgm = TokenGroupMatrix(dataset, partition.groups, backend="roaring")
            tgm.run_optimize()
            les3_build = time.perf_counter() - start
            les3_bytes = tgm.byte_size()

            start = time.perf_counter()
            dualtrans = DualTransSearch(dataset, dim=16)
            dualtrans_build = time.perf_counter() - start
            dualtrans_bytes = dualtrans.index_bytes()

            start = time.perf_counter()
            invidx = InvertedIndexSearch(dataset)
            invidx_build = time.perf_counter() - start
            invidx_bytes = invidx.index_bytes()

            results.append(
                (
                    name,
                    les3_bytes,
                    dualtrans_bytes,
                    invidx_bytes,
                    les3_build,
                    dualtrans_build,
                    invidx_build,
                )
            )
        return results

    results = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            les3_b,
            dual_b,
            inv_b,
            f"{les3_b / dual_b:.0%}",
            round(les3_t, 3),
            round(dual_t, 3),
            round(inv_t, 3),
        ]
        for name, les3_b, dual_b, inv_b, les3_t, dual_t, inv_t in results
    ]
    report(
        "fig11",
        "Figure 11: index bytes and construction seconds",
        [
            "dataset",
            "LES3 B",
            "DualTrans B",
            "InvIdx B",
            "LES3/DualTrans",
            "LES3 s",
            "DualTrans s",
            "InvIdx s",
        ],
        rows,
    )
    for name, les3_b, dual_b, inv_b, *_ in results:
        # The TGM is much smaller than both competitors (paper: up to 90%).
        assert les3_b < dual_b, name
        assert les3_b < inv_b, name
