"""Figure 12 — memory-based comparison: LES3 vs InvIdx vs DualTrans vs brute force.

Range queries (δ sweep) and kNN queries (k sweep) on the LIVEJ stand-in —
the dataset family where the paper's kNN story is sharpest (large average
set size makes InvIdx's repeated filtering expensive).  All methods are
exact, so only latency differs.

Paper's shape: LES3 fastest overall on kNN (2–20×); InvIdx competitive for
large-δ range queries but loses kNN once k is realistic; DualTrans pays
R-tree scan cost; the brute force is beaten by LES3 everywhere.
"""

import time

import pytest

from repro.baselines import BruteForceSearch, DualTransSearch, InvertedIndexSearch
from repro.core import TokenGroupMatrix, knn_search, range_search
from repro.datasets import make_dataset
from repro.learn import L2PPartitioner
from repro.workloads import perturbed_queries

DELTAS = [0.5, 0.7, 0.9]
KS = [1, 10, 50]
QUERIES = 25
METHOD_NAMES = ("LES3", "InvIdx", "DualTrans", "BruteForce")


@pytest.fixture(scope="module")
def methods():
    dataset = make_dataset("LIVEJ", scale=0.003, seed=0)
    l2p = L2PPartitioner(
        pairs_per_model=1_500, epochs=3, initial_groups=16, min_group_size=8, seed=0
    )
    num_groups = max(int(0.01 * len(dataset)), 16)
    tgm = TokenGroupMatrix(dataset, l2p.partition(dataset, num_groups).groups)
    return {
        "dataset": dataset,
        "LES3": tgm,
        "InvIdx": InvertedIndexSearch(dataset),
        "DualTrans": DualTransSearch(dataset, dim=16),
        "BruteForce": BruteForceSearch(dataset),
    }


def run_range(methods, name, queries, delta):
    dataset = methods["dataset"]
    if name == "LES3":
        return [range_search(dataset, methods[name], q, delta) for q in queries]
    return [methods[name].range_search(q, delta) for q in queries]


def run_knn(methods, name, queries, k):
    dataset = methods["dataset"]
    if name == "LES3":
        return [knn_search(dataset, methods[name], q, k) for q in queries]
    return [methods[name].knn_search(q, k) for q in queries]


@pytest.mark.benchmark(group="fig12-range")
def test_fig12_range_queries(report, benchmark, methods):
    queries = perturbed_queries(methods["dataset"], QUERIES, replace_fraction=0.3, seed=9)

    def sweep():
        timings = {}
        for name in METHOD_NAMES:
            for delta in DELTAS:
                start = time.perf_counter()
                run_range(methods, name, queries, delta)
                timings[(name, delta)] = (time.perf_counter() - start) / QUERIES * 1000
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name] + [round(timings[(name, delta)], 3) for delta in DELTAS]
        for name in METHOD_NAMES
    ]
    report(
        "fig12",
        "Figure 12 (range): mean latency ms vs δ (LIVEJ stand-in)",
        ["method"] + [f"δ={delta}" for delta in DELTAS],
        rows,
    )
    # LES3 beats the brute force and DualTrans at every δ; InvIdx is
    # competitive at large δ (the paper observes the same).
    for delta in DELTAS:
        assert timings[("LES3", delta)] < timings[("BruteForce", delta)]
        assert timings[("LES3", delta)] < timings[("DualTrans", delta)]


@pytest.mark.benchmark(group="fig12-knn")
def test_fig12_knn_queries(report, benchmark, methods):
    queries = perturbed_queries(methods["dataset"], QUERIES, replace_fraction=0.3, seed=10)

    def sweep():
        timings = {}
        for name in METHOD_NAMES:
            for k in KS:
                start = time.perf_counter()
                run_knn(methods, name, queries, k)
                timings[(name, k)] = (time.perf_counter() - start) / QUERIES * 1000
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name] + [round(timings[(name, k)], 3) for k in KS] for name in METHOD_NAMES
    ]
    report(
        "fig12",
        "Figure 12 (kNN): mean latency ms vs k (LIVEJ stand-in)",
        ["method"] + [f"k={k}" for k in KS],
        rows,
    )
    # The paper's kNN story: once k is realistic, InvIdx's δ-descending
    # filtering loop loses to LES3.
    for k in (10, 50):
        assert timings[("LES3", k)] < timings[("InvIdx", k)]
    # Against the scan and the R-tree the win is clear at k=10; at k=50 the
    # kth similarity is so low at this scaled |D| that LES3 must visit most
    # groups and the margin over a plain scan sits inside run-to-run noise —
    # require "competitive" (within 20%) rather than a strict win.
    assert timings[("LES3", 10)] < timings[("BruteForce", 10)]
    assert timings[("LES3", 10)] < timings[("DualTrans", 10)]
    assert timings[("LES3", 50)] < 1.2 * timings[("BruteForce", 50)]