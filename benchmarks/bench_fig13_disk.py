"""Figure 13 — disk-based comparison under the simulated I/O cost model.

Each method pays for its access pattern on a simulated 5400-RPM HDD
(Section 7.1's hardware): LES3 reads surviving groups as contiguous runs;
DualTrans and InvIdx pay a random access per node/posting/candidate; the
brute force pays one sequential scan.

Paper's shape: LES3 fastest (2–10×); DualTrans and InvIdx are beaten even
by the brute-force scan across a wide range of settings because of their
random-access patterns.
"""

import pytest

from repro.baselines import BruteForceSearch, DualTransSearch, InvertedIndexSearch
from repro.core import TokenGroupMatrix
from repro.learn import L2PPartitioner
from repro.storage import (
    DiskBruteForce,
    DiskDualTrans,
    DiskInvertedIndex,
    DiskLES3,
    SimulatedDisk,
)
from repro.workloads import sample_queries

DELTAS = [0.5, 0.7, 0.9]
KS = [1, 10, 50]
QUERIES = 30
NUM_GROUPS = 128


@pytest.fixture(scope="module")
def disk_methods(clustered_bench_dataset):
    dataset = clustered_bench_dataset
    l2p = L2PPartitioner(
        pairs_per_model=1_500, epochs=3, initial_groups=8, min_group_size=8, seed=0
    )
    tgm = TokenGroupMatrix(dataset, l2p.partition(dataset, NUM_GROUPS).groups)

    def fresh():
        return {
            "LES3": DiskLES3(dataset, tgm, SimulatedDisk()),
            "DualTrans": DiskDualTrans(DualTransSearch(dataset, dim=16), SimulatedDisk()),
            "InvIdx": DiskInvertedIndex(InvertedIndexSearch(dataset), SimulatedDisk()),
            "BruteForce": DiskBruteForce(BruteForceSearch(dataset), SimulatedDisk()),
        }

    return dataset, fresh


def modelled_ms(method, queries, call) -> float:
    method.disk.stats.reset()
    for query in queries:
        call(method, query)
    return method.disk.stats.total_ms / len(queries)


@pytest.mark.benchmark(group="fig13-range")
def test_fig13_range_disk(report, benchmark, disk_methods):
    dataset, fresh = disk_methods
    queries = sample_queries(dataset, QUERIES, seed=11)

    def sweep():
        timings = {}
        methods = fresh()
        for name, method in methods.items():
            for delta in DELTAS:
                timings[(name, delta)] = modelled_ms(
                    method, queries, lambda m, q, d=delta: m.range_search(q, d)
                )
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name] + [round(timings[(name, delta)], 2) for delta in DELTAS]
        for name in ("LES3", "InvIdx", "DualTrans", "BruteForce")
    ]
    report(
        "fig13",
        "Figure 13 (range): modelled disk ms/query vs δ (HDD 5400rpm)",
        ["method"] + [f"δ={delta}" for delta in DELTAS],
        rows,
    )
    for delta in DELTAS:
        # LES3 beats the random-access methods at every δ.
        assert timings[("LES3", delta)] < timings[("DualTrans", delta)]
        assert timings[("LES3", delta)] < timings[("InvIdx", delta)]
    # The paper's surprise: the sequential brute force beats the heavy
    # indexes for a wide range of settings.
    assert timings[("BruteForce", 0.5)] < timings[("DualTrans", 0.5)]


@pytest.mark.benchmark(group="fig13-knn")
def test_fig13_knn_disk(report, benchmark, disk_methods):
    dataset, fresh = disk_methods
    queries = sample_queries(dataset, QUERIES, seed=12)

    def sweep():
        timings = {}
        methods = fresh()
        for name, method in methods.items():
            for k in KS:
                timings[(name, k)] = modelled_ms(
                    method, queries, lambda m, q, kk=k: m.knn_search(q, kk)
                )
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name] + [round(timings[(name, k)], 2) for k in KS]
        for name in ("LES3", "InvIdx", "DualTrans", "BruteForce")
    ]
    report(
        "fig13",
        "Figure 13 (kNN): modelled disk ms/query vs k (HDD 5400rpm)",
        ["method"] + [f"k={k}" for k in KS],
        rows,
    )
    for k in KS:
        assert timings[("LES3", k)] < timings[("DualTrans", k)]
        assert timings[("LES3", k)] < timings[("InvIdx", k)]
