"""Figure 14 — TGM vs HTGM across the power-law similarity exponent α.

Synthetic databases with ``P[sim = v] ∼ v^−α`` (Section 7.7): a cascade is
trained, the TGM is built on the fine level and the HTGM on a coarse+fine
pair.  We report the HTGM/TGM ratios of the two paper metrics: index access
cost (columns visited) and computational cost (similarity calculations).

Paper's shape: HTGM wins (ratio < 1) when α is large — most sets dissimilar
— and loses its edge when sets are similar (small α).
"""

import pytest

from repro.core import HierarchicalTGM, TokenGroupMatrix
from repro.datasets import powerlaw_similarity_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries

ALPHAS = [1.0, 2.0, 3.5]
NUM_SETS = 1_500
COARSE, FINE = 8, 64
QUERIES = 40
DELTA = 0.7


def cost_ratios(alpha: float) -> tuple[float, float]:
    dataset = powerlaw_similarity_dataset(
        NUM_SETS, 2_000, 10, alpha=alpha, num_templates=30, seed=13
    )
    l2p = L2PPartitioner(
        pairs_per_model=1_000, epochs=3, initial_groups=COARSE, min_group_size=6, seed=0
    )
    fine_partition = l2p.partition(dataset, FINE)
    coarse_partition = next(
        p for p in l2p.level_partitions_ if p.num_groups == COARSE
    )
    htgm = HierarchicalTGM(dataset, [coarse_partition.groups, fine_partition.groups])
    tgm = TokenGroupMatrix(dataset, fine_partition.groups)

    queries = sample_queries(dataset, QUERIES, seed=14)
    htgm_columns = htgm_sims = tgm_columns = tgm_sims = 0
    for query in queries:
        h_stats = htgm.range_search(dataset, query, DELTA).stats
        htgm_columns += h_stats.columns_visited
        htgm_sims += h_stats.similarity_computations
        from repro.core import range_search

        t_stats = range_search(dataset, tgm, query, DELTA).stats
        tgm_columns += t_stats.columns_visited
        tgm_sims += t_stats.similarity_computations
    return htgm_columns / max(tgm_columns, 1), htgm_sims / max(tgm_sims, 1)


@pytest.mark.benchmark(group="fig14")
def test_fig14_htgm_vs_tgm(report, benchmark):
    def sweep():
        return {alpha: cost_ratios(alpha) for alpha in ALPHAS}

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [alpha, round(ratios[alpha][0], 3), round(ratios[alpha][1], 3)] for alpha in ALPHAS
    ]
    report(
        "fig14",
        f"Figure 14: HTGM/TGM cost ratios vs α (HTGM {COARSE}+{FINE} groups, δ={DELTA})",
        ["alpha", "column ratio", "simcalc ratio"],
        rows,
    )
    # HTGM's index-access advantage strengthens as α grows (more dissimilar
    # data → coarse level prunes subtrees before the wide matrix is read).
    column_ratios = [ratios[alpha][0] for alpha in ALPHAS]
    assert column_ratios[-1] < column_ratios[0]
    assert column_ratios[-1] < 1.0
    # Verification cost is never higher for HTGM (same surviving groups).
    assert all(ratios[alpha][1] <= 1.0 + 1e-9 for alpha in ALPHAS)
