"""Figure 15 — pruning efficiency under insertions (closed vs open universe).

Starting from a clustered base, batches of new sets are inserted — closed
universe (known tokens only) and open universe (half new tokens, per the
paper's setup) — at insertion ratios up to 1.0.  The metric is the PE
decrease relative to a from-scratch rebuild (re-running L2P on the grown
database).

Paper's shape: PE degrades only slightly (≤ ~8%), open universe hurts more
than closed.
"""

import random

import pytest

from repro.core import TokenGroupMatrix, insert_set, knn_search
from repro.core.metrics import knn_pruning_efficiency
from repro.datasets import powerlaw_similarity_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries

RATIOS = [0.25, 0.5, 1.0]
BASE_SIZE = 1_200
NUM_GROUPS = 48
K = 10


def build(dataset, seed=0):
    l2p = L2PPartitioner(
        pairs_per_model=1_200, epochs=3, initial_groups=8, min_group_size=6, seed=seed
    )
    return TokenGroupMatrix(dataset, l2p.partition(dataset, NUM_GROUPS).groups)


def average_pe(dataset, tgm, seed):
    queries = sample_queries(dataset, 80, seed=seed)
    total = 0.0
    for query in queries:
        stats = knn_search(dataset, tgm, query, K).stats
        total += knn_pruning_efficiency(len(dataset), stats.candidates_verified, K)
    return total / len(queries)


def fresh_base():
    return powerlaw_similarity_dataset(
        BASE_SIZE, 1_500, 10, alpha=1.5, num_templates=25, seed=15
    )


def new_set_tokens(dataset, rng, open_universe, new_token_counter):
    base_record = dataset.records[rng.randrange(BASE_SIZE)]
    tokens = [dataset.universe.token_of(t) for t in base_record.distinct]
    position = rng.randrange(len(tokens))
    if open_universe and rng.random() < 0.5:
        tokens[position] = f"fig15-new-{new_token_counter[0]}"
        new_token_counter[0] += 1
    else:
        tokens[position] = dataset.universe.token_of(rng.randrange(1_500))
    return tokens


def pe_decrease(open_universe: bool):
    decreases = []
    for ratio in RATIOS:
        dataset = fresh_base()
        tgm = build(dataset)
        rng = random.Random(16)
        counter = [0]
        for _ in range(int(BASE_SIZE * ratio)):
            insert_set(dataset, tgm, new_set_tokens(dataset, rng, open_universe, counter))
        inserted_pe = average_pe(dataset, tgm, seed=17)
        rebuilt = build(dataset, seed=1)
        rebuild_pe = average_pe(dataset, rebuilt, seed=17)
        decreases.append((ratio, inserted_pe, rebuild_pe, (rebuild_pe - inserted_pe)))
    return decreases


@pytest.mark.benchmark(group="fig15")
def test_fig15_update_resilience(report, benchmark):
    def sweep():
        return {"closed": pe_decrease(False), "open": pe_decrease(True)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for universe, entries in results.items():
        for ratio, inserted, rebuilt, decrease in entries:
            rows.append(
                [universe, ratio, round(inserted, 4), round(rebuilt, 4), round(decrease, 4)]
            )
    report(
        "fig15",
        "Figure 15: PE after insertion vs rebuild (kNN k=10)",
        ["universe", "ratio", "insert PE", "rebuild PE", "decrease"],
        rows,
    )
    # PE is resilient to insertions: the absolute decrease vs a rebuild
    # stays small (paper: at most ~8 percentage points) at every ratio.
    for entries in results.values():
        for _, inserted, rebuilt, decrease in entries:
            assert decrease <= 0.10, (inserted, rebuilt)
