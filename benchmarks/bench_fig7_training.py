"""Figure 7 — model convergence (a) and training cost vs #groups (b).

(a) trains one Siamese model per dataset on a level-0-sized group and
reports the per-epoch loss: the paper observes convergence after roughly
two epochs.

(b) sweeps the cascade's target group count and reports total training
time: the paper observes linear growth in the number of groups.
"""

import time

import numpy as np
import pytest

from repro.datasets import make_dataset
from repro.learn import L2PPartitioner

DATASETS = ["KOSARAK", "DBLP", "AOL"]


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_learning_curves(report, benchmark):
    def train_all():
        curves = {}
        for name in DATASETS:
            dataset = make_dataset(name, scale=0.001, seed=0)
            l2p = L2PPartitioner(
                pairs_per_model=4_000, epochs=6, initial_groups=1, min_group_size=10, seed=0
            )
            members = list(range(len(dataset)))
            representations = l2p.embedding.fit(dataset).transform_all(dataset)
            scale = np.abs(representations).max(axis=0)
            scale[scale == 0] = 1.0
            _, history = l2p.train_group_model(dataset, representations / scale, members, 0)
            curves[name] = history
        return curves

    curves = benchmark.pedantic(train_all, rounds=1, iterations=1)
    rows = [
        [name] + [round(loss, 4) for loss in history] for name, history in curves.items()
    ]
    report(
        "fig7",
        "Figure 7a: training loss per epoch (convergence ~2 epochs)",
        ["dataset"] + [f"epoch {i + 1}" for i in range(6)],
        rows,
    )
    for name, history in curves.items():
        # The loss drops from epoch 1 and plateaus: the final epoch sits
        # within 15% of the best epoch (convergence after ~2-3 epochs).
        assert history[-1] < history[0], name
        assert history[-1] <= min(history) * 1.15 + 1e-9, name


@pytest.mark.benchmark(group="fig7b")
def test_fig7b_training_cost_linear_in_groups(report, benchmark):
    dataset = make_dataset("KOSARAK", scale=0.002, seed=0)
    group_counts = [16, 32, 64, 128]

    def sweep():
        timings = []
        for target in group_counts:
            l2p = L2PPartitioner(
                pairs_per_model=1_000,
                epochs=3,
                initial_groups=8,
                min_group_size=8,
                seed=0,
            )
            start = time.perf_counter()
            partition = l2p.partition(dataset, target)
            elapsed = time.perf_counter() - start
            timings.append((target, partition.num_groups, l2p.stats_.models_trained, elapsed))
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [target, groups, models, round(seconds, 3), round(seconds / groups * 1000, 2)]
        for target, groups, models, seconds in timings
    ]
    report(
        "fig7",
        "Figure 7b: training cost vs number of groups (linear growth)",
        ["target n", "groups", "models", "seconds", "ms/group"],
        rows,
    )
    # Linear shape: per-group cost stays within a factor ~3 across the sweep,
    # while total cost grows monotonically.
    seconds = [s for *_, s in timings]
    assert seconds[-1] > seconds[0]
    per_group = [s / g for _, g, _, s in timings]
    assert max(per_group) <= 3.5 * min(per_group)
