"""Figure 8 — PTR vs other set representations.

On a sampled KOSARAK stand-in (the paper samples 5% of KOSARAK because PCA
and MDS cannot scale), each representation is plugged into the same L2P
cascade; we report (1) representation construction time and (2) query time
of the resulting index for kNN (k=10) and range (δ=0.7).

Paper's shape: PTR is 10–20 000× faster to construct than PCA/MDS with
similar-or-better search time; Binary Encoding and PTR-half search slower.
"""

import random
import time

import pytest

from repro.core import TokenGroupMatrix, knn_search, range_search
from repro.datasets import make_dataset
from repro.embedding import (
    BinaryEncodingEmbedding,
    MDSEmbedding,
    PCAEmbedding,
    PTREmbedding,
    PTRHalfEmbedding,
)
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries

NUM_GROUPS = 16
QUERIES = 60


def build_sample():
    full = make_dataset("KOSARAK", scale=0.002, seed=0)
    return full.sample(400, random.Random(5))


EMBEDDINGS = [
    ("PTR", PTREmbedding),
    ("PTR-half", PTRHalfEmbedding),
    ("Binary", BinaryEncodingEmbedding),
    ("PCA", lambda: PCAEmbedding(dim=16)),
    ("MDS", lambda: MDSEmbedding(dim=16)),
]


@pytest.mark.benchmark(group="fig8")
def test_fig8_representation_comparison(report, benchmark):
    dataset = build_sample()
    queries = sample_queries(dataset, QUERIES, seed=6)

    def evaluate_all():
        results = []
        for name, factory in EMBEDDINGS:
            embedding = factory()
            start = time.perf_counter()
            embedding.fit(dataset)
            embedding.transform_all(dataset)
            embed_seconds = time.perf_counter() - start

            l2p = L2PPartitioner(
                embedding=factory().fit(dataset),
                pairs_per_model=1_000,
                epochs=3,
                initial_groups=1,
                min_group_size=6,
                seed=0,
            )
            partition = l2p.partition(dataset, NUM_GROUPS)
            tgm = TokenGroupMatrix(dataset, partition.groups)

            start = time.perf_counter()
            knn_candidates = 0
            for query in queries:
                knn_candidates += knn_search(dataset, tgm, query, 10).stats.candidates_verified
            knn_seconds = time.perf_counter() - start

            start = time.perf_counter()
            range_candidates = 0
            for query in queries:
                range_candidates += range_search(
                    dataset, tgm, query, 0.7
                ).stats.candidates_verified
            range_seconds = time.perf_counter() - start
            results.append(
                (name, embed_seconds, knn_seconds, range_seconds, knn_candidates, range_candidates)
            )
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            round(embed * 1000, 2),
            round(knn * 1000, 1),
            round(rng * 1000, 1),
            knn_c,
            rng_c,
        ]
        for name, embed, knn, rng, knn_c, rng_c in results
    ]
    report(
        "fig8",
        "Figure 8: representation construction and query cost (400-set sample)",
        ["method", "embed ms", "kNN ms", "range ms", "kNN cands", "range cands"],
        rows,
    )

    by_name = {name: row for name, *row in results}
    # PTR constructs much faster than PCA and MDS (the gap widens with
    # scale; at this 400-set sample it is ~10× and ~100× respectively).
    assert by_name["PTR"][0] * 3 < by_name["PCA"][0]
    assert by_name["PTR"][0] * 30 < by_name["MDS"][0]
    # PTR's search is no worse than Binary Encoding's (content-blind) on candidates.
    assert by_name["PTR"][3] <= by_name["Binary"][3] * 1.1
