"""Figure 9 — L2P vs the algorithmic partitioners.

On the KOSARAK stand-in, every partitioner produces the same number of
groups; we report partitioning time, the auxiliary space each method
materialises, and the query cost of the resulting TGM for kNN (k=10).

Paper's shape: L2P gives the fastest search while spending a fraction of
the partitioning time and space of PAR-G (whose kNN graph dominates both);
PAR-C/D/A suffer local-optimum quality.
"""

import time

import pytest

from repro.core import TokenGroupMatrix, knn_search
from repro.datasets import make_dataset
from repro.learn import L2PPartitioner
from repro.partitioning import (
    ParAPartitioner,
    ParCPartitioner,
    ParDPartitioner,
    ParGPartitioner,
)
from repro.partitioning.par_g import build_knn_graph
from repro.workloads import sample_queries

NUM_GROUPS = 24
NUM_SETS = 900
QUERIES = 60


def auxiliary_bytes(name: str, dataset, partitioner) -> int:
    """Approximate working-set bytes each method materialises.

    * L2P: one model's parameters + one mini-batch of representations.
    * PAR-G: the kNN similarity graph (edges × (2 ids + weight)).
    * PAR-C/D/A: the relocation bookkeeping — per-set assignment plus the
      sampled distance scratch (they still rescan the dataset repeatedly;
      the paper's space complaint is PAR-G's graph, which this mirrors).
    """
    if name == "L2P":
        model_params = ((2 * 12 + 1) * 8 + (8 + 1) * 8 + (8 + 1) * 1) * 8
        batch = 256 * 2 * 12 * 8
        return model_params + batch
    if name == "PAR-G":
        graph = build_knn_graph(dataset, 10, partitioner.measure)
        return graph.num_edges() * 20
    return len(dataset) * 8 + partitioner.sample_size * 16


def partitioners():
    yield "L2P", L2PPartitioner(
        pairs_per_model=1_500, epochs=3, initial_groups=8, min_group_size=8, seed=0
    )
    yield "PAR-G", ParGPartitioner(k=10, seed=0)
    yield "PAR-C", ParCPartitioner(seed=0, max_passes=2, sample_size=8)
    yield "PAR-D", ParDPartitioner(seed=0, sample_size=8)
    yield "PAR-A", ParAPartitioner(seed=0, sample_size=4, candidate_sample=24)


@pytest.mark.benchmark(group="fig9")
def test_fig9_partitioner_comparison(report, benchmark):
    import random

    full = make_dataset("KOSARAK", scale=0.002, seed=0)
    dataset = full.sample(NUM_SETS, random.Random(2))
    queries = sample_queries(dataset, QUERIES, seed=7)

    def evaluate_all():
        results = []
        for name, partitioner in partitioners():
            start = time.perf_counter()
            partition = partitioner.partition(dataset, NUM_GROUPS)
            partition_seconds = time.perf_counter() - start

            tgm = TokenGroupMatrix(dataset, partition.groups)
            start = time.perf_counter()
            candidates = 0
            for query in queries:
                candidates += knn_search(dataset, tgm, query, 10).stats.candidates_verified
            query_seconds = time.perf_counter() - start
            space = auxiliary_bytes(name, dataset, partitioner)
            results.append((name, partition_seconds, space, query_seconds, candidates))
        return results

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    rows = [
        [name, round(pt, 3), space, round(qt * 1000, 1), candidates]
        for name, pt, space, qt, candidates in results
    ]
    report(
        "fig9",
        f"Figure 9: partitioning methods ({NUM_SETS} sets → {NUM_GROUPS} groups, kNN k=10)",
        ["method", "partition s", "aux bytes", "query ms", "candidates"],
        rows,
    )

    by_name = {name: row for name, *row in results}
    # L2P: much cheaper partitioning than PAR-G, less space, and the search
    # it yields is at least as good as the relocation heuristics'.  The
    # paper's 99% space gap needs paper scale — PAR-G's kNN graph grows as
    # |D|·k while L2P's working set is constant, so at 900 sets the ratio
    # is ~3×; it widens linearly with |D|.
    assert by_name["L2P"][0] < by_name["PAR-G"][0]
    assert by_name["L2P"][1] < 0.5 * by_name["PAR-G"][1]
    worst_candidates = max(row[3] for name, *row in results if name != "L2P")
    assert by_name["L2P"][3] <= worst_candidates
