"""Extension bench — TGM-accelerated similarity self-join vs quadratic scan.

The join is this repo's extension of the reproduced system into the
related-work territory the paper surveys (Section 8).  Reported: pairs
verified and wall time, TGM join vs the quadratic all-pairs scan, across
thresholds.
"""

import random
import time

import pytest

from repro.core import Dataset, TokenGroupMatrix, similarity_self_join
from repro.learn import L2PPartitioner

THRESHOLDS = [0.5, 0.7, 0.9]
NUM_SETS = 800


def topic_dataset(num_sets: int, seed: int) -> Dataset:
    """Variable-size sets over topic-disjoint vocabularies.

    Both join filters need structure to bite: the size filter needs size
    variance, the group-pair bound needs groups with small vocabulary
    overlap — the shape of tagged corpora, where joins are actually used.
    """
    rng = random.Random(seed)
    token_lists = []
    for _ in range(num_sets):
        topic = rng.randrange(16)
        vocabulary = range(topic * 40, topic * 40 + 40)
        token_lists.append(
            [str(t) for t in rng.sample(vocabulary, rng.randint(4, 14))]
        )
    return Dataset.from_token_lists(token_lists)


def quadratic_join(dataset, threshold, measure):
    pairs = []
    records = dataset.records
    comparisons = 0
    for x in range(len(records)):
        for y in range(x + 1, len(records)):
            comparisons += 1
            similarity = measure(records[x], records[y])
            if similarity >= threshold:
                pairs.append((x, y, similarity))
    return pairs, comparisons


@pytest.mark.benchmark(group="join")
def test_join_vs_quadratic(report, benchmark):
    dataset = topic_dataset(NUM_SETS, seed=24)
    l2p = L2PPartitioner(
        pairs_per_model=1_000, epochs=3, initial_groups=4, min_group_size=6, seed=0
    )
    tgm = TokenGroupMatrix(dataset, l2p.partition(dataset, 16).groups)

    def sweep():
        results = []
        for threshold in THRESHOLDS:
            start = time.perf_counter()
            joined = similarity_self_join(dataset, tgm, threshold)
            tgm_seconds = time.perf_counter() - start
            start = time.perf_counter()
            expected, comparisons = quadratic_join(dataset, threshold, tgm.measure)
            brute_seconds = time.perf_counter() - start
            assert joined.pairs == expected
            results.append(
                (
                    threshold,
                    len(joined),
                    joined.stats.candidates_verified,
                    comparisons,
                    tgm_seconds,
                    brute_seconds,
                )
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            threshold,
            pairs,
            verified,
            comparisons,
            round(tgm_s, 3),
            round(brute_s, 3),
            f"{brute_s / tgm_s:.1f}x",
        ]
        for threshold, pairs, verified, comparisons, tgm_s, brute_s in results
    ]
    report(
        "join",
        f"Extension: similarity self-join, TGM vs quadratic ({NUM_SETS} sets)",
        ["δ", "pairs", "TGM verified", "quadratic", "TGM s", "quad s", "speedup"],
        rows,
    )
    for threshold, _, verified, comparisons, tgm_s, brute_s in results:
        assert verified < comparisons
        if threshold >= 0.7:
            # At selective thresholds the pruning pays for its own cost;
            # at loose thresholds it is a wash (most pairs must be checked).
            assert tgm_s < brute_s