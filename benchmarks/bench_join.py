"""Self-join benchmark: columnar pairwise kernel vs the scalar per-pair walk.

Measures, on a clustered (topic-disjoint) database where the group-pair
bound leaves realistic surviving group pairs, the wall time of
``similarity_self_join`` under ``verify="scalar"`` vs ``verify="columnar"``
across a threshold sweep — asserting bit-identical pairs before reporting
any number — plus a sharded scatter-gather join equivalence check.

Each run appends one entry to the ``BENCH_join.json`` trajectory (repo
root by default) so the join speedup is tracked across commits.  Run
directly::

    PYTHONPATH=src python benchmarks/bench_join.py          # full size
    PYTHONPATH=src python benchmarks/bench_join.py --smoke  # CI-tiny

The script exits non-zero if the two paths ever disagree, or (full size)
if the best columnar speedup drops below the 3x acceptance bar.
"""

from __future__ import annotations

import argparse
import random
import time
from pathlib import Path

from repro.bench import append_trajectory
from repro.core import LES3, Dataset
from repro.distributed import ShardedLES3
from repro.partitioning import MinTokenPartitioner

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_join.json"
THRESHOLDS = [0.5, 0.7, 0.9]


def topic_dataset(num_sets: int, num_topics: int, seed: int) -> Dataset:
    """Variable-size sets over topic-disjoint vocabularies.

    Both join filters need structure to bite: the group-pair bound needs
    groups with small vocabulary overlap, the Jaccard size filter needs
    size variance — the shape of tagged corpora, where joins are actually
    used.
    """
    rng = random.Random(seed)
    token_lists = []
    for _ in range(num_sets):
        topic = rng.randrange(num_topics)
        vocabulary = range(topic * 40, topic * 40 + 40)
        token_lists.append(
            [str(t) for t in rng.sample(vocabulary, rng.randint(4, 14))]
        )
    return Dataset.from_token_lists(token_lists)


def brute_force_join(dataset: Dataset, threshold: float, measure) -> list:
    records = dataset.records
    pairs = []
    for x in range(len(records)):
        for y in range(x + 1, len(records)):
            similarity = measure(records[x], records[y])
            if similarity >= threshold:
                pairs.append((x, y, similarity))
    return sorted(pairs)


def bench_threshold(engine: LES3, threshold: float, repeats: int) -> dict:
    """Scalar vs columnar self-join at one threshold; asserts identity."""
    seconds = {}
    results = {}
    for mode in ("scalar", "columnar"):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            results[mode] = engine.join(threshold, verify=mode)
            best = min(best, time.perf_counter() - start)
        seconds[mode] = best
    assert results["columnar"].pairs == results["scalar"].pairs, (
        f"join pairs diverged between verify modes at δ={threshold}"
    )
    stats = results["columnar"].stats
    total_pairs = len(engine.dataset) * (len(engine.dataset) - 1) // 2
    return {
        "threshold": threshold,
        "pairs": len(results["columnar"]),
        "candidates": stats.candidates_verified,
        "all_pairs": total_pairs,
        "group_pairs_pruned": stats.groups_pruned,
        "group_pairs_scored": stats.groups_scored,
        "scalar_seconds": seconds["scalar"],
        "columnar_seconds": seconds["columnar"],
        "speedup": seconds["scalar"] / seconds["columnar"],
    }


def check_sharded(engine: LES3, threshold: float, num_shards: int) -> None:
    """Sharded scatter-gather join must be bit-identical to the single engine."""
    sharded = ShardedLES3.from_engine(engine, num_shards)
    expected = engine.join(threshold).pairs
    assert sharded.join(threshold).pairs == expected, (
        f"sharded join diverged at δ={threshold}, S={num_shards}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI rot canary)")
    parser.add_argument("--sets", type=int, default=None, help="database size")
    parser.add_argument("--repeat", type=int, default=None, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=24)
    parser.add_argument("--shards", type=int, default=4, help="sharded equivalence check")
    parser.add_argument(
        "--groups", type=int, default=None,
        help="group count (default: one per topic plus slack)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="trajectory JSON path")
    args = parser.parse_args(argv)

    num_sets = args.sets if args.sets is not None else (200 if args.smoke else 3_000)
    repeats = args.repeat if args.repeat is not None else (1 if args.smoke else 3)
    if num_sets <= 0 or repeats <= 0 or (args.groups is not None and args.groups <= 0):
        parser.error("--sets, --repeat, and --groups must be positive")
    num_topics = max(num_sets // 200, 4)
    num_groups = args.groups if args.groups is not None else num_topics * 2

    dataset = topic_dataset(num_sets, num_topics, seed=args.seed)
    start = time.perf_counter()
    engine = LES3.build(dataset, num_groups=num_groups, partitioner=MinTokenPartitioner())
    build_seconds = time.perf_counter() - start
    dataset.columnar()  # build the CSR view outside the timed region
    print(
        f"# {num_sets} sets, {num_topics} topics, {engine.num_groups} groups "
        f"(build {build_seconds:.2f}s)"
    )

    if args.smoke:
        # Tiny enough to afford the quadratic oracle: both verify paths
        # must match the brute force, not just each other.
        expected = brute_force_join(dataset, 0.6, engine.measure)
        assert engine.join(0.6, verify="scalar").pairs == expected
        assert engine.join(0.6, verify="columnar").pairs == expected
        print("# brute-force oracle OK at δ=0.6")

    rows = []
    for threshold in THRESHOLDS:
        row = bench_threshold(engine, threshold, repeats)
        rows.append(row)
        print(
            f"δ={threshold}: {row['pairs']} pairs, verified "
            f"{row['candidates']}/{row['all_pairs']} candidate pairs; "
            f"scalar {row['scalar_seconds'] * 1000:.1f} ms, "
            f"columnar {row['columnar_seconds'] * 1000:.1f} ms "
            f"→ {row['speedup']:.2f}x"
        )
    check_sharded(engine, THRESHOLDS[1], args.shards)
    print(f"# sharded join bit-identical at S={args.shards}")

    best_speedup = max(row["speedup"] for row in rows)
    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "config": {
                "sets": num_sets,
                "topics": num_topics,
                "groups": engine.num_groups,
                "repeats": repeats,
                "seed": args.seed,
                "shards": args.shards,
            },
            "thresholds": rows,
            "best_speedup": best_speedup,
        },
    )
    print(f"# appended to {args.out}")
    if not args.smoke and best_speedup < 3.0:
        print("FAIL: columnar join speedup below the 3x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
