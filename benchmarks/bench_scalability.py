"""Scalability sweep — how the Figure 12 picture moves with |D|.

The paper's large-data claims (Section 7.6, FS/PMC) cannot be run at 10⁸
sets in pure Python; instead this bench sweeps |D| over a factor of 8 and
measures how each method's kNN cost *grows*:

* LES3's filter cost grows with the group count (held at 1% of |D|) and its
  verification with the surviving fraction — sublinear in |D| overall;
* the brute force grows linearly by construction;
* InvIdx's filtering grows with posting lengths (∝ |D|), which is the
  asymptotic reason the paper's range-query crossover favours LES3 at
  10⁶+ sets even though InvIdx wins at 10³ (see EXPERIMENTS.md).

Asserted shape: LES3's cost ratio between the largest and smallest |D| is
smaller than the brute force's ratio (sublinear vs linear growth).
"""

import time

import pytest

from repro.baselines import BruteForceSearch, InvertedIndexSearch
from repro.core import TokenGroupMatrix, knn_search
from repro.datasets import powerlaw_similarity_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries

SIZES = [1_000, 2_000, 4_000, 8_000]
QUERIES = 30
K = 10


def build_stack(num_sets: int):
    dataset = powerlaw_similarity_dataset(
        num_sets, max(num_sets, 2_000), 10, alpha=1.5, num_templates=num_sets // 50, seed=22
    )
    l2p = L2PPartitioner(
        pairs_per_model=1_200, epochs=3, initial_groups=8, min_group_size=8, seed=0
    )
    tgm = TokenGroupMatrix(dataset, l2p.partition(dataset, max(num_sets // 100, 8)).groups)
    return dataset, tgm


@pytest.mark.benchmark(group="scalability")
def test_scalability_knn(report, benchmark):
    def sweep():
        results = []
        for num_sets in SIZES:
            dataset, tgm = build_stack(num_sets)
            queries = sample_queries(dataset, QUERIES, seed=23)
            invidx = InvertedIndexSearch(dataset)
            brute = BruteForceSearch(dataset)

            start = time.perf_counter()
            for query in queries:
                knn_search(dataset, tgm, query, K)
            les3_ms = (time.perf_counter() - start) / QUERIES * 1000

            start = time.perf_counter()
            for query in queries:
                invidx.knn_search(query, K)
            invidx_ms = (time.perf_counter() - start) / QUERIES * 1000

            start = time.perf_counter()
            for query in queries:
                brute.knn_search(query, K)
            brute_ms = (time.perf_counter() - start) / QUERIES * 1000
            results.append((num_sets, les3_ms, invidx_ms, brute_ms))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [num_sets, round(les3, 3), round(invidx, 3), round(brute, 3)]
        for num_sets, les3, invidx, brute in results
    ]
    report(
        "scalability",
        f"Scalability: mean kNN (k={K}) latency ms vs |D|",
        ["|D|", "LES3", "InvIdx", "BruteForce"],
        rows,
    )
    les3_growth = results[-1][1] / results[0][1]
    brute_growth = results[-1][3] / results[0][3]
    size_growth = SIZES[-1] / SIZES[0]
    # LES3 grows sublinearly in |D|; the brute force tracks |D|.
    assert les3_growth < brute_growth
    assert les3_growth < size_growth
    # At the largest size LES3 beats the linear scan comfortably.
    assert results[-1][1] < results[-1][3]
