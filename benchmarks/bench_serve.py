"""`repro serve` under load: micro-batching vs one-request-per-call.

A saved index is served by :class:`repro.serve.ReproServer` on an
ephemeral port, and closed-loop keep-alive HTTP clients drive it:

* **Latency/throughput sweep** — for each concurrency level the script
  records achieved QPS and p50/p99 request latency against the batching
  server (the ``/stats`` batch-size histogram is captured alongside, so
  the entry shows *why* throughput scales: batches grow with load).
* **Batching ablation** — the same offered load is replayed against a
  server restarted with ``--max-batch 1`` (strict one-request-per-call
  through the same HTTP/queue path).  The ratio of the two throughputs
  at the highest concurrency is the PR's acceptance number: micro-
  batching must be ≥ 2x at ≥ 32 in-flight clients (asserted on full
  runs; ``--smoke`` only exercises the machinery).

Answers are asserted bit-identical to direct engine calls before any
number is reported.  Each run appends one entry to ``BENCH_serve.json``
(repo root by default).  Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full size
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke  # CI-tiny
"""

from __future__ import annotations

import argparse
import asyncio
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.api import QueryRequest, execute, load
from repro.bench import append_trajectory
from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.persistence import save_engine
from repro.serve import ReproServer, request_json, wait_ready
from repro.serve.http import _roundtrip

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
K = 10
THRESHOLD = 0.6
#: The acceptance bar: batched throughput over strict one-request-per-call.
SPEEDUP_BAR = 2.0


def templated_dataset(num_sets: int, num_templates: int, seed: int = 0) -> Dataset:
    """Noisy copies of shared templates: realistic overlap, string tokens."""
    rng = random.Random(seed)
    num_tokens = num_templates * 30
    templates = [
        rng.sample(range(num_tokens), 14) for _ in range(num_templates)
    ]
    rows = []
    for i in range(num_sets):
        tokens = set(rng.sample(templates[i % num_templates], 10))
        tokens.add(rng.randrange(num_tokens))
        rows.append([f"t{t}" for t in sorted(tokens)])
    return Dataset.from_token_lists(rows)


def sample_payloads(dataset: Dataset, count: int, seed: int) -> list[tuple[str, dict]]:
    """A mixed kNN/range workload drawn from the database's own sets."""
    rng = random.Random(seed)
    payloads = []
    for _ in range(count):
        record = dataset.records[rng.randrange(len(dataset.records))]
        tokens = [dataset.universe.token_of(t) for t in record.tokens]
        if rng.random() < 0.5:
            payloads.append(("/knn", {"tokens": tokens, "k": K}))
        else:
            payloads.append(("/range", {"tokens": tokens, "threshold": THRESHOLD}))
    return payloads


async def run_closed_loop(
    host: str, port: int, payloads, clients: int, per_client: int
) -> dict:
    """``clients`` keep-alive connections, each sending ``per_client`` requests."""
    latencies: list[float] = []
    failures = 0

    async def client(client_id: int) -> None:
        nonlocal failures
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for i in range(per_client):
                path, payload = payloads[(client_id * per_client + i) % len(payloads)]
                start = time.perf_counter()
                status, _ = await _roundtrip(reader, writer, "POST", path, payload)
                latencies.append(time.perf_counter() - start)
                if status != 200:
                    failures += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    start = time.perf_counter()
    await asyncio.gather(*(client(c) for c in range(clients)))
    elapsed = time.perf_counter() - start
    ordered = sorted(latencies)
    return {
        "clients": clients,
        "requests": len(latencies),
        "failures": failures,
        "qps": len(latencies) / elapsed,
        "p50_ms": statistics.median(ordered) * 1000.0,
        "p99_ms": ordered[int((len(ordered) - 1) * 0.99)] * 1000.0,
        "max_ms": ordered[-1] * 1000.0,
    }


async def check_bit_identity(
    server: ReproServer, reference, payloads, answers_only: bool = False
) -> None:
    """Server answers must equal direct engine calls, payload for payload.

    ``answers_only`` compares the answer fields (``matches``/``count``)
    but not the cost counters: a process-parallel sharded server runs a
    different execution plan than the serial reference (independent
    per-shard answers vs sequential cross-shard heap pruning), so the
    *work accounting* differs while the answers stay bit-identical.
    """
    for path, payload in payloads[:20]:
        status, body = await request_json(
            server.host, server.port, "POST", path, payload
        )
        assert status == 200, (path, payload, body)
        if path == "/knn":
            request = QueryRequest.knn(payload["tokens"], k=payload["k"])
        else:
            request = QueryRequest.range(
                payload["tokens"], threshold=payload["threshold"]
            )
        expected = execute(reference, request).to_payload()
        if answers_only:
            body = {key: body[key] for key in ("kind", "count", "matches")}
            expected = {key: expected[key] for key in ("kind", "count", "matches")}
        assert body == expected, f"server diverged from direct call on {path}"


async def bench_server(
    index_dir: str, payloads, client_counts, per_client: int, reference,
    repeats: int = 1, **options
) -> list[dict]:
    """One server lifecycle; a closed-loop sweep over the client counts.

    Each level is measured ``repeats`` times and the best pass is kept —
    a closed-loop run is throughput-bound by the slowest straggler, so
    the max over passes is the least noisy capacity estimate (applied
    identically to the batched and the one-request-per-call server).
    """
    server = ReproServer(index_dir, port=0, **options)
    await server.start()
    await wait_ready(server.host, server.port, timeout=60)
    try:
        await check_bit_identity(server, reference, payloads)
        rows = []
        for clients in client_counts:
            passes = [
                await run_closed_loop(
                    server.host, server.port, payloads, clients, per_client
                )
                for _ in range(repeats)
            ]
            row = max(passes, key=lambda p: p["qps"])
            row["failures"] = sum(p["failures"] for p in passes)
            _, stats = await request_json(server.host, server.port, "GET", "/stats")
            row["mean_batch_size"] = stats["service"]["mean_batch_size"]
            rows.append(row)
        return rows
    finally:
        await server.stop()


async def chaos_suite(
    index_dir: str, payloads, clients: int, per_client: int, reference,
    scratch: str, window_ms: float, smoke: bool,
) -> dict:
    """Fault-injection scenarios against a process-parallel sharded server.

    * **worker_kill** — a pool worker SIGKILLs itself mid-run (exactly
      once, via a token file).  The acceptance bar: zero failed
      strict-mode requests, answers bit-identical after recovery; the
      run's max latency is the recovery-time proxy (the stalled batch
      waits out the pool rebuild).
    * **degraded_partial** — shard 0 fails persistently in the workers
      *and* in the in-process fallback (truly dead).  Clients asking
      ``degraded="partial"`` must all still get answers; the p99 ratio
      against the healthy baseline is the degraded-mode overhead.
    """
    from repro.testing.faults import FaultPlan, FaultRule, armed

    options = dict(parallel="process", batch_window_ms=window_ms, max_batch=8)

    async def fresh_server() -> ReproServer:
        server = ReproServer(index_dir, port=0, **options)
        await server.start()
        await wait_ready(server.host, server.port, timeout=60)
        return server

    results: dict = {"clients": clients, "per_client": per_client}

    server = await fresh_server()
    try:
        await check_bit_identity(server, reference, payloads, answers_only=True)
        baseline = await run_closed_loop(
            server.host, server.port, payloads, clients, per_client
        )
    finally:
        await server.stop()
    results["baseline"] = baseline

    server = await fresh_server()
    try:
        token = Path(scratch) / "chaos-kill.tok"
        plan = FaultPlan(
            [
                FaultRule(
                    "shard.task", action="kill", skip=2 if smoke else 8,
                    times=-1, token=str(token),
                )
            ]
        )
        with armed(plan):
            killed = await run_closed_loop(
                server.host, server.port, payloads, clients, per_client
            )
        killed["kill_fired"] = token.exists()
        killed["recovery_ms"] = killed["max_ms"]
        # Post-recovery the rebuilt pool must still answer exactly.
        await check_bit_identity(server, reference, payloads, answers_only=True)
    finally:
        await server.stop()
    results["worker_kill"] = killed

    dead_shard = FaultPlan(
        [
            FaultRule("shard.task", match="shard=0", times=-1),
            FaultRule("shard.exec", match="shard=0", times=-1),
        ]
    )
    partial_payloads = [
        (path, dict(payload, degraded="partial")) for path, payload in payloads
    ]
    server = await fresh_server()
    try:
        with armed(dead_shard):
            degraded = await run_closed_loop(
                server.host, server.port, partial_payloads, clients, per_client
            )
    finally:
        await server.stop()
    results["degraded_partial"] = degraded
    if baseline["p99_ms"] > 0:
        results["degraded_overhead_p99"] = degraded["p99_ms"] / baseline["p99_ms"]
    return results


def run_chaos(args, dataset, payloads, num_templates: int) -> int:
    from repro.distributed import ShardedLES3
    from repro.distributed.persistence import save_sharded

    clients = 8 if args.smoke else 64
    per_client = args.per_client if args.per_client is not None else (
        6 if args.smoke else 40
    )
    print(f"# chaos: 3 shards, {clients} clients x {per_client} requests")
    with tempfile.TemporaryDirectory() as scratch:
        index_dir = str(Path(scratch) / "index")
        sharded = ShardedLES3.build(
            dataset, num_shards=3, num_groups=max(num_templates // 2, 4)
        )
        save_sharded(sharded, index_dir)
        sharded.close()
        reference = load(index_dir)
        reference.dataset.columnar()
        try:
            chaos = asyncio.run(
                chaos_suite(
                    index_dir, payloads, clients, per_client, reference,
                    scratch, args.batch_window_ms, args.smoke,
                )
            )
        finally:
            reference.close()

    killed, degraded = chaos["worker_kill"], chaos["degraded_partial"]
    print(
        f"baseline    : {chaos['baseline']['qps']:8.0f} q/s  "
        f"p99 {chaos['baseline']['p99_ms']:7.2f}ms"
    )
    print(
        f"worker kill : {killed['qps']:8.0f} q/s  p99 {killed['p99_ms']:7.2f}ms  "
        f"recovery {killed['recovery_ms']:7.2f}ms  failures {killed['failures']}"
    )
    print(
        f"dead shard  : {degraded['qps']:8.0f} q/s  p99 {degraded['p99_ms']:7.2f}ms  "
        f"(degraded=partial) failures {degraded['failures']}"
    )

    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "chaos": chaos,
        },
    )
    print(f"# trajectory appended to {args.out}")

    if not killed["kill_fired"]:
        print("error: the worker-kill fault never fired", file=sys.stderr)
        return 1
    if killed["failures"]:
        print(
            f"error: {killed['failures']} strict requests failed after a "
            "worker kill — supervision must make the kill invisible",
            file=sys.stderr,
        )
        return 1
    if degraded["failures"]:
        print(
            f"error: {degraded['failures']} degraded=partial requests failed "
            "with one dead shard — partial mode must stay available",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI rot canary)")
    parser.add_argument(
        "--chaos", action="store_true",
        help="fault-injection scenarios (worker kill, dead shard) instead of the sweep",
    )
    parser.add_argument("--sets", type=int, default=None, help="database size")
    parser.add_argument(
        "--per-client", type=int, default=None, help="requests per client connection"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, help="server batch window"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="trajectory JSON path")
    args = parser.parse_args(argv)

    # Full size targets the sub-millisecond-query regime where a serving
    # layer lives (and where per-dispatch overhead, the thing batching
    # amortizes, is a meaningful fraction of each request).
    num_sets = args.sets if args.sets is not None else (400 if args.smoke else 1_500)
    per_client = args.per_client if args.per_client is not None else (6 if args.smoke else 40)
    client_counts = (1, 8) if args.smoke else (1, 8, 32, 64)
    if num_sets <= 0 or per_client <= 0:
        parser.error("--sets and --per-client must be positive")
    num_templates = max(num_sets // 60, 4)

    dataset = templated_dataset(num_sets, num_templates, seed=args.seed)
    payloads = sample_payloads(dataset, 200, seed=args.seed + 1)
    if args.chaos:
        return run_chaos(args, dataset, payloads, num_templates)
    print(
        f"# {num_sets} sets, {num_templates} templates, sweep {client_counts} "
        f"clients x {per_client} requests, window {args.batch_window_ms}ms"
    )

    with tempfile.TemporaryDirectory() as scratch:
        index_dir = str(Path(scratch) / "index")
        engine = LES3.build(dataset, num_groups=max(num_templates // 2, 4))
        save_engine(engine, index_dir)
        reference = load(index_dir)
        reference.dataset.columnar()  # server loads do the same on first batch

        repeats = 1 if args.smoke else 3

        async def run() -> tuple[list[dict], list[dict]]:
            batched = await bench_server(
                index_dir, payloads, client_counts, per_client, reference,
                repeats=repeats, batch_window_ms=args.batch_window_ms,
            )
            unbatched = await bench_server(
                index_dir, payloads, (client_counts[-1],), per_client, reference,
                repeats=repeats, batch_window_ms=0.0, max_batch=1,
            )
            return batched, unbatched

        batched, unbatched = asyncio.run(run())

    for row in batched:
        print(
            f"clients={row['clients']:>3}: {row['qps']:8.0f} q/s  "
            f"p50 {row['p50_ms']:7.2f}ms  p99 {row['p99_ms']:7.2f}ms  "
            f"mean batch {row['mean_batch_size']:.1f}"
        )
    peak, solo = batched[-1], unbatched[0]
    speedup = peak["qps"] / solo["qps"]
    print(
        f"max-batch=1 @ {solo['clients']} clients: {solo['qps']:8.0f} q/s  "
        f"p99 {solo['p99_ms']:7.2f}ms"
    )
    print(f"micro-batching speedup @ {peak['clients']} clients: {speedup:.2f}x")

    if any(row["failures"] for row in batched + [solo]):
        print("error: some requests failed", file=sys.stderr)
        return 1

    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "config": {
                "sets": num_sets,
                "templates": num_templates,
                "per_client": per_client,
                "batch_window_ms": args.batch_window_ms,
                "seed": args.seed,
            },
            "sweep": batched,
            "unbatched": solo,
            "batching_speedup": speedup,
        },
    )
    print(f"# trajectory appended to {args.out}")

    if not args.smoke and speedup < SPEEDUP_BAR:
        print(
            f"error: micro-batching speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_BAR}x bar at {peak['clients']} in-flight clients",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
