"""Sharded scatter-gather: execution modes, shard counts, and the lifecycle.

A clustered database (noisy copies of per-cluster templates, each cluster
owning a contiguous token block) is served by ``ShardedLES3`` at
S ∈ {1, 4, 8} with locality-preserving (``"range"``) placement, then
**saved, reloaded, and benchmarked in all three execution modes**
(``parallel="serial"|"thread"|"process"``):

* the serial numbers isolate the *hierarchical bound* — the shard
  vocabulary prunes whole shards before their per-group bounds are even
  computed, so per-query scoring shrinks as shards get finer;
* the thread/process numbers measure the scatter-gather pool on top of
  it (process workers are rehydrated from the saved directory, so this
  also times the real worker path, payload conversion included).

Each shard count also measures the **out-of-core load paths**: every
load mode (``"memory"``, ``"mmap"``, ``"lazy"``) runs in a fresh
subprocess that reports wall-clock load time and the resident-set (RSS)
delta the load caused, and the mmap-loaded engine's serial query
throughput is compared against the in-memory one (matches asserted
bit-identical first).  ``--mode`` picks which load path the execution-mode
benchmark itself runs on.

Every combination is asserted bit-identical before any number is
reported, and the save → load round trip is asserted bit-identical at
every shard count.  Each run appends one entry to the
``BENCH_sharded.json`` trajectory (repo root by default).  Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded.py          # full size
    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke  # CI-tiny
    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke --mode mmap

The script exits non-zero if any mode or any shard count ever disagrees;
on full-size runs it additionally enforces (machines with ≥ 4 cores) the
1.1x process-mode range speedup bar, and — any machine — that the
mmap-backed loads (``mmap`` or ``lazy``) beat the in-memory load by ≥ 5x
on load time or resident memory.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.bench import append_trajectory
from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse
from repro.distributed import ShardedLES3, load_sharded, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"
SHARD_COUNTS = (1, 4, 8)
MODES = ("serial", "thread", "process")
LOAD_MODES = ("memory", "mmap", "lazy")
K = 10
THRESHOLD = 0.6

# Runs in a fresh interpreter per (directory, load mode): the parent's heap
# would drown the signal, a child's RSS delta is exactly what the load costs.
_MEASURE_SNIPPET = """\
import json, sys, time

def rss_bytes():
    try:
        with open('/proc/self/status') as handle:
            for line in handle:
                if line.startswith('VmRSS:'):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource  # non-Linux fallback: peak RSS (coarser, still a delta)
    scale = 1024 if sys.platform != 'darwin' else 1
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale

from repro.distributed import load_sharded

directory, mode = sys.argv[1], sys.argv[2]
before = rss_bytes()
start = time.perf_counter()
engine = load_sharded(directory, mode=mode)
cold_seconds = time.perf_counter() - start
rss_delta = rss_bytes() - before
# The second load times the load path itself, free of one-shot interpreter
# and library initialization; the first engine is dropped so the modes'
# steady-state numbers stay comparable.
del engine
start = time.perf_counter()
engine = load_sharded(directory, mode=mode)
seconds = time.perf_counter() - start
print(json.dumps({
    'seconds': seconds,
    'cold_seconds': cold_seconds,
    'rss_bytes': rss_delta,
}))
"""


def measure_load(directory: Path, mode: str) -> dict:
    """Load time and RSS delta of one load mode, in a fresh subprocess."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [src, env.get("PYTHONPATH")]))
    result = subprocess.run(
        [sys.executable, "-c", _MEASURE_SNIPPET, str(directory), mode],
        capture_output=True, text=True, env=env,
    )
    if result.returncode != 0:
        raise RuntimeError(f"load measurement ({mode}) failed: {result.stderr}")
    return json.loads(result.stdout)


def bench_load_paths(index_dir: Path, loaded: ShardedLES3, queries) -> dict:
    """Per-mode load cost plus mmap-vs-memory serial query throughput.

    ``loaded`` is the already-loaded in-memory reference engine; the
    mmap engine's batch answers are asserted bit-identical to it before
    any throughput is reported.
    """
    out: dict = {mode: measure_load(index_dir, mode) for mode in LOAD_MODES}
    memory = out["memory"]
    for mode in ("mmap", "lazy"):
        out[f"{mode}_load_speedup"] = memory["seconds"] / max(out[mode]["seconds"], 1e-9)
        out[f"{mode}_rss_improvement"] = memory["rss_bytes"] / max(out[mode]["rss_bytes"], 1)
    with load_sharded(index_dir, mode="mmap") as mapped:
        mapped_queries = sample_queries(mapped.dataset, len(queries), seed=1)
        # Warm-up pass: fault the touched pages in before timing, so the
        # number reflects steady-state mmap throughput, not first-touch IO.
        mapped.batch_knn_record(mapped_queries, K)
        start = time.perf_counter()
        knn_results = mapped.batch_knn_record(mapped_queries, K)
        knn_seconds = time.perf_counter() - start
        start = time.perf_counter()
        range_results = mapped.batch_range_record(mapped_queries, THRESHOLD)
        range_seconds = time.perf_counter() - start
        assert [r.matches for r in knn_results] == [
            r.matches for r in loaded.batch_knn_record(queries, K)
        ], "mmap load changed kNN answers"
        assert [r.matches for r in range_results] == [
            r.matches for r in loaded.batch_range_record(queries, THRESHOLD)
        ], "mmap load changed range answers"
        out["mmap_knn_qps"] = len(queries) / knn_seconds
        out["mmap_range_qps"] = len(queries) / range_seconds
    return out


def clustered_block_dataset(
    num_sets: int, num_clusters: int, seed: int = 0
) -> Dataset:
    """Template clusters over contiguous token blocks (locality-shardable)."""
    block, template_size, set_size, noise = 40, 15, 12, 0.02
    rng = random.Random(seed)
    num_tokens = num_clusters * block
    templates = [
        rng.sample(range(c * block, (c + 1) * block), template_size)
        for c in range(num_clusters)
    ]
    records = []
    for i in range(num_sets):
        tokens = set(rng.sample(templates[i % num_clusters], set_size))
        if rng.random() < noise:
            tokens.discard(next(iter(tokens)))
            tokens.add(rng.randrange(num_tokens))
        records.append(SetRecord(tokens))
    return Dataset(records, TokenUniverse(range(num_tokens)))


def check_round_trip(engine: ShardedLES3, loaded: ShardedLES3, queries) -> None:
    """Loaded engine must answer exactly like the one that was saved."""
    local = sample_queries(loaded.dataset, len(queries), seed=1)
    assert [r.matches for r in loaded.batch_knn_record(local, K)] == [
        r.matches for r in engine.batch_knn_record(queries, K)
    ], "save -> load changed kNN answers"
    assert [r.matches for r in loaded.batch_range_record(local, THRESHOLD)] == [
        r.matches for r in engine.batch_range_record(queries, THRESHOLD)
    ], "save -> load changed range answers"
    assert loaded.join(THRESHOLD).pairs == engine.join(THRESHOLD).pairs, (
        "save -> load changed join pairs"
    )


def bench_modes(loaded: ShardedLES3, queries, repeats: int) -> dict:
    """Time every execution mode; assert bit-identical matches throughout."""
    row: dict = {}
    reference = None
    for mode in MODES:
        if mode == "process":
            # Warm the pool (fork + first rehydration) outside the timing.
            loaded.batch_knn_record(queries[:2], K, parallel=mode)
        knn_best = range_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            knn_results = loaded.batch_knn_record(queries, K, parallel=mode)
            knn_best = min(knn_best, time.perf_counter() - start)
            start = time.perf_counter()
            range_results = loaded.batch_range_record(queries, THRESHOLD, parallel=mode)
            range_best = min(range_best, time.perf_counter() - start)
        matches = (
            [r.matches for r in knn_results],
            [r.matches for r in range_results],
        )
        if reference is None:
            reference = matches
        else:
            assert matches == reference, f"parallel={mode!r} changed the answers"
        row[mode] = {
            "knn_qps": len(queries) / knn_best,
            "range_qps": len(queries) / range_best,
        }
    row["process_speedup_knn"] = row["process"]["knn_qps"] / row["serial"]["knn_qps"]
    row["process_speedup_range"] = (
        row["process"]["range_qps"] / row["serial"]["range_qps"]
    )
    row["thread_speedup_range"] = row["thread"]["range_qps"] / row["serial"]["range_qps"]
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI rot canary)")
    parser.add_argument("--sets", type=int, default=None, help="database size")
    parser.add_argument("--queries", type=int, default=None, help="batch size")
    parser.add_argument("--repeat", type=int, default=None, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode", default="memory", choices=list(LOAD_MODES),
        help="load path of the engine the execution-mode benchmark runs on "
        "(the load-path comparison itself always measures all three)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="trajectory JSON path")
    args = parser.parse_args(argv)

    num_sets = args.sets if args.sets is not None else (600 if args.smoke else 12_000)
    num_queries = args.queries if args.queries is not None else (30 if args.smoke else 200)
    repeats = args.repeat if args.repeat is not None else (1 if args.smoke else 2)
    if num_sets <= 0 or num_queries <= 0 or repeats <= 0:
        parser.error("--sets, --queries, and --repeat must be positive")
    num_clusters = max(num_sets // 25, 4)
    num_groups = num_clusters

    dataset = clustered_block_dataset(num_sets, num_clusters, seed=args.seed)
    queries = sample_queries(dataset, num_queries, seed=1)
    dataset.columnar()  # whole-database one-time cost, outside every timing
    print(
        f"# {num_sets} sets, {num_clusters} clusters, {num_groups} groups, "
        f"{num_queries} queries, {os.cpu_count()} core(s)"
    )

    rows = []
    with tempfile.TemporaryDirectory() as scratch:
        for shards in SHARD_COUNTS:
            start = time.perf_counter()
            engine = ShardedLES3.build(
                dataset, shards, num_groups=num_groups,
                partitioner_factory=lambda shard_id: MinTokenPartitioner(),
                strategy="range", workers=1,
            )
            build_seconds = time.perf_counter() - start
            index_dir = Path(scratch) / f"S{shards}"
            start = time.perf_counter()
            save_sharded(engine, index_dir)
            save_seconds = time.perf_counter() - start
            start = time.perf_counter()
            loaded = load_sharded(index_dir, mode=args.mode)
            load_seconds = time.perf_counter() - start
            check_round_trip(engine, loaded, queries)
            local_queries = sample_queries(loaded.dataset, num_queries, seed=1)
            loaded.dataset.columnar()
            row = {"load_paths": bench_load_paths(index_dir, loaded, local_queries)}
            with loaded:
                row.update(bench_modes(loaded, local_queries, repeats))
            row.update(
                shards=shards,
                build_seconds=build_seconds,
                save_seconds=save_seconds,
                load_seconds=load_seconds,
                queries_mode=args.mode,
            )
            rows.append(row)
            paths = row["load_paths"]
            print(
                f"S={shards}: build {build_seconds:.2f}s, save {save_seconds:.2f}s, "
                f"load[{args.mode}] {load_seconds:.2f}s, round-trip OK; "
                + ", ".join(
                    f"{mode} knn {row[mode]['knn_qps']:,.0f} q/s / "
                    f"range {row[mode]['range_qps']:,.0f} q/s"
                    for mode in MODES
                )
                + f"; process speedup knn {row['process_speedup_knn']:.2f}x, "
                f"range {row['process_speedup_range']:.2f}x"
            )
            print(
                f"S={shards} load paths: "
                + ", ".join(
                    f"{mode} {paths[mode]['seconds'] * 1000:.0f} ms / "
                    f"{paths[mode]['rss_bytes'] / 1e6:.1f} MB"
                    for mode in LOAD_MODES
                )
                + f"; mmap speedup {paths['mmap_load_speedup']:.1f}x load / "
                f"{paths['mmap_rss_improvement']:.1f}x RSS, "
                f"lazy {paths['lazy_load_speedup']:.1f}x load / "
                f"{paths['lazy_rss_improvement']:.1f}x RSS; "
                f"mmap serial knn {paths['mmap_knn_qps']:,.0f} q/s, "
                f"range {paths['mmap_range_qps']:,.0f} q/s"
            )

    best_process_range = max(row["process_speedup_range"] for row in rows)
    best_out_of_core = max(
        row["load_paths"][key]
        for row in rows
        for key in (
            "mmap_load_speedup", "mmap_rss_improvement",
            "lazy_load_speedup", "lazy_rss_improvement",
        )
    )
    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "config": {
                "sets": num_sets,
                "clusters": num_clusters,
                "groups": num_groups,
                "queries": num_queries,
                "repeats": repeats,
                "seed": args.seed,
                "k": K,
                "threshold": THRESHOLD,
                "cpus": os.cpu_count(),
            },
            "shard_counts": rows,
            "best_process_range_speedup": best_process_range,
            "best_out_of_core_improvement": best_out_of_core,
        },
    )
    print(f"# appended to {args.out}")
    if not args.smoke and (os.cpu_count() or 1) >= 4 and best_process_range < 1.1:
        print("FAIL: process-mode range speedup below the 1.1x acceptance bar")
        return 1
    if not args.smoke and best_out_of_core < 5.0:
        print(
            "FAIL: mmap-backed loads beat the in-memory load by "
            f"{best_out_of_core:.1f}x at best — below the 5x acceptance bar"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
