"""Sharded scatter-gather: batch-query throughput vs shard count.

A 12 000-set clustered database (noisy copies of per-cluster templates,
each cluster owning a contiguous token block) is served by ``ShardedLES3``
at S ∈ {1, 2, 4, 8} with locality-preserving (``"range"``) placement.

What sharding buys on one core is the *hierarchical bound*: the shard
vocabulary prunes whole shards before their per-group bounds are even
computed, so the per-query scoring cost shrinks as shards get finer —
while every shard count returns bit-identical results.  (On multi-core
hardware the per-shard scoring additionally parallelises; this benchmark
measures the single-thread algorithmic effect only.)
"""

import random
import time

import pytest

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse
from repro.distributed import ShardedLES3
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

NUM_SETS = 12_000
NUM_CLUSTERS = 480
BLOCK = 40
TEMPLATE_SIZE = 15
SET_SIZE = 12
NOISE = 0.02
NUM_GROUPS = 480
NUM_QUERIES = 200
K = 10
THRESHOLD = 0.6
SHARD_COUNTS = (1, 2, 4, 8)
REPEATS = 2


def clustered_block_dataset(seed: int = 0) -> Dataset:
    """Template clusters over contiguous token blocks (locality-shardable)."""
    rng = random.Random(seed)
    num_tokens = NUM_CLUSTERS * BLOCK
    templates = [
        rng.sample(range(c * BLOCK, (c + 1) * BLOCK), TEMPLATE_SIZE)
        for c in range(NUM_CLUSTERS)
    ]
    records = []
    for i in range(NUM_SETS):
        tokens = set(rng.sample(templates[i % NUM_CLUSTERS], SET_SIZE))
        if rng.random() < NOISE:
            tokens.discard(next(iter(tokens)))
            tokens.add(rng.randrange(num_tokens))
        records.append(SetRecord(tokens))
    return Dataset(records, TokenUniverse(range(num_tokens)))


@pytest.mark.benchmark(group="sharded")
def test_sharded_batch_throughput(report, benchmark):
    dataset = clustered_block_dataset()
    queries = sample_queries(dataset, NUM_QUERIES, seed=1)

    def evaluate():
        results = {}
        reference = None
        for shards in SHARD_COUNTS:
            start = time.perf_counter()
            engine = ShardedLES3.build(
                dataset,
                shards,
                num_groups=NUM_GROUPS,
                partitioner_factory=lambda shard_id: MinTokenPartitioner(),
                strategy="range",
                workers=1,
            )
            build_seconds = time.perf_counter() - start
            knn_best = range_best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                knn_results = engine.batch_knn_record(queries, K)
                knn_best = min(knn_best, time.perf_counter() - start)
                start = time.perf_counter()
                range_results = engine.batch_range_record(queries, THRESHOLD)
                range_best = min(range_best, time.perf_counter() - start)
            matches = (
                [result.matches for result in knn_results],
                [result.matches for result in range_results],
            )
            if reference is None:
                reference = matches
            else:
                # Exactness: every shard count returns identical results.
                assert matches == reference
            results[shards] = (
                build_seconds,
                NUM_QUERIES / knn_best,
                NUM_QUERIES / range_best,
            )
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [shards, round(build, 2), round(knn_qps), round(range_qps)]
        for shards, (build, knn_qps, range_qps) in results.items()
    ]
    report(
        "sharded",
        f"Sharded scatter-gather ({NUM_SETS} sets, {NUM_GROUPS} groups, k={K}, δ={THRESHOLD})",
        ["shards", "build s", "knn q/s", "range q/s"],
        rows,
    )
    single_knn, single_range = results[1][1], results[1][2]
    multi_knn = max(results[s][1] for s in SHARD_COUNTS if s > 1)
    multi_range = max(results[s][2] for s in SHARD_COUNTS if s > 1)
    # Shard pruning must pay for its overhead: batch throughput improves
    # with shard count on clustered data (range dramatically, kNN modestly
    # because exact verification is irreducible).
    assert multi_range > single_range * 1.2
    assert multi_knn > single_knn
