"""Sharded scatter-gather: execution modes, shard counts, and the lifecycle.

A clustered database (noisy copies of per-cluster templates, each cluster
owning a contiguous token block) is served by ``ShardedLES3`` at
S ∈ {1, 4, 8} with locality-preserving (``"range"``) placement, then
**saved, reloaded, and benchmarked in all three execution modes**
(``parallel="serial"|"thread"|"process"``):

* the serial numbers isolate the *hierarchical bound* — the shard
  vocabulary prunes whole shards before their per-group bounds are even
  computed, so per-query scoring shrinks as shards get finer;
* the thread/process numbers measure the scatter-gather pool on top of
  it (process workers are rehydrated from the saved directory, so this
  also times the real worker path, payload conversion included).

Every combination is asserted bit-identical before any number is
reported, and the save → load round trip is asserted bit-identical at
every shard count.  Each run appends one entry to the
``BENCH_sharded.json`` trajectory (repo root by default).  Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded.py          # full size
    PYTHONPATH=src python benchmarks/bench_sharded.py --smoke  # CI-tiny

The script exits non-zero if any mode or any shard count ever disagrees,
or (full size, machines with ≥ 4 cores) if the best process-mode range
speedup over serial at the same S drops below 1.1x.  On smaller machines
the speedup is recorded but not enforced — a one-core container cannot
demonstrate process parallelism, only its overhead.
"""

from __future__ import annotations

import argparse
import os
import random
import tempfile
import time
from pathlib import Path

from repro.bench import append_trajectory
from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse
from repro.distributed import ShardedLES3, load_sharded, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"
SHARD_COUNTS = (1, 4, 8)
MODES = ("serial", "thread", "process")
K = 10
THRESHOLD = 0.6


def clustered_block_dataset(
    num_sets: int, num_clusters: int, seed: int = 0
) -> Dataset:
    """Template clusters over contiguous token blocks (locality-shardable)."""
    block, template_size, set_size, noise = 40, 15, 12, 0.02
    rng = random.Random(seed)
    num_tokens = num_clusters * block
    templates = [
        rng.sample(range(c * block, (c + 1) * block), template_size)
        for c in range(num_clusters)
    ]
    records = []
    for i in range(num_sets):
        tokens = set(rng.sample(templates[i % num_clusters], set_size))
        if rng.random() < noise:
            tokens.discard(next(iter(tokens)))
            tokens.add(rng.randrange(num_tokens))
        records.append(SetRecord(tokens))
    return Dataset(records, TokenUniverse(range(num_tokens)))


def check_round_trip(engine: ShardedLES3, loaded: ShardedLES3, queries) -> None:
    """Loaded engine must answer exactly like the one that was saved."""
    local = sample_queries(loaded.dataset, len(queries), seed=1)
    assert [r.matches for r in loaded.batch_knn_record(local, K)] == [
        r.matches for r in engine.batch_knn_record(queries, K)
    ], "save -> load changed kNN answers"
    assert [r.matches for r in loaded.batch_range_record(local, THRESHOLD)] == [
        r.matches for r in engine.batch_range_record(queries, THRESHOLD)
    ], "save -> load changed range answers"
    assert loaded.join(THRESHOLD).pairs == engine.join(THRESHOLD).pairs, (
        "save -> load changed join pairs"
    )


def bench_modes(loaded: ShardedLES3, queries, repeats: int) -> dict:
    """Time every execution mode; assert bit-identical matches throughout."""
    row: dict = {}
    reference = None
    for mode in MODES:
        if mode == "process":
            # Warm the pool (fork + first rehydration) outside the timing.
            loaded.batch_knn_record(queries[:2], K, parallel=mode)
        knn_best = range_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            knn_results = loaded.batch_knn_record(queries, K, parallel=mode)
            knn_best = min(knn_best, time.perf_counter() - start)
            start = time.perf_counter()
            range_results = loaded.batch_range_record(queries, THRESHOLD, parallel=mode)
            range_best = min(range_best, time.perf_counter() - start)
        matches = (
            [r.matches for r in knn_results],
            [r.matches for r in range_results],
        )
        if reference is None:
            reference = matches
        else:
            assert matches == reference, f"parallel={mode!r} changed the answers"
        row[mode] = {
            "knn_qps": len(queries) / knn_best,
            "range_qps": len(queries) / range_best,
        }
    row["process_speedup_knn"] = row["process"]["knn_qps"] / row["serial"]["knn_qps"]
    row["process_speedup_range"] = (
        row["process"]["range_qps"] / row["serial"]["range_qps"]
    )
    row["thread_speedup_range"] = row["thread"]["range_qps"] / row["serial"]["range_qps"]
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI rot canary)")
    parser.add_argument("--sets", type=int, default=None, help="database size")
    parser.add_argument("--queries", type=int, default=None, help="batch size")
    parser.add_argument("--repeat", type=int, default=None, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="trajectory JSON path")
    args = parser.parse_args(argv)

    num_sets = args.sets if args.sets is not None else (600 if args.smoke else 12_000)
    num_queries = args.queries if args.queries is not None else (30 if args.smoke else 200)
    repeats = args.repeat if args.repeat is not None else (1 if args.smoke else 2)
    if num_sets <= 0 or num_queries <= 0 or repeats <= 0:
        parser.error("--sets, --queries, and --repeat must be positive")
    num_clusters = max(num_sets // 25, 4)
    num_groups = num_clusters

    dataset = clustered_block_dataset(num_sets, num_clusters, seed=args.seed)
    queries = sample_queries(dataset, num_queries, seed=1)
    dataset.columnar()  # whole-database one-time cost, outside every timing
    print(
        f"# {num_sets} sets, {num_clusters} clusters, {num_groups} groups, "
        f"{num_queries} queries, {os.cpu_count()} core(s)"
    )

    rows = []
    with tempfile.TemporaryDirectory() as scratch:
        for shards in SHARD_COUNTS:
            start = time.perf_counter()
            engine = ShardedLES3.build(
                dataset, shards, num_groups=num_groups,
                partitioner_factory=lambda shard_id: MinTokenPartitioner(),
                strategy="range", workers=1,
            )
            build_seconds = time.perf_counter() - start
            index_dir = Path(scratch) / f"S{shards}"
            start = time.perf_counter()
            save_sharded(engine, index_dir)
            save_seconds = time.perf_counter() - start
            start = time.perf_counter()
            loaded = load_sharded(index_dir)
            load_seconds = time.perf_counter() - start
            check_round_trip(engine, loaded, queries)
            local_queries = sample_queries(loaded.dataset, num_queries, seed=1)
            loaded.dataset.columnar()
            with loaded:
                row = bench_modes(loaded, local_queries, repeats)
            row.update(
                shards=shards,
                build_seconds=build_seconds,
                save_seconds=save_seconds,
                load_seconds=load_seconds,
            )
            rows.append(row)
            print(
                f"S={shards}: build {build_seconds:.2f}s, save {save_seconds:.2f}s, "
                f"load {load_seconds:.2f}s, round-trip OK; "
                + ", ".join(
                    f"{mode} knn {row[mode]['knn_qps']:,.0f} q/s / "
                    f"range {row[mode]['range_qps']:,.0f} q/s"
                    for mode in MODES
                )
                + f"; process speedup knn {row['process_speedup_knn']:.2f}x, "
                f"range {row['process_speedup_range']:.2f}x"
            )

    best_process_range = max(row["process_speedup_range"] for row in rows)
    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "config": {
                "sets": num_sets,
                "clusters": num_clusters,
                "groups": num_groups,
                "queries": num_queries,
                "repeats": repeats,
                "seed": args.seed,
                "k": K,
                "threshold": THRESHOLD,
                "cpus": os.cpu_count(),
            },
            "shard_counts": rows,
            "best_process_range_speedup": best_process_range,
        },
    )
    print(f"# appended to {args.out}")
    if not args.smoke and (os.cpu_count() or 1) >= 4 and best_process_range < 1.1:
        print("FAIL: process-mode range speedup below the 1.1x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
