"""Table 2 — dataset statistics of the calibrated stand-ins.

Regenerates the Table 2 row shape (|D|, max/min/avg set size, |T|) for each
of the six datasets at benchmark scale and reports the target statistics of
the real corpora alongside.  Benchmarks the generation of the KOSARAK
stand-in itself.
"""

import pytest

from repro.datasets import TABLE2_SPECS, dataset_names, make_dataset

SCALES = {
    "KOSARAK": 0.002,
    "LIVEJ": 0.0006,
    "DBLP": 0.0003,
    "AOL": 0.0002,
    "FS": 0.00003,
    "PMC": 0.0000025,
}


@pytest.mark.benchmark(group="table2")
def test_table2_statistics(report, benchmark):
    def build_all():
        rows = []
        for name in dataset_names():
            spec = TABLE2_SPECS[name]
            dataset = make_dataset(name, scale=SCALES[name], seed=0)
            stats = dataset.stats()
            rows.append((spec, stats))
        return rows

    built = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for spec, stats in built:
        rows.append(
            [
                spec.name,
                stats.num_sets,
                stats.max_set_size,
                stats.min_set_size,
                round(stats.avg_set_size, 1),
                stats.universe_size,
                f"(paper: |D|={spec.num_sets}, avg={spec.avg_size}, |T|={spec.universe_size})",
            ]
        )
        # Shape assertions: min matches exactly, avg within a factor ~1.6.
        assert stats.min_set_size >= spec.min_size
        assert stats.avg_set_size == pytest.approx(spec.avg_size, rel=0.6)
    report(
        "table2",
        "Table 2: dataset statistics (scaled stand-ins)",
        ["dataset", "|D|", "max", "min", "avg", "|T|", "target"],
        rows,
    )


@pytest.mark.benchmark(group="table2-generation")
def test_generate_kosarak_like(benchmark):
    dataset = benchmark.pedantic(
        lambda: make_dataset("KOSARAK", scale=0.002, seed=0), rounds=2, iterations=1
    )
    assert len(dataset) > 1_000
