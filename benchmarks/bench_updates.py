"""The write path, measured: insert/remove throughput, delta drag, compaction.

A saved generation is loaded and mutated through the write-ahead
``delta.log``; the benchmark reports

* **write throughput** — fsync-bound appends per second, for inserts
  and for tombstones (each op is one open/write/fsync/close cycle, so
  this is a durability price, not a CPU one);
* **query drag vs delta size** — serial knn throughput with an empty
  delta, a half-full one, and a full one (the delta lives in the same
  in-memory structures as the base, so the expected drag is only the
  growth of the database itself);
* **compaction** — wall-clock cost of ``compact_index`` folding the
  delta into a fresh base generation, plus the reload speed afterward.

Exactness is asserted before any number is reported: the mutated
base+delta engine, a reloaded copy (which replays the log), and the
compacted generation must answer bit-identically.  Each run appends one
entry to the ``BENCH_updates.json`` trajectory (repo root by default)::

    PYTHONPATH=src python benchmarks/bench_updates.py          # full size
    PYTHONPATH=src python benchmarks/bench_updates.py --smoke  # CI-tiny
"""

from __future__ import annotations

import argparse
import os
import random
import tempfile
import time
from pathlib import Path

import repro
from repro.bench import append_trajectory
from repro.core import LES3
from repro.core.persistence import save_engine
from repro.datasets import zipf_dataset
from repro.maintenance import compact_index
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_updates.json"
K = 10


def token_lists(dataset):
    return [
        [str(dataset.universe.token_of(t)) for t in record.tokens]
        for record in dataset.records
    ]


def knn_qps(engine, queries, repeats):
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.knn(query, K)
    elapsed = time.perf_counter() - start
    return repeats * len(queries) / elapsed if elapsed > 0 else float("inf")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-tiny sizes")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        num_sets, num_tokens, num_writes, num_queries, repeats = 300, 400, 60, 20, 2
    else:
        num_sets, num_tokens, num_writes, num_queries, repeats = 8_000, 6_000, 2_000, 100, 5

    rng = random.Random(args.seed)
    dataset = zipf_dataset(num_sets, num_tokens, (2, 10), seed=args.seed)
    lists = token_lists(dataset)
    queries = [
        [str(dataset.universe.token_of(t)) for t in record.tokens]
        for record in sample_queries(dataset, num_queries, seed=args.seed)
    ]

    workdir = Path(tempfile.mkdtemp(prefix="bench-updates-"))
    generation = workdir / "gen"
    built = LES3.build(
        repro.Dataset.from_token_lists(lists), num_groups=16,
        partitioner=MinTokenPartitioner(),
    )
    save_engine(built, generation)
    engine = repro.load(generation)

    qps_empty = knn_qps(engine, queries, repeats)

    # -- write throughput (every op is an fsynced append) -------------------
    inserts = [
        rng.sample(sorted({t for record in lists for t in record}), rng.randint(2, 8))
        for _ in range(num_writes)
    ]
    start = time.perf_counter()
    inserted = [engine.insert(tokens)[0] for tokens in inserts]
    insert_seconds = time.perf_counter() - start
    qps_half = knn_qps(engine, queries, repeats)

    victims = rng.sample(range(num_sets), num_writes // 2)
    start = time.perf_counter()
    for victim in victims:
        engine.remove(victim)
    remove_seconds = time.perf_counter() - start
    qps_full = knn_qps(engine, queries, repeats)

    # -- exactness gate: live base+delta == replayed log == compacted -------
    probes = queries[: max(4, num_queries // 5)] + [inserts[0], inserts[-1]]
    live = [engine.knn(q, K).matches for q in probes]
    replayed = repro.load(generation, mode="mmap")
    if [replayed.knn(q, K).matches for q in probes] != live:
        print("FAIL: replayed delta log disagrees with the live engine")
        return 1

    start = time.perf_counter()
    stats = compact_index(generation)
    compact_seconds = time.perf_counter() - start
    start = time.perf_counter()
    compacted = repro.load(generation)
    reload_seconds = time.perf_counter() - start
    if [compacted.knn(q, K).matches for q in probes] != live:
        print("FAIL: compacted generation disagrees with the live engine")
        return 1
    if stats["ops_folded"] != num_writes + num_writes // 2:
        print(f"FAIL: compaction folded {stats['ops_folded']} ops, "
              f"expected {num_writes + num_writes // 2}")
        return 1
    assert all(index not in compacted.removed for index in inserted)

    insert_ops = num_writes / insert_seconds if insert_seconds > 0 else float("inf")
    remove_ops = (
        (num_writes // 2) / remove_seconds if remove_seconds > 0 else float("inf")
    )
    print(
        f"writes: {insert_ops:,.0f} inserts/s, {remove_ops:,.0f} removes/s "
        f"(fsync-per-op durability)"
    )
    print(
        f"knn drag: {qps_empty:,.0f} q/s empty delta -> {qps_half:,.0f} q/s "
        f"after {num_writes} inserts -> {qps_full:,.0f} q/s with "
        f"{num_writes + num_writes // 2} pending ops"
    )
    print(
        f"compaction: folded {stats['ops_folded']} ops in "
        f"{compact_seconds * 1000:.0f} ms; clean reload {reload_seconds * 1000:.0f} ms"
    )

    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "config": {
                "sets": num_sets,
                "tokens": num_tokens,
                "writes": num_writes,
                "queries": num_queries,
                "repeats": repeats,
                "seed": args.seed,
                "k": K,
                "cpus": os.cpu_count(),
            },
            "insert_ops_per_second": insert_ops,
            "remove_ops_per_second": remove_ops,
            "knn_qps_empty_delta": qps_empty,
            "knn_qps_half_delta": qps_half,
            "knn_qps_full_delta": qps_full,
            "compact_seconds": compact_seconds,
            "reload_seconds": reload_seconds,
            "ops_folded": stats["ops_folded"],
            "num_tombstones": stats["num_tombstones"],
        },
    )
    print(f"# appended to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
