"""Verification-kernel benchmark: columnar vs scalar candidate scoring.

Measures, on a clustered database where TGM pruning leaves realistic
surviving groups:

1. **Kernel throughput** — records verified per second when scoring the
   surviving groups of each query with the scalar ``measure(query,
   record)`` walk vs the columnar ``GroupVerifier`` one-shot kernel.
2. **End-to-end batch throughput** — ``batch_range_search`` /
   ``batch_knn_search`` queries per second under ``verify="scalar"`` vs
   ``verify="columnar"``.

Every comparison asserts bit-identical results before it reports a
number.  Each run appends one entry to the ``BENCH_verify.json``
trajectory (repo root by default) so speedups are tracked across
commits.  Run directly::

    PYTHONPATH=src python benchmarks/bench_verify.py          # full size
    PYTHONPATH=src python benchmarks/bench_verify.py --smoke  # CI-tiny

The script exits non-zero if the two paths ever disagree.
"""

from __future__ import annotations

import argparse
import random
import time
from pathlib import Path

import numpy as np

from repro.bench import append_trajectory
from repro.core.batch import batch_knn_search, batch_range_search
from repro.core.columnar import make_verifier
from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.search import query_group_bounds
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_verify.json"


def clustered_dataset(num_sets: int, num_clusters: int, seed: int = 0) -> Dataset:
    """Noisy per-cluster templates over contiguous token blocks."""
    rng = random.Random(seed)
    block, template_size, set_size = 40, 15, 12
    num_tokens = num_clusters * block
    templates = [
        rng.sample(range(c * block, (c + 1) * block), template_size)
        for c in range(num_clusters)
    ]
    records = []
    for i in range(num_sets):
        tokens = set(rng.sample(templates[i % num_clusters], set_size))
        if rng.random() < 0.02:
            tokens.discard(next(iter(tokens)))
            tokens.add(rng.randrange(num_tokens))
        records.append(SetRecord(tokens))
    return Dataset(records, TokenUniverse(range(num_tokens)))


def bench_kernel(engine: LES3, queries, threshold: float, repeats: int) -> dict:
    """Records/second verifying each query's surviving groups, both paths."""
    dataset, tgm, measure = engine.dataset, engine.tgm, engine.measure
    survivors = []
    for query in queries:
        bounds = query_group_bounds(tgm, query)
        groups = [tgm.group_members[int(g)] for g in np.flatnonzero(bounds >= threshold)]
        survivors.append((query, groups))
    total_records = sum(len(members) for _, groups in survivors for members in groups)

    def scalar_pass():
        return [
            [measure(query, dataset.records[index]) for index in members]
            for query, groups in survivors
            for members in groups
        ]

    def columnar_pass():
        out = []
        for query, groups in survivors:
            verifier = make_verifier(dataset, query, measure, "columnar")
            out.extend(verifier(members).tolist() for members in groups)
        return out

    scalar_seconds = columnar_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        scalar_sims = scalar_pass()
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        columnar_sims = columnar_pass()
        columnar_seconds = min(columnar_seconds, time.perf_counter() - start)
    assert columnar_sims == scalar_sims, "kernel similarities diverged from scalar oracle"
    return {
        "records_verified": total_records,
        "scalar_rps": total_records / scalar_seconds,
        "columnar_rps": total_records / columnar_seconds,
        "speedup": scalar_seconds / columnar_seconds,
    }


def bench_end_to_end(engine: LES3, queries, threshold: float, k: int, repeats: int) -> dict:
    """Batch range + knn queries/second under each verify mode."""
    dataset, tgm = engine.dataset, engine.tgm
    out = {}
    for name, run in (
        ("range", lambda mode: batch_range_search(dataset, tgm, queries, threshold, verify=mode)),
        ("knn", lambda mode: batch_knn_search(dataset, tgm, queries, k, verify=mode)),
    ):
        seconds, matches = {}, {}
        for mode in ("scalar", "columnar"):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                results = run(mode)
                best = min(best, time.perf_counter() - start)
            seconds[mode] = best
            matches[mode] = [result.matches for result in results]
        assert matches["columnar"] == matches["scalar"], f"{name} results diverged"
        out[name] = {
            "scalar_qps": len(queries) / seconds["scalar"],
            "columnar_qps": len(queries) / seconds["columnar"],
            "speedup": seconds["scalar"] / seconds["columnar"],
        }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes (CI rot canary)")
    parser.add_argument("--sets", type=int, default=None, help="database size")
    parser.add_argument("--queries", type=int, default=None, help="query batch size")
    parser.add_argument("--threshold", type=float, default=0.6)
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--repeat", type=int, default=None, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--groups", type=int, default=None,
        help="group count (default: the paper's 0.5%% rule of thumb)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="trajectory JSON path")
    args = parser.parse_args(argv)

    num_sets = args.sets or (400 if args.smoke else 12_000)
    num_queries = args.queries or (20 if args.smoke else 200)
    repeats = args.repeat or (1 if args.smoke else 3)
    num_clusters = max(num_sets // 25, 2)

    dataset = clustered_dataset(num_sets, num_clusters, seed=args.seed)
    start = time.perf_counter()
    engine = LES3.build(dataset, num_groups=args.groups, partitioner=MinTokenPartitioner())
    build_seconds = time.perf_counter() - start
    dataset.columnar()  # build the CSR view outside the timed region
    queries = sample_queries(dataset, num_queries, seed=args.seed + 1)
    print(
        f"# {num_sets} sets, {engine.num_groups} groups, {num_queries} queries, "
        f"δ={args.threshold}, k={args.k} (build {build_seconds:.2f}s)"
    )

    kernel = bench_kernel(engine, queries, args.threshold, repeats)
    print(
        f"kernel: scalar {kernel['scalar_rps']:,.0f} rec/s, "
        f"columnar {kernel['columnar_rps']:,.0f} rec/s "
        f"→ {kernel['speedup']:.2f}x ({kernel['records_verified']} records/query-batch)"
    )
    end_to_end = bench_end_to_end(engine, queries, args.threshold, args.k, repeats)
    for name, numbers in end_to_end.items():
        print(
            f"{name}: scalar {numbers['scalar_qps']:,.0f} q/s, "
            f"columnar {numbers['columnar_qps']:,.0f} q/s → {numbers['speedup']:.2f}x"
        )

    append_trajectory(
        args.out,
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "smoke": args.smoke,
            "config": {
                "sets": num_sets,
                "groups": engine.num_groups,
                "queries": num_queries,
                "threshold": args.threshold,
                "k": args.k,
                "repeats": repeats,
                "seed": args.seed,
            },
            "kernel": kernel,
            "end_to_end": end_to_end,
        },
    )
    print(f"# appended to {args.out}")
    if not args.smoke and kernel["speedup"] < 3.0:
        print("FAIL: kernel speedup below the 3x acceptance bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
