"""Shared fixtures and reporting helpers for the benchmark suite.

Every ``bench_fig*.py`` module regenerates one table or figure of the
paper's Section 7.  Besides the pytest-benchmark timings, each module
prints a paper-style table (visible with ``-s``) and writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite concrete
numbers from the last run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import format_table
from repro.datasets import make_dataset, powerlaw_similarity_dataset

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Writer: report(name, title, headers, rows) → prints + persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, title: str, headers, rows) -> None:
        table = format_table(headers, rows)
        text = f"== {title} ==\n{table}\n"
        print("\n" + text)
        path = RESULTS_DIR / f"{name}.txt"
        existing = path.read_text() if path.exists() else ""
        if f"== {title} ==" not in existing:
            path.write_text(existing + text + "\n")

    # Start each session with fresh files for the modules that run.
    return write


@pytest.fixture(scope="session")
def kosarak_like():
    """The KOSARAK stand-in at benchmark scale (~2 000 sets)."""
    return make_dataset("KOSARAK", scale=0.002, seed=0)


@pytest.fixture(scope="session")
def clustered_bench_dataset():
    """A clustered database where kNN pruning is meaningful (Figure 10/12/13)."""
    return powerlaw_similarity_dataset(
        num_sets=3_000, num_tokens=4_000, set_size=10, alpha=1.5, num_templates=60, seed=1
    )
