"""Data cleaning: near-duplicate detection via tokenised string matching.

The paper's opening motivation (Section 1): approximate string matching for
data cleaning becomes set similarity search once strings are tokenised.
This example deduplicates a noisy product catalogue — misspellings, word
reorderings, and extra words — by tokenising names into word 3-grams and
querying each record against the catalogue.

Run with::

    python examples/data_cleaning.py
"""

import random

from repro import Dataset, LES3
from repro.partitioning import MinTokenPartitioner

CLEAN_PRODUCTS = [
    "apple iphone 15 pro max 256gb black",
    "samsung galaxy s24 ultra 512gb titanium",
    "google pixel 9 pro 128gb obsidian",
    "sony wh-1000xm5 wireless noise cancelling headphones",
    "bose quietcomfort ultra wireless earbuds",
    "dell xps 13 laptop 16gb ram 512gb ssd",
    "lenovo thinkpad x1 carbon gen 12 laptop",
    "logitech mx master 3s wireless mouse",
    "anker 737 power bank 24000mah usb-c",
    "kindle paperwhite 16gb e-reader",
]


def tokenize(name: str) -> list[str]:
    """Word tokens plus character 3-grams for typo robustness."""
    words = name.lower().split()
    grams = []
    squashed = "".join(words)
    grams.extend(squashed[i : i + 3] for i in range(len(squashed) - 2))
    return words + grams


def make_noisy_variants(name: str, rng: random.Random, count: int) -> list[str]:
    """Simulated entry errors: dropped words, swapped words, typos."""
    variants = []
    for _ in range(count):
        words = name.split()
        action = rng.choice(["drop", "swap", "typo", "extra"])
        if action == "drop" and len(words) > 2:
            words.pop(rng.randrange(len(words)))
        elif action == "swap" and len(words) > 2:
            i = rng.randrange(len(words) - 1)
            words[i], words[i + 1] = words[i + 1], words[i]
        elif action == "typo":
            target = rng.randrange(len(words))
            word = words[target]
            if len(word) > 2:
                pos = rng.randrange(len(word) - 1)
                words[target] = word[:pos] + word[pos + 1] + word[pos] + word[pos + 2 :]
        else:
            words.insert(rng.randrange(len(words)), rng.choice(["new", "oem", "sale"]))
        variants.append(" ".join(words))
    return variants


def main() -> None:
    rng = random.Random(0)
    catalogue: list[str] = []
    truth: list[int] = []  # index of the clean product each entry derives from
    for product_id, product in enumerate(CLEAN_PRODUCTS):
        catalogue.append(product)
        truth.append(product_id)
        for variant in make_noisy_variants(product, rng, count=6):
            catalogue.append(variant)
            truth.append(product_id)

    dataset = Dataset.from_token_lists([tokenize(name) for name in catalogue])
    engine = LES3.build(dataset, num_groups=8, partitioner=MinTokenPartitioner())
    print(f"catalogue: {len(catalogue)} entries, {len(dataset.universe)} distinct tokens")

    # Deduplicate: for each entry, find near-duplicates above δ = 0.5.
    clusters: dict[int, list[int]] = {}
    assigned: set[int] = set()
    for entry_index in range(len(catalogue)):
        if entry_index in assigned:
            continue
        result = engine.range_record(dataset.records[entry_index], threshold=0.5)
        members = [i for i in result.indices() if i not in assigned]
        for member in members:
            assigned.add(member)
        clusters[entry_index] = members

    correct = 0
    total = 0
    for representative, members in clusters.items():
        for member in members:
            total += 1
            if truth[member] == truth[representative]:
                correct += 1
    print(f"found {len(clusters)} duplicate clusters (true products: {len(CLEAN_PRODUCTS)})")
    print(f"cluster purity: {correct / total:.2%}")

    representative, members = next(iter(clusters.items()))
    print(f"\nexample cluster (representative: {catalogue[representative]!r}):")
    for member in members[:5]:
        print(f"  {catalogue[member]!r}")


if __name__ == "__main__":
    main()
