"""Query refinement: suggest related search queries from a query log.

Models the paper's AOL workload: each logged web query is a small token set
(its words).  Given a user's query, set similarity search over the log
surfaces reformulations — the "related searches" feature (Section 1 cites
query refinement [57] as a motivating application).

Run with::

    python examples/query_refinement.py
"""

import random

from repro import Dataset, LES3
from repro.learn import L2PPartitioner

TOPICS = {
    "weather": ["weather", "forecast", "rain", "temperature", "today", "week", "radar"],
    "recipes": ["recipe", "chicken", "pasta", "easy", "dinner", "quick", "healthy"],
    "travel": ["flights", "cheap", "hotel", "paris", "tokyo", "deals", "booking"],
    "sports": ["score", "game", "nba", "league", "playoffs", "schedule", "tonight"],
    "tech": ["python", "error", "install", "windows", "fix", "update", "driver"],
}


def synthesize_log(num_queries: int, seed: int) -> list[list[str]]:
    """Short keyword queries drawn from topic vocabularies (AOL-shaped)."""
    rng = random.Random(seed)
    topics = list(TOPICS.values())
    log = []
    for _ in range(num_queries):
        vocabulary = rng.choice(topics)
        length = rng.randint(2, 4)
        log.append(rng.sample(vocabulary, length))
    return log


def main() -> None:
    log = synthesize_log(num_queries=5_000, seed=3)
    dataset = Dataset.from_token_lists(log)
    print(f"query log: {dataset.stats()}")

    engine = LES3.build(
        dataset,
        num_groups=32,
        partitioner=L2PPartitioner(
            pairs_per_model=1_500, epochs=3, initial_groups=8, min_group_size=20, seed=0
        ),
    )

    for user_query in (["chicken", "recipe"], ["cheap", "flights", "paris"], ["nba", "score"]):
        # Over-fetch (k=40), then keep the 5 best *distinct* reformulations —
        # a query log contains each popular query many times.
        result = engine.knn(user_query, k=40)
        print(f"\nrelated searches for {' '.join(user_query)!r}:")
        seen: set[tuple[str, ...]] = set()
        for record_index, similarity in result.matches:
            suggestion = tuple(sorted(engine.tokens_of(record_index)))
            if suggestion in seen or similarity == 1.0:
                continue
            seen.add(suggestion)
            print(f"  {' '.join(suggestion):40s} (similarity {similarity:.2f})")
            if len(seen) >= 5:
                break


if __name__ == "__main__":
    main()
