"""Quickstart: build a LES3 index, search it, update it.

Run with::

    python examples/quickstart.py

Covers the whole public API surface in under a minute: dataset
construction, L2P-partitioned index build, kNN and range queries, pruning
statistics, and open-universe insertion.
"""

from repro import Dataset, LES3
from repro.core.metrics import knn_pruning_efficiency
from repro.datasets import zipf_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries


def make_database() -> Dataset:
    """2 000 Zipfian sets plus planted near-duplicates.

    Real corpora contain clusters of near-identical records (the reason
    similarity search is useful); planting variants of a third of the sets
    recreates that structure.
    """
    import random

    base = zipf_dataset(num_sets=1_500, num_tokens=3_000, set_size=(3, 12), seed=0)
    rng = random.Random(1)
    token_lists = [[str(t) for t in record.distinct] for record in base.records]
    for i in range(500):
        original = list(base.records[i].distinct)
        variant = [str(t) for t in original]
        if len(variant) > 2:
            variant[rng.randrange(len(variant))] = str(rng.randrange(3_000))
        token_lists.append(variant)
    return Dataset.from_token_lists(token_lists)


def main() -> None:
    # 1. A synthetic database of 2 000 token sets (Zipfian token frequencies
    #    with planted near-duplicate clusters).
    dataset = make_database()
    print(f"database: {dataset.stats()}")

    # 2. Build the index.  The paper's rule of thumb is n ≈ 0.5% · |D| groups,
    #    but anything in the tens works at this scale.
    partitioner = L2PPartitioner(
        pairs_per_model=2_000, epochs=3, initial_groups=16, min_group_size=10, seed=0
    )
    engine = LES3.build(dataset, num_groups=64, partitioner=partitioner)
    print(f"engine: {engine}")
    print(f"index size: {engine.index_bytes()} bytes")

    # 3. kNN search: the 5 most similar sets to a query drawn from the data.
    query = sample_queries(dataset, 1, seed=7)[0]
    result = engine.knn_record(query, k=5)
    print("\ntop-5 neighbours:")
    for record_index, similarity in result.matches:
        print(f"  set #{record_index}: Jaccard = {similarity:.3f}")
    pe = knn_pruning_efficiency(len(dataset), result.stats.candidates_verified, 5)
    print(
        f"verified {result.stats.candidates_verified}/{len(dataset)} sets "
        f"(pruning efficiency {pe:.3f}); "
        f"pruned {result.stats.groups_pruned}/{engine.tgm.num_groups} groups"
    )

    # 4. Range search: everything with Jaccard >= 0.6.  Selective thresholds
    #    are where the TGM shines: most groups cannot reach the bound.
    result = engine.range_record(query, threshold=0.6)
    print(
        f"\nrange δ=0.6: {len(result)} matches, verified "
        f"{result.stats.candidates_verified}/{len(dataset)} sets, "
        f"pruned {result.stats.groups_pruned}/{engine.tgm.num_groups} groups"
    )

    # 5. Open-universe insertion: unseen tokens just work (Section 6).
    index, group = engine.insert(["entirely", "new", "tokens"])
    hit = engine.knn(["entirely", "new", "tokens"], k=1)
    print(f"\ninserted set #{index} into group {group}; self-query similarity: {hit.matches[0][1]}")


if __name__ == "__main__":
    main()
