"""Similarity self-join: find all near-duplicate pairs in one pass.

Set similarity *joins* dominate the related work the paper builds on
(Section 8); the TGM supports them directly via group-pair bounds.  This
example joins a corpus of tag sets against itself to surface all pairs
above a Jaccard threshold — the all-pairs flavour of the data-cleaning
workload — and compares against the quadratic scan.

Run with::

    python examples/similarity_join.py
"""

import random
import time

from repro import Dataset, TokenGroupMatrix
from repro.core import similarity_self_join
from repro.learn import L2PPartitioner


def tag_corpus(num_items: int, seed: int) -> list[list[str]]:
    """Items tagged from topic vocabularies, with planted near-duplicates."""
    rng = random.Random(seed)
    topics = [[f"t{topic}-{i}" for i in range(25)] for topic in range(12)]
    corpus = []
    for _ in range(num_items):
        vocabulary = rng.choice(topics)
        tags = rng.sample(vocabulary, rng.randint(4, 8))
        corpus.append(tags)
        if rng.random() < 0.25:  # planted near-duplicate
            variant = list(tags)
            variant[rng.randrange(len(variant))] = rng.choice(vocabulary)
            corpus.append(variant)
    return corpus


def main() -> None:
    corpus = tag_corpus(1_200, seed=7)
    dataset = Dataset.from_token_lists(corpus)
    print(f"corpus: {dataset.stats()}")

    l2p = L2PPartitioner(
        pairs_per_model=1_500, epochs=3, initial_groups=8, min_group_size=10, seed=0
    )
    tgm = TokenGroupMatrix(dataset, l2p.partition(dataset, 24).groups)

    threshold = 0.6
    start = time.perf_counter()
    result = similarity_self_join(dataset, tgm, threshold)
    join_seconds = time.perf_counter() - start

    total_pairs = len(dataset) * (len(dataset) - 1) // 2
    print(
        f"\njoin δ={threshold}: {len(result)} pairs in {join_seconds:.2f}s — verified "
        f"{result.stats.candidates_verified}/{total_pairs} pairs "
        f"({result.stats.groups_pruned} group pairs pruned wholesale)"
    )

    print("\nsample matched pairs:")
    for x, y, similarity in result.pairs[:5]:
        print(f"  #{x} ~ #{y}  (Jaccard {similarity:.2f})")
        print(f"     {sorted(corpus[x])}")
        print(f"     {sorted(corpus[y])}")


if __name__ == "__main__":
    main()
