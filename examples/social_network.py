"""Social-network similarity: find users with the most similar friend sets.

Models the paper's Friendster workload (Section 7.1): every user is a set
whose tokens are their friends' ids.  Friend-set similarity powers
friend-of-friend recommendation and community detection.  The example
builds a preferential-attachment friendship graph, indexes it with LES3,
and compares the index against a brute-force scan.

Run with::

    python examples/social_network.py
"""

import random
import time

from repro import Dataset, LES3
from repro.baselines import BruteForceSearch
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries


def friendship_lists(num_users: int, seed: int) -> list[list[str]]:
    """Community-structured friendships.

    Each user picks most friends from a small community pool, so users in
    the same community share many friends (Jaccard ~0.3) — the structure
    that makes friend-set similarity search meaningful (and prunable).
    """
    rng = random.Random(seed)
    community_size = 60
    friends: list[set[int]] = [set() for _ in range(num_users)]
    for user in range(num_users):
        community = user // community_size
        pool_start = community * community_size
        pool = range(pool_start, min(pool_start + community_size, num_users))
        degree = rng.randint(15, 25)
        while len(friends[user]) < degree:
            if rng.random() < 0.9:  # mostly intra-community
                candidate = rng.choice(list(pool))
            else:
                candidate = rng.randrange(num_users)
            if candidate != user:
                friends[user].add(candidate)
    return [[f"u{f}" for f in sorted(fs)] for fs in friends if fs]


def main() -> None:
    users = friendship_lists(num_users=3_000, seed=1)
    dataset = Dataset.from_token_lists(users)
    print(f"network: {dataset.stats()}")

    partitioner = L2PPartitioner(
        pairs_per_model=2_000, epochs=3, initial_groups=16, min_group_size=20, seed=0
    )
    build_start = time.perf_counter()
    engine = LES3.build(dataset, num_groups=48, partitioner=partitioner)
    print(f"index built in {time.perf_counter() - build_start:.2f}s")

    queries = sample_queries(dataset, 200, seed=2)
    brute = BruteForceSearch(dataset)

    start = time.perf_counter()
    les3_candidates = 0
    for query in queries:
        les3_candidates += engine.knn_record(query, 10).stats.candidates_verified
    les3_time = time.perf_counter() - start

    start = time.perf_counter()
    for query in queries:
        brute.knn_search(query, 10)
    brute_time = time.perf_counter() - start

    print(f"\n10-NN over {len(queries)} query users:")
    print(f"  LES3:        {les3_time:.2f}s  ({les3_candidates / len(queries):.0f} sets verified/query)")
    print(f"  brute force: {brute_time:.2f}s  ({len(dataset)} sets verified/query)")
    print(f"  speedup:     {brute_time / les3_time:.1f}x")

    # Show one recommendation list.
    query = queries[0]
    result = engine.knn_record(query, 5)
    print("\nmost similar users to the first query user:")
    for record_index, similarity in result.matches:
        shared = len(query.distinct & dataset.records[record_index].distinct)
        print(f"  user #{record_index}: Jaccard {similarity:.3f} ({shared} shared friends)")


if __name__ == "__main__":
    main()
