"""Streaming updates: an open-universe index under continuous insertion.

Section 6 of the paper: LES3 is the first exact set-similarity index that
handles *previously unseen tokens* without a rebuild.  This example streams
batches of new sets — variants of existing sets, half of them carrying new
tokens — and tracks how pruning efficiency degrades relative to a
from-scratch rebuild (the Figure 15 experiment, in miniature).

Run with::

    python examples/streaming_updates.py
"""

import random

from repro import LES3
from repro.core.metrics import knn_pruning_efficiency
from repro.datasets import powerlaw_similarity_dataset
from repro.learn import L2PPartitioner
from repro.workloads import sample_queries


def average_pe(engine: LES3, k: int = 10, num_queries: int = 100, seed: int = 5) -> float:
    queries = sample_queries(engine.dataset, num_queries, seed=seed)
    total = 0.0
    for query in queries:
        stats = engine.knn_record(query, k).stats
        total += knn_pruning_efficiency(len(engine.dataset), stats.candidates_verified, k)
    return total / len(queries)


def new_partitioner(seed: int = 0) -> L2PPartitioner:
    return L2PPartitioner(
        pairs_per_model=1_500, epochs=3, initial_groups=8, min_group_size=15, seed=seed
    )


def variant_of(engine: LES3, rng: random.Random, next_new_token: list[int]) -> list:
    """A new set: an existing set with one token replaced.

    Half the insertions swap in a brand-new token (open universe), half a
    known one (closed universe) — the Figure 15 split.
    """
    base = engine.dataset.records[rng.randrange(len(engine.dataset))]
    tokens = [engine.dataset.universe.token_of(t) for t in base.distinct]
    position = rng.randrange(len(tokens))
    if rng.random() < 0.5:
        tokens[position] = f"new-token-{next_new_token[0]}"
        next_new_token[0] += 1
    else:
        tokens[position] = engine.dataset.universe.token_of(
            rng.randrange(len(engine.dataset.universe))
        )
    return tokens


def main() -> None:
    rng = random.Random(4)
    base = powerlaw_similarity_dataset(
        num_sets=2_000, num_tokens=2_500, set_size=10, alpha=1.5, seed=4
    )
    engine = LES3.build(base, num_groups=32, partitioner=new_partitioner())
    print(f"initial: {engine}   PE = {average_pe(engine):.3f}")

    next_new_token = [0]
    for batch in range(1, 6):
        for _ in range(200):
            engine.insert(variant_of(engine, rng, next_new_token))

        inserted_pe = average_pe(engine)
        # A from-scratch rebuild on the grown database — the Figure 15 yardstick.
        rebuilt = LES3.build(engine.dataset, num_groups=32, partitioner=new_partitioner(batch))
        rebuild_pe = average_pe(rebuilt)
        drop = (rebuild_pe - inserted_pe) / rebuild_pe if rebuild_pe else 0.0
        print(
            f"after batch {batch} (|D|={len(engine.dataset)}, |T|={len(engine.dataset.universe)}): "
            f"insert-PE={inserted_pe:.3f}  rebuild-PE={rebuild_pe:.3f}  drop={drop:+.1%}"
        )

    print("\ninsertion PE tracks the rebuild PE closely — the Section 7.8 result.")


if __name__ == "__main__":
    main()
