"""LES3: Learning-based Exact Set Similarity Search — full reproduction.

Public API quickstart::

    from repro import Dataset, LES3

    dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    engine = LES3.build(dataset, num_groups=2)
    print(engine.knn(["a", "b"], k=1).matches)

Saved indexes (single-engine or sharded) come back through one call::

    engine = repro.load("my-index", mode="mmap")

and ship as a long-lived query service with ``repro serve`` (see
:mod:`repro.serve` and ``docs/serving.md``).

See README.md for the architecture overview and DESIGN.md for the paper
mapping.
"""

from repro.api import QueryRequest, QueryResult, execute, execute_batch, load
from repro.core import (
    LES3,
    Dataset,
    DatasetStats,
    HierarchicalTGM,
    JaccardSimilarity,
    PersistenceError,
    SearchResult,
    SetRecord,
    Similarity,
    TokenGroupMatrix,
    TokenUniverse,
    get_measure,
    knn_search,
    load_engine,
    range_search,
    save_engine,
)
from repro.distributed import ShardedLES3, load_sharded, save_sharded

__version__ = "1.4.0"

__all__ = [
    "load",
    "QueryRequest",
    "QueryResult",
    "execute",
    "execute_batch",
    "LES3",
    "Dataset",
    "DatasetStats",
    "HierarchicalTGM",
    "JaccardSimilarity",
    "PersistenceError",
    "SearchResult",
    "SetRecord",
    "ShardedLES3",
    "Similarity",
    "TokenGroupMatrix",
    "TokenUniverse",
    "get_measure",
    "knn_search",
    "range_search",
    "save_engine",
    "load_engine",
    "save_sharded",
    "load_sharded",
    "__version__",
]
