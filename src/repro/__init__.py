"""LES3: Learning-based Exact Set Similarity Search — full reproduction.

Public API quickstart::

    from repro import Dataset, LES3

    dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    engine = LES3.build(dataset, num_groups=2)
    print(engine.knn(["a", "b"], k=1).matches)

See README.md for the architecture overview and DESIGN.md for the paper
mapping.
"""

from repro.core import (
    LES3,
    Dataset,
    DatasetStats,
    HierarchicalTGM,
    JaccardSimilarity,
    PersistenceError,
    SearchResult,
    SetRecord,
    Similarity,
    TokenGroupMatrix,
    TokenUniverse,
    get_measure,
    knn_search,
    load_engine,
    range_search,
    save_engine,
)
from repro.distributed import ShardedLES3, load_sharded, save_sharded

__version__ = "1.3.0"

__all__ = [
    "LES3",
    "Dataset",
    "DatasetStats",
    "HierarchicalTGM",
    "JaccardSimilarity",
    "PersistenceError",
    "SearchResult",
    "SetRecord",
    "ShardedLES3",
    "Similarity",
    "TokenGroupMatrix",
    "TokenUniverse",
    "get_measure",
    "knn_search",
    "range_search",
    "save_engine",
    "load_engine",
    "save_sharded",
    "load_sharded",
    "__version__",
]
