"""``repro.analysis`` — the engine's own static-analysis toolchain.

An AST-based invariant checker (``repro lint``) purpose-built for this
codebase: every rule encodes a contract the sharded, persistent,
fault-tolerant query engine actually depends on — bit-identity across
execution modes, lock discipline, crash-safe saves, never-retried fatal
errors, owned file handles, and strict-module annotation coverage.

>>> from repro.analysis import analyze_source
>>> source = '''
... try:
...     risky()
... except:
...     pass
... '''
>>> [diagnostic.code for diagnostic in analyze_source(source)]
['RL303']

See ``docs/static-analysis.md`` for the full rule table, the
suppression syntax, and how to add a rule.
"""

from repro.analysis.diagnostics import Diagnostic, render_json, render_text
from repro.analysis.engine import (
    FileContext,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.registry import Rule, RuleError, all_rules, get_rule, resolve_codes

__all__ = [
    "Diagnostic",
    "FileContext",
    "Rule",
    "RuleError",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "get_rule",
    "iter_python_files",
    "render_json",
    "render_text",
    "resolve_codes",
]
