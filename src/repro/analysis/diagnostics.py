"""Diagnostics: what a lint rule reports and how it is rendered.

A :class:`Diagnostic` is one finding — file, position, rule code, and a
message describing the violated invariant.  Rendering is deliberately
minimal: the ``text`` form mirrors the classic ``path:line:col: CODE
message`` compiler format (clickable in editors and CI logs), and the
``json`` form is a stable machine interface for pre-commit hooks and CI
annotations (``repro lint --format json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Sequence

__all__ = ["Diagnostic", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Ordering is ``(path, line, col, code)`` so reports are stable across
    runs and machines regardless of rule execution order.

    >>> Diagnostic("src/x.py", 3, 0, "RL303", "bare 'except:' hides every failure").code
    'RL303'
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def render_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """The human report: one line per finding plus a summary line.

    >>> print(render_text([], files_checked=3))
    3 files checked, no diagnostics
    """
    lines = [diagnostic.format() for diagnostic in sorted(diagnostics)]
    if diagnostics:
        noun = "diagnostic" if len(diagnostics) == 1 else "diagnostics"
        lines.append(f"{files_checked} files checked, {len(diagnostics)} {noun}")
    else:
        lines.append(f"{files_checked} files checked, no diagnostics")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """The machine report: a JSON object with a stable schema.

    >>> import json
    >>> payload = json.loads(render_json([], files_checked=2))
    >>> payload["files_checked"], payload["diagnostics"]
    (2, [])
    """
    return json.dumps(
        {
            "files_checked": files_checked,
            "diagnostics": [asdict(diagnostic) for diagnostic in sorted(diagnostics)],
        },
        indent=2,
    )
