"""The analysis engine: parse once, run every applicable rule, report.

The unit of work is one Python source file.  :func:`analyze_source`
parses it, builds a :class:`FileContext` (AST, parent links, suppression
directives), runs every selected rule whose scope matches the file's
*module path*, and filters findings through the inline suppressions.
:func:`analyze_paths` is the CLI/CI entry point: it walks directories,
skips caches, and returns the sorted diagnostics plus the file count.

Module paths are matched in posix form, so rule scopes like
``repro/core/`` work no matter where the checkout lives or which
separator the OS uses.  Tests exercise rules against in-memory snippets
by passing a *virtual* ``module_path`` (e.g.
``src/repro/core/example.py``) without touching the filesystem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import Rule, iter_rules_for, known_codes, resolve_codes
from repro.analysis.suppressions import Suppression, parse_suppressions

__all__ = ["FileContext", "analyze_source", "analyze_file", "analyze_paths"]

#: Emitted when a file cannot be parsed at all (syntax error, bad
#: encoding) — every other rule needs an AST, so this is its own code.
UNPARSABLE = "RL003"

_SKIP_DIRECTORIES = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}


@dataclass
class FileContext:
    """Everything a rule may need about one parsed file."""

    path: str
    module_path: str
    source: str
    tree: ast.Module
    suppressions: list[Suppression]
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def segment(self, node: ast.AST) -> str:
        """The source text of ``node`` (empty when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


def _normalize(path: str | Path) -> str:
    return str(PurePosixPath(Path(path).as_posix()))


def _effective_codes(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> frozenset[str]:
    codes = resolve_codes(select) if select else known_codes()
    if ignore:
        codes -= resolve_codes(ignore)
    return codes


def analyze_source(
    source: str,
    path: str = "<string>",
    module_path: str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Analyze one source string; the core primitive everything wraps.

    >>> analyze_source("try:\\n    pass\\nexcept:\\n    pass\\n")[0].code
    'RL303'
    >>> analyze_source("try:\\n    pass\\nexcept ValueError:\\n    pass\\n")
    []
    """
    resolved_module = _normalize(module_path if module_path is not None else path)
    codes = _effective_codes(select, ignore)
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as error:
        if UNPARSABLE not in codes:
            return []
        line = getattr(error, "lineno", None) or 1
        return [
            Diagnostic(
                path=path,
                line=line,
                col=(getattr(error, "offset", None) or 1) - 1,
                code=UNPARSABLE,
                message=f"file cannot be parsed, so no invariant can be checked: {error}",
            )
        ]
    context = FileContext(
        path=path,
        module_path=resolved_module,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    diagnostics: list[Diagnostic] = []
    for registered in iter_rules_for(resolved_module, codes):
        diagnostics.extend(_run_rule(registered, context))
    return sorted(
        diagnostic
        for diagnostic in diagnostics
        if not _suppressed(diagnostic, context.suppressions)
    )


def _run_rule(registered: Rule, context: FileContext) -> Iterator[Diagnostic]:
    for line, col, message in registered.check(context):
        yield Diagnostic(
            path=context.path, line=line, col=col, code=registered.code, message=message
        )


def _suppressed(diagnostic: Diagnostic, suppressions: list[Suppression]) -> bool:
    return any(
        suppression.silences(diagnostic.code, diagnostic.line)
        for suppression in suppressions
    )


def analyze_file(
    path: str | Path,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Analyze one file on disk (:class:`OSError` propagates to the caller)."""
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    return analyze_source(text, path=str(path), select=select, ignore=ignore)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the sorted ``*.py`` files beneath them."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in sorted(entry.rglob("*.py")):
                if not _SKIP_DIRECTORIES.intersection(found.parts):
                    yield found
        else:
            yield entry


def analyze_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> tuple[list[Diagnostic], int]:
    """Analyze files and directories; returns ``(diagnostics, files_checked)``."""
    diagnostics: list[Diagnostic] = []
    files_checked = 0
    for found in iter_python_files(paths):
        files_checked += 1
        diagnostics.extend(analyze_file(found, select=select, ignore=ignore))
    return sorted(diagnostics), files_checked
