"""The rule registry: codes, scopes, and select/ignore resolution.

Every rule is a function registered under an ``RL###`` code with the
:func:`rule` decorator.  Registration carries the metadata the engine
and the docs need:

``scope``
    Module-path fragments the rule applies to (``None`` = every file).
    The engine matches fragments against the *posix form* of the file
    path, so ``"repro/core/"`` selects the core package wherever the
    repository checkout lives, and ``tests/`` files never match a
    ``src``-scoped rule.
``exempt``
    Fragments that opt specific modules back out — e.g. the atomic-swap
    implementation inside ``repro/core/persistence.py`` is exempt from
    the rename-bypass rule it exists to enforce on everyone else.

Codes group by family: ``RL0xx`` meta (suppression hygiene), ``RL1xx``
bit-identity, ``RL2xx`` concurrency, ``RL3xx`` resilience, ``RL4xx``
resource hygiene and typing discipline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import FileContext

__all__ = ["Rule", "rule", "all_rules", "get_rule", "resolve_codes", "RuleError"]

#: A rule yields ``(line, col, message)`` findings for one parsed file.
Finding = tuple[int, int, str]
CheckFunction = Callable[["FileContext"], Iterable[Finding]]

_CODE_PATTERN = re.compile(r"^RL\d{3}$")

_REGISTRY: dict[str, "Rule"] = {}


class RuleError(ValueError):
    """A rule code or selection expression is malformed or unknown."""


@dataclass(frozen=True)
class Rule:
    """One registered invariant check.

    ``summary`` is the one-line description shown by ``--list-rules``;
    ``invariant`` names the engine contract the rule protects (the docs
    table is generated from both).
    """

    code: str
    name: str
    summary: str
    invariant: str
    check: CheckFunction
    scope: tuple[str, ...] | None = None
    exempt: tuple[str, ...] = field(default_factory=tuple)

    def applies_to(self, module_path: str) -> bool:
        """Does this rule run over the file at ``module_path`` (posix form)?"""
        if any(fragment in module_path for fragment in self.exempt):
            return False
        if self.scope is None:
            return True
        return any(fragment in module_path for fragment in self.scope)


def rule(
    code: str,
    name: str,
    summary: str,
    invariant: str,
    scope: Sequence[str] | None = None,
    exempt: Sequence[str] = (),
) -> Callable[[CheckFunction], CheckFunction]:
    """Register ``check`` under ``code``; the function itself is returned."""

    def decorator(check: CheckFunction) -> CheckFunction:
        if not _CODE_PATTERN.match(code):
            raise RuleError(f"rule code {code!r} must match RL###")
        if code in _REGISTRY:
            raise RuleError(f"rule code {code} registered twice")
        _REGISTRY[code] = Rule(
            code=code,
            name=name,
            summary=summary,
            invariant=invariant,
            check=check,
            scope=tuple(scope) if scope is not None else None,
            exempt=tuple(exempt),
        )
        return check

    return decorator


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by code."""
    _load_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _load_builtin_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise RuleError(f"unknown rule code {code!r}") from None


def known_codes() -> frozenset[str]:
    _load_builtin_rules()
    return frozenset(_REGISTRY)


def resolve_codes(expressions: Iterable[str]) -> frozenset[str]:
    """Expand ``--select`` / ``--ignore`` expressions to concrete codes.

    Accepts exact codes (``RL303``) and prefixes (``RL3`` selects the
    whole resilience family, ``RL`` selects everything); unknown
    expressions raise :class:`RuleError` so typos fail loudly instead of
    silently checking nothing.
    """
    _load_builtin_rules()
    resolved: set[str] = set()
    for expression in expressions:
        matched = {code for code in _REGISTRY if code.startswith(expression)}
        if not matched:
            raise RuleError(
                f"{expression!r} matches no registered rule code "
                f"(known: {', '.join(sorted(_REGISTRY))})"
            )
        resolved |= matched
    return frozenset(resolved)


def iter_rules_for(module_path: str, codes: frozenset[str]) -> Iterator[Rule]:
    """The rules in ``codes`` that apply to ``module_path``."""
    for code in sorted(codes):
        registered = _REGISTRY[code]
        if registered.applies_to(module_path):
            yield registered


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (registration is import-time)."""
    import repro.analysis.rules  # noqa: F401  (import registers the rules)
