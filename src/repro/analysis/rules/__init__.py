"""Rule modules — importing this package registers every built-in rule.

Adding a rule is three steps (see ``docs/static-analysis.md``):

1. write a check function in the matching family module (or a new one)
   and decorate it with :func:`repro.analysis.registry.rule`;
2. import the module here so registration happens;
3. add the firing/near-miss fixture pair in ``tests/analysis/``.
"""

from repro.analysis.rules import (  # noqa: F401  (imports register the rules)
    bit_identity,
    concurrency,
    hygiene,
    meta,
    resilience,
)
