"""Bit-identity rules (RL1xx).

The engine's headline contract is that every execution mode — serial,
thread, process, mmap, lazy, batched, sharded — returns **bit-identical**
answers.  That only holds while query-path code never lets an
implementation-defined order or a narrowed float width leak into a
result.  These rules encode the three ways PRs 1–7 actually saw that
contract threatened:

``RL101``
    Iterating a ``set`` in a query-path module.  Set order depends on
    ``PYTHONHASHSEED`` for string tokens, so any result or stats field
    built from raw set iteration differs across processes.  Iterate
    ``sorted(...)`` instead.  (``dict`` iteration is insertion-ordered
    in CPython and is deliberately not flagged.)
``RL102``
    ``float32`` / ``float16`` dtypes in kernel code.  Verification is
    float64-exact; a narrowed intermediate silently changes similarity
    values and therefore tie-breaks.
``RL103``
    ``np.argsort`` / ``np.sort`` without ``kind="stable"`` in merge
    paths.  The default introsort reorders equal keys unpredictably,
    breaking the canonical ``(-similarity, index)`` tie-break.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.registry import Finding, rule
from repro.analysis.rules.common import (
    ORDER_PRESERVING_WRAPPERS,
    dotted_name,
    enclosing_function,
    keyword_value,
    location,
)

_QUERY_PATH = ("repro/core/", "repro/distributed/", "repro/serve/", "repro/api.py")
_KERNEL_PATH = ("repro/core/", "repro/storage/")
_MERGE_PATH = (
    "repro/core/search.py",
    "repro/core/batch.py",
    "repro/core/join.py",
    "repro/distributed/",
    "repro/serve/",
)

_SET_CALLS = frozenset({"set", "frozenset"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Consumers whose result does not depend on iteration order, so feeding
#: them a set directly is safe: ``sum(x for x in some_set)`` is exact.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "set", "frozenset", "min", "max", "any", "all", "len"}
)


def _unwrap(node: ast.expr) -> ast.expr:
    """Look through ``list(...)`` / ``tuple(...)`` / ``enumerate(...)``."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ORDER_PRESERVING_WRAPPERS
        and node.args
    ):
        node = node.args[0]
    return node


def _local_set_bindings(context: FileContext, node: ast.AST) -> frozenset[str]:
    """Names bound (only) to set-valued expressions in the enclosing scope."""
    scope: ast.AST | None = enclosing_function(context, node)
    if scope is None:
        scope = context.tree
    set_bound: set[str] = set()
    otherwise_bound: set[str] = set()
    for child in ast.walk(scope):
        if isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
            if isinstance(target, ast.Name):
                if _is_set_expr(child.value, frozenset()):
                    set_bound.add(target.id)
                else:
                    otherwise_bound.add(target.id)
                continue
        # Any other binding construct makes the name's type unknown.
        for target_node in _binding_targets(child):
            otherwise_bound.add(target_node)
    return frozenset(set_bound - otherwise_bound)


def _binding_targets(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        # Reaching here means the single-Name form was already handled:
        # whatever a tuple-unpack or attribute/subscript store binds is
        # of unknown type.
        for target in node.targets:
            yield from _names_in(target)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        yield from _names_in(node.target)
    elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
        yield node.target.id
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        yield node.target.id
    elif isinstance(node, ast.comprehension):
        yield from _names_in(node.target)
    elif isinstance(node, ast.withitem) and node.optional_vars is not None:
        yield from _names_in(node.optional_vars)


def _names_in(target: ast.expr) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _is_set_expr(node: ast.expr, set_names: frozenset[str]) -> bool:
    node = _unwrap(node)
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_CALLS
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


def _iteration_sites(tree: ast.Module) -> Iterator[tuple[ast.expr, ast.AST]]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # SetComp results are unordered anyway, so iterating a set
            # inside one cannot leak an order.
            for generator in node.generators:
                yield generator.iter, node


@rule(
    code="RL101",
    name="unsorted-set-iteration",
    summary="iteration over a set in a query-path module without sorted()",
    invariant="bit-identical answers across serial/thread/process/mmap/lazy modes",
    scope=_QUERY_PATH,
)
def check_unsorted_set_iteration(context: FileContext) -> Iterator[Finding]:
    for iter_expr, site in _iteration_sites(context.tree):
        if isinstance(site, ast.GeneratorExp):
            parent = context.parent(site)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE_CONSUMERS
            ):
                continue
        set_names = _local_set_bindings(context, site)
        if _is_set_expr(iter_expr, set_names):
            line, col = location(iter_expr)
            yield (
                line,
                col,
                "iteration over a set leaks hash order into a query path — "
                "wrap the iterable in sorted(...) to keep answers "
                "bit-identical across processes",
            )


@rule(
    code="RL102",
    name="narrow-float-dtype",
    summary="float32/float16 dtype in kernel code (kernels are float64-exact)",
    invariant="float64-exact similarity kernels (verify='columnar' == 'scalar')",
    scope=_KERNEL_PATH,
)
def check_narrow_float_dtype(context: FileContext) -> Iterator[Finding]:
    narrow = {"float32", "float16"}
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Attribute) and node.attr in narrow:
            line, col = location(node)
            yield (
                line,
                col,
                f"{node.attr} in kernel code: similarity kernels are "
                "float64-exact, and a narrowed dtype changes scores and "
                "tie-breaks",
            )
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            suspects: list[ast.expr] = []
            if name.endswith(".astype") or name in {"np.dtype", "numpy.dtype"}:
                suspects.extend(node.args[:1])
            dtype_kw = keyword_value(node, "dtype")
            if dtype_kw is not None:
                suspects.append(dtype_kw)
            for suspect in suspects:
                if isinstance(suspect, ast.Constant) and suspect.value in narrow:
                    line, col = location(suspect)
                    yield (
                        line,
                        col,
                        f"dtype {suspect.value!r} in kernel code: similarity "
                        "kernels are float64-exact, and a narrowed dtype "
                        "changes scores and tie-breaks",
                    )


@rule(
    code="RL103",
    name="unstable-merge-sort",
    summary="np.argsort/np.sort without kind='stable' in a merge path",
    invariant="canonical (-similarity, index) tie-break in every merge",
    scope=_MERGE_PATH,
)
def check_unstable_merge_sort(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name not in {"np.argsort", "numpy.argsort", "np.sort", "numpy.sort"}:
            continue
        kind = keyword_value(node, "kind")
        if isinstance(kind, ast.Constant) and kind.value == "stable":
            continue
        line, col = location(node)
        yield (
            line,
            col,
            f"{name} without kind='stable' in a merge path: the default "
            "sort reorders equal similarities, breaking the canonical "
            "(-similarity, index) tie-break",
        )
