"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext

__all__ = [
    "dotted_name",
    "keyword_value",
    "location",
    "function_defs",
    "enclosing_function",
    "is_with_context_expr",
    "ORDER_PRESERVING_WRAPPERS",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Builtins that re-wrap an iterable without imposing an order — looking
#: through them keeps ``list(some_set)`` as suspicious as ``some_set``.
ORDER_PRESERVING_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains; empty string otherwise.

    Calls and subscripts inside the chain dissolve to their base, so
    ``self._processes().submit`` yields ``submit`` only via its final
    attribute — callers match on suffixes when that is what they mean.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif parts:
        # Chain rooted in a call/subscript/constant: keep the attributes only.
        pass
    else:
        return ""
    return ".".join(reversed(parts))


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def location(node: ast.AST) -> tuple[int, int]:
    return node.lineno, node.col_offset


def function_defs(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function/method definition, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def enclosing_function(context: FileContext, node: ast.AST) -> FunctionNode | None:
    """The nearest function definition ``node`` sits inside, if any."""
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(context: FileContext, node: ast.AST) -> ast.ClassDef | None:
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def is_with_context_expr(context: FileContext, node: ast.AST) -> bool:
    """Is ``node`` (part of) the context expression of a ``with`` item?

    Accepts both the direct form (``with open(p) as f``) and wrapped
    forms (``with closing(connect(p)) as c``): any ancestor chain that
    reaches a ``withitem`` without first crossing the with *body* counts.
    """
    current: ast.AST | None = node
    while current is not None:
        parent = context.parent(current)
        if isinstance(parent, ast.withitem) and parent.context_expr is current:
            return True
        if isinstance(parent, (ast.stmt, ast.Module)) and not isinstance(
            parent, (ast.With, ast.AsyncWith)
        ):
            # Crossed a statement boundary without hitting a withitem.
            return False
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            # Reached the with statement not through one of its items:
            # we were in the body, not the header.
            return False
        current = parent
    return False
