"""Concurrency rules (RL2xx).

The sharded engine and the serving layer own real threads, process
pools, and shared mutable state.  PRs 4–7 fixed (and re-fixed) the same
three mistakes; these rules keep them fixed:

``RL201``
    A ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` created without a
    guaranteed shutdown: not a ``with`` block, not a ``finally`` that
    shuts it down, and not handed to an object whose class exposes a
    shutdown path.  Leaked pools strand worker processes and hang
    interpreter exit.
``RL202``
    Mutating shared state of a lock-guarded class outside its lock.  A
    class that creates ``self._lock`` has declared its state shared;
    counters, caches, and containers touched off-lock are data races.
``RL203``
    Dispatching per-shard work to an executor without a
    :func:`repro.testing.faults.fault_point` in the function.  Every
    shard fan-out must be chaos-testable, or the supervision machinery
    (retry, breaker, degraded mode) silently loses coverage as code
    evolves.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.registry import Finding, rule
from repro.analysis.rules.common import (
    dotted_name,
    enclosing_class,
    enclosing_function,
    is_with_context_expr,
    location,
)

_EXECUTOR_SUFFIXES = ("ThreadPoolExecutor", "ProcessPoolExecutor")

#: Method names that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)


def _is_executor_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name.endswith(_EXECUTOR_SUFFIXES) if name else False


def _finally_shuts_down(function: ast.AST, target: str) -> bool:
    """Does any ``finally`` in ``function`` call ``<target>.shutdown``?"""
    for node in ast.walk(function):
        if not isinstance(node, ast.Try):
            continue
        for final_stmt in node.finalbody:
            for child in ast.walk(final_stmt):
                if (
                    isinstance(child, ast.Call)
                    and dotted_name(child.func) == f"{target}.shutdown"
                ):
                    return True
    return False


def _class_has_shutdown_path(class_def: ast.ClassDef) -> bool:
    """Does the class reference ``.shutdown`` anywhere (close/__exit__/...)?"""
    return any(
        isinstance(node, ast.Attribute) and node.attr == "shutdown"
        for node in ast.walk(class_def)
    )


@rule(
    code="RL201",
    name="unguarded-executor",
    summary="executor without with-block, finally-shutdown, or owning class",
    invariant="pool shutdown is guaranteed on every exit path",
)
def check_unguarded_executor(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not (isinstance(node, ast.Call) and _is_executor_call(node)):
            continue
        if is_with_context_expr(context, node):
            continue
        parent = context.parent(node)
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Attribute):
                # Handed to an object: its class must expose a shutdown
                # path (a close()/__exit__ calling .shutdown).
                owner = enclosing_class(context, node)
                if owner is not None and _class_has_shutdown_path(owner):
                    continue
            elif isinstance(target, ast.Name):
                function = enclosing_function(context, node)
                if function is not None and _finally_shuts_down(function, target.id):
                    continue
                if function is not None and _is_returned(function, target.id):
                    continue
        if isinstance(parent, ast.Return):
            continue  # ownership moves to the caller
        line, col = location(node)
        yield (
            line,
            col,
            "executor has no guaranteed shutdown: use `with`, shut it "
            "down in a `finally`, or store it on a class that closes it",
        )


def _is_returned(function: ast.AST, name: str) -> bool:
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            return True
    return False


def _is_lock_name(name: str) -> bool:
    """``_lock`` / ``cache_lock`` / ``_cond`` — but not ``_breaker_clock``."""
    parts = name.lower().strip("_").split("_")
    return any(part in {"lock", "mutex", "cond", "condition"} for part in parts)


def _locked_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes that create a ``self.*lock*`` attribute anywhere."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Assign)
                and any(
                    isinstance(target, ast.Attribute)
                    and _is_lock_name(target.attr)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    for target in child.targets
                )
            ):
                yield node
                break


def _under_lock(context: FileContext, node: ast.AST) -> bool:
    """Is ``node`` inside a ``with self._lock:``-style block?"""
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                name = dotted_name(item.context_expr)
                if name and _is_lock_name(name.rsplit(".", 1)[-1]):
                    return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


def _self_attribute(node: ast.expr) -> str | None:
    """``x`` for ``self.x`` / ``self.x[...]``; None otherwise."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@rule(
    code="RL202",
    name="unlocked-shared-mutation",
    summary="mutating a lock-guarded class's state outside its lock",
    invariant="shared engine/cache/stats state changes only under the lock",
    scope=("repro/",),
)
def check_unlocked_shared_mutation(context: FileContext) -> Iterator[Finding]:
    for class_def in _locked_classes(context.tree):
        for method in class_def.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens-before sharing
            for node in ast.walk(method):
                finding = _mutation_of_self(node)
                if finding is None:
                    continue
                if _under_lock(context, node):
                    continue
                attribute, verb = finding
                line, col = location(node)
                yield (
                    line,
                    col,
                    f"{verb} of self.{attribute} outside the lock in a "
                    f"lock-guarded class ({class_def.name}): wrap it in "
                    "`with self._lock:` or document why it is safe",
                )


def _mutation_of_self(node: ast.AST) -> tuple[str, str] | None:
    if isinstance(node, ast.AugAssign):
        attribute = _self_attribute(node.target)
        if attribute is not None:
            return attribute, "augmented assignment"
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            attribute = _self_attribute(target)
            if attribute is not None and not attribute.startswith("__"):
                verb = (
                    "item assignment"
                    if isinstance(target, ast.Subscript)
                    else "assignment"
                )
                return attribute, verb
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATING_METHODS:
            attribute = _self_attribute(node.func.value)
            if attribute is not None:
                return attribute, f"in-place .{node.func.attr}()"
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attribute = _self_attribute(target)
            if attribute is not None:
                return attribute, "deletion"
    return None


def _mentions_shard(text: str) -> bool:
    return "shard" in text.lower()


@rule(
    code="RL203",
    name="shard-fanout-without-fault-point",
    summary="shard work submitted to an executor with no fault_point in reach",
    invariant="every shard fan-out path is chaos-testable",
    scope=("repro/distributed/",),
)
def check_shard_fanout_without_fault_point(context: FileContext) -> Iterator[Finding]:
    # The unit is the *outermost* function: closures share their parent's
    # chaos coverage (a fault_point in either is reachable by the plan).
    for node in context.tree.body:
        functions: list[ast.AST] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(node)
        elif isinstance(node, ast.ClassDef):
            functions.extend(
                child
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
        for function in functions:
            submit_call = _shard_submit_site(context, function)
            if submit_call is None:
                continue
            if _calls_fault_point(function):
                continue
            line, col = location(submit_call)
            yield (
                line,
                col,
                f"{function.name} submits per-shard work to an executor but "
                "never calls fault_point(...): the chaos harness cannot "
                "inject failures here, so supervision goes untested",
            )


def _shard_submit_site(context: FileContext, function: ast.AST) -> ast.Call | None:
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name != "submit" and not name.endswith(".submit"):
            continue
        if _mentions_shard(context.segment(node)) or _in_shard_loop(context, node):
            return node
    return None


def _in_shard_loop(context: FileContext, node: ast.AST) -> bool:
    for ancestor in context.ancestors(node):
        if isinstance(ancestor, (ast.For, ast.AsyncFor)):
            header = ast.unparse(ancestor.target) + " " + ast.unparse(ancestor.iter)
            if _mentions_shard(header):
                return True
        if isinstance(ancestor, ast.ClassDef):
            break
    return False


def _calls_fault_point(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and dotted_name(node.func).endswith(
            "fault_point"
        ):
            return True
    return False
