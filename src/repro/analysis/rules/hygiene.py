"""Resource-hygiene and typing-discipline rules (RL4xx).

``RL401``
    ``open()`` / ``os.open()`` / ``np.memmap()`` whose handle has no
    owner: not a ``with`` block, not closed in the function, not
    returned, and not stored on an object that manages its lifetime.
    The out-of-core engine maps files for the lifetime of a reader —
    that is ownership; a handle that merely leaks is not.
``RL402``
    A function without complete type annotations in a strict-typed
    module (``core/``, ``api.py``, ``storage/``, ``distributed/``,
    ``serve/``).  These are the modules ``mypy`` runs strict over in CI;
    this rule enforces the same annotation coverage locally, without
    needing mypy installed, so the hot-path contracts stay machine-read.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.registry import Finding, rule
from repro.analysis.rules.common import (
    dotted_name,
    enclosing_function,
    is_with_context_expr,
    location,
)

_RESOURCE_CALLS = frozenset({"open", "os.open", "np.memmap", "numpy.memmap"})

_STRICT_MODULES = (
    "repro/core/",
    "repro/api.py",
    "repro/storage/",
    "repro/distributed/",
    "repro/serve/",
)


def _assigned_name(context: FileContext, node: ast.Call) -> str | None:
    parent = context.parent(node)
    if (
        isinstance(parent, ast.Assign)
        and len(parent.targets) == 1
        and isinstance(parent.targets[0], ast.Name)
    ):
        return parent.targets[0].id
    return None


def _stored_on_object(context: FileContext, node: ast.Call) -> bool:
    """Directly assigned to ``self.x`` / ``obj.cache[key]`` — owned."""
    parent = context.parent(node)
    if isinstance(parent, ast.Assign):
        return any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in parent.targets
        )
    return False


def _name_is_owned(function: ast.AST, name: str) -> bool:
    """Is the handle bound to ``name`` closed, returned, yielded, or stored?"""
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            called = dotted_name(node.func)
            if called == f"{name}.close":
                return True
            if called in {"os.close", "contextlib.closing", "closing"} and any(
                isinstance(arg, ast.Name) and arg.id == name for arg in node.args
            ):
                return True
        if isinstance(node, (ast.Return, ast.Yield)) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == name:
                return True
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            if node.value.id == name and any(
                isinstance(target, (ast.Attribute, ast.Subscript))
                for target in node.targets
            ):
                return True
    return False


@rule(
    code="RL401",
    name="unowned-file-handle",
    summary="open()/os.open()/np.memmap() result has no owner",
    invariant="every handle/mapping has a context manager or a lifecycle owner",
    scope=("repro/",),
)
def check_unowned_file_handle(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name not in _RESOURCE_CALLS:
            continue
        if is_with_context_expr(context, node):
            continue
        parent = context.parent(node)
        if isinstance(parent, ast.Return):
            continue  # ownership moves to the caller
        if _stored_on_object(context, node):
            continue
        bound = _assigned_name(context, node)
        if bound is not None:
            function = enclosing_function(context, node) or context.tree
            if _name_is_owned(function, bound):
                continue
        line, col = location(node)
        yield (
            line,
            col,
            f"{name}(...) has no owner: use a `with` block, close it in "
            "this function, return it, or store it on the object that "
            "manages its lifetime",
        )


def _missing_annotations(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    missing: list[str] = []
    positional = function.args.posonlyargs + function.args.args
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in {"self", "cls"}:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in function.args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in (function.args.vararg, function.args.kwarg):
        if arg is not None and arg.annotation is None:
            missing.append(f"*{arg.arg}" if arg is function.args.vararg else f"**{arg.arg}")
    if function.returns is None:
        missing.append("return")
    return missing


@rule(
    code="RL402",
    name="untyped-def-in-strict-module",
    summary="function without complete annotations in a strict-typed module",
    invariant="hot-path modules pass mypy strict (annotation coverage)",
    scope=_STRICT_MODULES,
)
def check_untyped_def_in_strict_module(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = _missing_annotations(node)
        if not missing:
            continue
        line, col = location(node)
        yield (
            line,
            col,
            f"def {node.name} is missing annotations ({', '.join(missing)}) "
            "in a strict-typed module — mypy strict runs over core/, "
            "api.py, storage/, distributed/ and serve/ in CI",
        )
