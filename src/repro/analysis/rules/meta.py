"""Meta rules (RL0xx): the linter keeping its own suppressions honest.

``RL001``
    A ``# repro-lint: disable=...`` without a ``-- reason`` trailer.
    Suppressions are reviewed exceptions; the review lives in the
    reason, so an unexplained one fails the build.
``RL002``
    A suppression naming a code that does not exist — almost always a
    typo that would otherwise silently suppress nothing.
``RL003``
    The file could not be parsed (reported by the engine itself: no
    AST, no invariants checked).  Registered here so it shows up in
    ``--list-rules`` and participates in ``--select`` / ``--ignore``.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.registry import Finding, rule


@rule(
    code="RL001",
    name="unexplained-suppression",
    summary="suppression without a `-- reason` trailer",
    invariant="zero unexplained suppressions in the repository",
)
def check_unexplained_suppression(context: FileContext) -> Iterator[Finding]:
    for suppression in context.suppressions:
        if suppression.reason is None:
            yield (
                suppression.line,
                suppression.col,
                "suppression has no reason: write "
                "`# repro-lint: disable=CODE -- why this is safe`",
            )


@rule(
    code="RL002",
    name="unknown-suppressed-code",
    summary="suppression names a rule code that does not exist",
    invariant="suppressions silence real rules, not typos",
)
def check_unknown_suppressed_code(context: FileContext) -> Iterator[Finding]:
    from repro.analysis.registry import known_codes

    registered = known_codes()
    for suppression in context.suppressions:
        for code in sorted(suppression.codes - registered):
            yield (
                suppression.line,
                suppression.col,
                f"suppression names unknown rule code {code!r} "
                "(see `repro lint --list-rules`)",
            )


@rule(
    code="RL003",
    name="unparsable-file",
    summary="file cannot be parsed (engine-reported)",
    invariant="every checked file has an AST",
)
def check_unparsable_file(context: FileContext) -> Iterator[Finding]:
    # The engine emits RL003 before any rule runs; a parsed file is
    # never unparsable, so this check body is intentionally empty.
    return iter(())
