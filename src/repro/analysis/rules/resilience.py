"""Resilience rules (RL3xx).

PR 7's fault-tolerance machinery rests on two hard lines: saves go
through :func:`repro.core.persistence.atomic_directory` (so a crash can
never leave a half-written generation), and supervision never retries
:class:`PersistenceError` or :class:`DeadlineExceeded` (an integrity
refusal or an expired budget is not a shard fault).  These rules keep
both lines, plus the classic bare-``except`` failure sink:

``RL301``
    ``os.rename`` / ``os.replace`` / ``shutil.move`` / ``shutil.copytree``
    in engine code outside ``repro/core/persistence.py``.  Directory
    swaps belong inside ``atomic_directory``; ad-hoc renames reintroduce
    torn saves.
``RL302``
    Catching ``PersistenceError`` / ``DeadlineExceeded`` inside a loop
    without re-raising (or leaving the loop) — i.e. retrying a fatal
    error.  These exceptions mean *stop*, not *try again*.
``RL303``
    Bare ``except:`` — swallows ``KeyboardInterrupt`` and ``SystemExit``
    and hides every programming error behind it.
``RL304``
    Writing ``dataset.bin`` (constructing ``ColumnarFileWriter``, or
    opening/overwriting a path that names the binary dataset) outside
    the save/compaction path.  A saved generation is immutable: the
    write path appends to ``delta.log``, and only a save or
    ``repro compact`` may produce a new ``dataset.bin`` — an ad-hoc
    rewrite desynchronizes the file from its manifest digest and from
    every epoch-keyed cache.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.registry import Finding, rule
from repro.analysis.rules.common import dotted_name, enclosing_function, location

_RENAME_CALLS = frozenset(
    {"os.rename", "os.replace", "os.renames", "shutil.move", "shutil.copytree"}
)

#: Exception names whose capture-and-continue is forbidden; the alias
#: ``_FATAL_ERRORS`` is the repo's canonical tuple of exactly these.
_FATAL_NAMES = frozenset({"PersistenceError", "DeadlineExceeded", "_FATAL_ERRORS"})


@rule(
    code="RL301",
    name="save-bypasses-atomic-directory",
    summary="directory rename/move outside atomic_directory",
    invariant="crash-safe saves: every generation swap is staged + fsynced",
    scope=("repro/",),
    exempt=("repro/core/persistence.py", "repro/testing/"),
)
def check_save_bypasses_atomic_directory(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name not in _RENAME_CALLS:
            continue
        line, col = location(node)
        yield (
            line,
            col,
            f"{name} bypasses atomic_directory: renames into a save "
            "directory must go through the staged fsync+swap in "
            "repro.core.persistence so a crash never leaves a torn save",
        )


def _fatal_exception_names(handler_type: ast.expr | None) -> list[str]:
    if handler_type is None:
        return []
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    caught: list[str] = []
    for node in nodes:
        name = dotted_name(node)
        tail = name.rsplit(".", 1)[-1]
        if tail in _FATAL_NAMES:
            caught.append(tail)
    return caught


def _leaves_the_loop(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise or exit the surrounding loop?"""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Break, ast.Return)):
                return True
    return False


def _inside_loop(context: FileContext, node: ast.AST) -> bool:
    function = enclosing_function(context, node)
    for ancestor in context.ancestors(node):
        if ancestor is function:
            break
        if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
            return True
    return False


@rule(
    code="RL302",
    name="retried-fatal-error",
    summary="PersistenceError/DeadlineExceeded caught in a loop without re-raise",
    invariant="fatal errors are never retried, degraded, or fallen back on",
    scope=("repro/",),
)
def check_retried_fatal_error(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _fatal_exception_names(node.type)
        if not caught:
            continue
        if not _inside_loop(context, node):
            continue  # translating at a boundary (e.g. HTTP 504) is fine
        if _leaves_the_loop(node):
            continue
        line, col = location(node)
        yield (
            line,
            col,
            f"catching {' / '.join(sorted(set(caught)))} inside a loop "
            "without re-raising retries a fatal error: an integrity "
            "refusal or expired deadline must stop the operation",
        )


_DATASET_BIN_WRITERS = frozenset({"write_bytes", "write_text", "open"})
# open() modes that can mutate an existing file
_WRITE_MODE_CHARS = frozenset("wax+")


def _mentions_dataset_bin(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and "dataset.bin" in sub.value
        ):
            return True
        if isinstance(sub, ast.Name) and sub.id == "DATASET_BIN":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "DATASET_BIN":
            return True
    return False


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode of an ``open``-style call, if statically known."""
    mode: ast.expr | None = None
    if isinstance(node.func, ast.Attribute):
        if node.args:
            mode = node.args[0]  # path.open("wb")
    elif len(node.args) >= 2:
        mode = node.args[1]  # open(path, "wb")
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"  # both built-in open and Path.open default to read
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: assume the worst


@rule(
    code="RL304",
    name="dataset-bin-mutated-outside-compaction",
    summary="dataset.bin written outside the save/compaction path",
    invariant="generations are immutable: mutations go to delta.log, "
    "new dataset.bin files come only from save/compact",
    scope=("repro/",),
    exempt=(
        "repro/core/persistence.py",
        "repro/storage/columnar_file.py",
        "repro/testing/",
    ),
)
def check_dataset_bin_mutated(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        tail = name.rsplit(".", 1)[-1]
        if tail == "ColumnarFileWriter":
            line, col = location(node)
            yield (
                line,
                col,
                "ColumnarFileWriter outside the save/compaction path "
                "rewrites a generation's binary dataset in place — "
                "mutations belong in delta.log; only save_engine/"
                "save_sharded/compact_index may emit a dataset.bin",
            )
            continue
        if tail not in _DATASET_BIN_WRITERS:
            continue
        if not _mentions_dataset_bin(node):
            continue
        if tail == "open":
            mode = _open_mode(node)
            if mode is not None and not (set(mode) & _WRITE_MODE_CHARS):
                continue  # read-only open: mmap loads and digest checks
        line, col = location(node)
        yield (
            line,
            col,
            "writing dataset.bin directly desynchronizes it from the "
            "manifest digest and every epoch-keyed cache — append to "
            "delta.log and let save/compact produce the next generation",
        )


@rule(
    code="RL303",
    name="bare-except",
    summary="bare `except:` clause",
    invariant="failures surface; nothing swallows KeyboardInterrupt/SystemExit",
)
def check_bare_except(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            line, col = location(node)
            yield (
                line,
                col,
                "bare 'except:' catches KeyboardInterrupt/SystemExit and "
                "hides every failure — name the exceptions (or use "
                "'except Exception' with a reviewed justification)",
            )
