"""Resilience rules (RL3xx).

PR 7's fault-tolerance machinery rests on two hard lines: saves go
through :func:`repro.core.persistence.atomic_directory` (so a crash can
never leave a half-written generation), and supervision never retries
:class:`PersistenceError` or :class:`DeadlineExceeded` (an integrity
refusal or an expired budget is not a shard fault).  These rules keep
both lines, plus the classic bare-``except`` failure sink:

``RL301``
    ``os.rename`` / ``os.replace`` / ``shutil.move`` / ``shutil.copytree``
    in engine code outside ``repro/core/persistence.py``.  Directory
    swaps belong inside ``atomic_directory``; ad-hoc renames reintroduce
    torn saves.
``RL302``
    Catching ``PersistenceError`` / ``DeadlineExceeded`` inside a loop
    without re-raising (or leaving the loop) — i.e. retrying a fatal
    error.  These exceptions mean *stop*, not *try again*.
``RL303``
    Bare ``except:`` — swallows ``KeyboardInterrupt`` and ``SystemExit``
    and hides every programming error behind it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.registry import Finding, rule
from repro.analysis.rules.common import dotted_name, enclosing_function, location

_RENAME_CALLS = frozenset(
    {"os.rename", "os.replace", "os.renames", "shutil.move", "shutil.copytree"}
)

#: Exception names whose capture-and-continue is forbidden; the alias
#: ``_FATAL_ERRORS`` is the repo's canonical tuple of exactly these.
_FATAL_NAMES = frozenset({"PersistenceError", "DeadlineExceeded", "_FATAL_ERRORS"})


@rule(
    code="RL301",
    name="save-bypasses-atomic-directory",
    summary="directory rename/move outside atomic_directory",
    invariant="crash-safe saves: every generation swap is staged + fsynced",
    scope=("repro/",),
    exempt=("repro/core/persistence.py", "repro/testing/"),
)
def check_save_bypasses_atomic_directory(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name not in _RENAME_CALLS:
            continue
        line, col = location(node)
        yield (
            line,
            col,
            f"{name} bypasses atomic_directory: renames into a save "
            "directory must go through the staged fsync+swap in "
            "repro.core.persistence so a crash never leaves a torn save",
        )


def _fatal_exception_names(handler_type: ast.expr | None) -> list[str]:
    if handler_type is None:
        return []
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    caught: list[str] = []
    for node in nodes:
        name = dotted_name(node)
        tail = name.rsplit(".", 1)[-1]
        if tail in _FATAL_NAMES:
            caught.append(tail)
    return caught


def _leaves_the_loop(handler: ast.ExceptHandler) -> bool:
    """Does the handler body re-raise or exit the surrounding loop?"""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Break, ast.Return)):
                return True
    return False


def _inside_loop(context: FileContext, node: ast.AST) -> bool:
    function = enclosing_function(context, node)
    for ancestor in context.ancestors(node):
        if ancestor is function:
            break
        if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
            return True
    return False


@rule(
    code="RL302",
    name="retried-fatal-error",
    summary="PersistenceError/DeadlineExceeded caught in a loop without re-raise",
    invariant="fatal errors are never retried, degraded, or fallen back on",
    scope=("repro/",),
)
def check_retried_fatal_error(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _fatal_exception_names(node.type)
        if not caught:
            continue
        if not _inside_loop(context, node):
            continue  # translating at a boundary (e.g. HTTP 504) is fine
        if _leaves_the_loop(node):
            continue
        line, col = location(node)
        yield (
            line,
            col,
            f"catching {' / '.join(sorted(set(caught)))} inside a loop "
            "without re-raising retries a fatal error: an integrity "
            "refusal or expired deadline must stop the operation",
        )


@rule(
    code="RL303",
    name="bare-except",
    summary="bare `except:` clause",
    invariant="failures surface; nothing swallows KeyboardInterrupt/SystemExit",
)
def check_bare_except(context: FileContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            line, col = location(node)
            yield (
                line,
                col,
                "bare 'except:' catches KeyboardInterrupt/SystemExit and "
                "hides every failure — name the exceptions (or use "
                "'except Exception' with a reviewed justification)",
            )
