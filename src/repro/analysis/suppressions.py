"""Inline suppressions: ``# repro-lint: disable=RL### -- reason``.

A suppression silences the named rule codes **on its own line only** —
place it on the line the diagnostic points at.  The ``-- reason`` trailer
is mandatory in spirit and enforced in practice: a suppression without
one is itself a diagnostic (``RL001``), and one naming a code that does
not exist is another (``RL002``).  That is what keeps the repository's
acceptance bar — *zero unexplained suppressions* — mechanical instead of
a matter of review vigilance.

Suppression comments are read with :mod:`tokenize`, not string search,
so a ``repro-lint:`` inside a string literal never arms anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Suppression", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed directive: which codes it silences, where, and why."""

    line: int
    col: int
    codes: frozenset[str]
    reason: str | None

    def silences(self, code: str, line: int) -> bool:
        return line == self.line and code in self.codes


def parse_suppressions(source: str) -> list[Suppression]:
    """Every ``repro-lint: disable=`` directive in ``source``.

    >>> [s.codes == frozenset({"RL303"}) for s in parse_suppressions(
    ...     "try:\\n    pass\\nexcept: pass  # repro-lint: disable=RL303 -- boot probe\\n")]
    [True]
    """
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        # The engine reports unparsable files separately; no directives here.
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        matched = _DIRECTIVE.search(token.string)
        if matched is None:
            continue
        codes = frozenset(
            code.strip() for code in matched.group("codes").split(",") if code.strip()
        )
        if not codes:
            continue
        suppressions.append(
            Suppression(
                line=token.start[0],
                col=token.start[1],
                codes=codes,
                reason=matched.group("reason"),
            )
        )
    return suppressions
