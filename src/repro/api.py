"""The one-call public query surface: load any index, describe any query.

PRs 1–5 grew two parallel entry points — ``load_engine`` for single-engine
saves, ``load_sharded`` for sharded ones — and every consumer (the CLI,
benchmarks, applications) had to sniff the directory kind itself before
picking the right loader and the right kwargs.  This module collapses that
into one surface the query service (:mod:`repro.serve`), the CLI, and
applications all share:

* :func:`load` — open *any* index directory; the save kind is
  auto-detected and the right engine comes back.
* :class:`QueryRequest` / :class:`QueryResult` — engine-independent
  descriptions of one query and its answer, with one canonical kwargs set
  (``verify=`` / ``parallel=``) across both engine classes.
* :func:`execute` / :func:`execute_batch` — run requests against either
  engine kind; the batch form coalesces compatible requests into the
  batched BLAS kernels (the micro-batching primitive ``repro serve``
  is built on).

The legacy loaders remain importable as documented thin wrappers that
emit :class:`DeprecationWarning` (see ``docs/persistence.md`` for the
migration note)::

    >>> import repro
    >>> from repro.datasets import zipf_dataset
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "index")
    >>> from repro import Dataset, LES3, save_engine
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> save_engine(LES3.build(dataset, num_groups=2), path)
    >>> engine = repro.load(path)          # auto-detects the save kind
    >>> engine.knn(["a", "b"], k=1).matches
    [(0, 1.0)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Sequence, Union

from repro.core.engine import DEGRADED_MODES, LES3, PARALLEL_MODES, as_query_record
from repro.core.metrics import QueryStats
from repro.core.resilience import Deadline
from repro.distributed.sharded import ShardedLES3

__all__ = [
    "load",
    "Engine",
    "QueryRequest",
    "QueryResult",
    "WriteRequest",
    "WriteResult",
    "execute",
    "execute_batch",
    "apply_write",
    "QUERY_KINDS",
    "WRITE_KINDS",
]

Engine = Union[LES3, ShardedLES3]

#: The query kinds a :class:`QueryRequest` can describe — exactly the
#: three exact query operations both engine classes implement.
QUERY_KINDS = ("knn", "range", "join")

#: The write kinds a :class:`WriteRequest` can describe — the two
#: mutations both engine classes implement (and their delta logs absorb).
WRITE_KINDS = ("insert", "remove")


def load(
    directory: str | Path,
    mode: str = "memory",
    parallel: str | None = None,
    verify: str | None = None,
    workers: int | None = None,
    max_resident_shards: int | None = None,
) -> Engine:
    """Load *any* saved index: the save kind is auto-detected.

    The one entry point over :func:`repro.core.persistence.load_engine`
    (single-engine saves, from ``repro build`` / ``save_engine``) and
    :func:`repro.distributed.persistence.load_sharded` (sharded saves,
    from ``repro save`` / ``save_sharded``): the directory's manifest
    decides which engine comes back, and every option below means the
    same thing for both kinds.

    Parameters
    ----------
    directory : str or Path
        An index directory written by ``save_engine`` or ``save_sharded``.
    mode : {"memory", "mmap", "lazy"}, default ``"memory"``
        Dataset load path: parse ``dataset.txt`` into RAM, map the binary
        ``dataset.bin``, or (sharded saves only) additionally build shard
        indexes on demand.  Results are identical in every mode.
    parallel : {"serial", "thread", "process"}, optional
        Default execution mode of the returned engine.  A single-node
        engine always executes serially; asking it for ``"thread"`` or
        ``"process"`` raises with guidance (shard the index first).
    verify : {"columnar", "scalar"}, optional
        Override the persisted default verification path.
    workers : int, optional
        Threads for the concurrent shard-TGM rebuilds (sharded saves,
        eager modes only).
    max_resident_shards : int, optional
        LRU capacity for ``mode="lazy"`` (sharded saves only).

    Returns
    -------
    LES3 or ShardedLES3
        A rebuilt engine answering queries bit-identically to the one
        that was saved.

    Raises
    ------
    PersistenceError
        On any integrity failure, or when an option only a sharded save
        supports (``mode="lazy"``) is asked of a single-engine save.
    FileNotFoundError
        If the directory (or its manifest) does not exist.

    Examples
    --------
    >>> import tempfile, os, repro
    >>> from repro import Dataset, ShardedLES3
    >>> from repro.distributed import save_sharded
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> path = os.path.join(tempfile.mkdtemp(), "sharded-index")
    >>> save_sharded(ShardedLES3.build(dataset, num_shards=2, num_groups=2), path)
    >>> engine = repro.load(path, mode="lazy")
    >>> type(engine).__name__, engine.knn(["a", "b"], k=1).matches
    ('ShardedLES3', [(0, 1.0)])
    """
    from repro.core.persistence import PersistenceError, _load_engine
    from repro.distributed.persistence import _load_sharded, is_sharded_index

    directory = Path(directory)
    if is_sharded_index(directory):
        engine: Engine = _load_sharded(
            directory,
            parallel=parallel,
            workers=workers,
            mode=mode,
            max_resident_shards=max_resident_shards,
        )
    else:
        if mode == "lazy":
            raise PersistenceError(
                f"{directory} holds a single-engine save, and mode='lazy' builds "
                "*shard* indexes on demand, which needs a sharded index directory; "
                "load with mode='mmap' here, or create a sharded save with "
                "ShardedLES3.from_engine + save_sharded (CLI: `repro save <index> "
                "<out> --shards S`)"
            )
        engine = _load_engine(directory, mode=mode)
        if parallel not in (None, "serial"):
            if parallel not in PARALLEL_MODES:
                raise ValueError(
                    f"unknown parallel mode {parallel!r}; expected one of {PARALLEL_MODES}"
                )
            raise ValueError(
                f"parallel={parallel!r} needs shards to scatter over, and "
                f"{directory} holds a single-engine save — re-shard it "
                "(ShardedLES3.from_engine, or `repro save <index> <out> --shards S`) "
                "and load the sharded directory instead"
            )
    if verify is not None:
        from repro.core.columnar import VERIFY_MODES

        if verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {verify!r}; expected one of {VERIFY_MODES}"
            )
        engine.verify = verify
    return engine


@dataclass(frozen=True)
class QueryRequest:
    """An engine-independent description of one exact query.

    The one canonical kwargs set shared by the CLI, the query service,
    and :func:`execute`: a kind (``"knn"``, ``"range"``, or ``"join"``),
    the query tokens (except for joins, which run over the indexed data),
    the kind's own parameter (``k`` / ``threshold``), and the uniform
    execution knobs ``verify`` / ``parallel`` (``None`` = the engine's
    defaults).  Two robustness knobs ride along: ``timeout_ms`` (a
    per-request deadline; the service maps an expired one to HTTP 504)
    and ``degraded`` (``"strict"``, the default, demands bit-identical
    answers or an exception; ``"partial"`` accepts answers from the
    healthy shards, with the failed ones reported back).

    Use the constructors — they validate eagerly, so a malformed request
    fails where it is built (e.g. at the server's admission edge), not
    deep inside an engine::

        >>> QueryRequest.knn(["a", "b"], k=3).k
        3
        >>> QueryRequest.range(["a"], threshold=0.5).threshold
        0.5
        >>> QueryRequest.join(threshold=0.8).tokens is None
        True
        >>> QueryRequest.knn(["a"], k=1, timeout_ms=250).timeout_ms
        250
        >>> QueryRequest.knn([], k=3)
        Traceback (most recent call last):
            ...
        ValueError: a knn query needs at least one token
    """

    kind: str
    tokens: tuple | None = None
    k: int | None = None
    threshold: float | None = None
    verify: str | None = None
    parallel: str | None = None
    timeout_ms: int | None = None
    degraded: str | None = None

    @classmethod
    def knn(
        cls,
        tokens: Sequence[Hashable],
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        timeout_ms: int | None = None,
        degraded: str | None = None,
    ) -> "QueryRequest":
        """A k-nearest-neighbours request over external query tokens."""
        if not tokens:
            raise ValueError("a knn query needs at least one token")
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        request = cls(
            kind="knn", tokens=tuple(tokens), k=k, verify=verify, parallel=parallel,
            timeout_ms=timeout_ms, degraded=degraded,
        )
        request._check_modes()
        return request

    @classmethod
    def range(
        cls,
        tokens: Sequence[Hashable],
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        timeout_ms: int | None = None,
        degraded: str | None = None,
    ) -> "QueryRequest":
        """A range request: all sets within ``threshold`` of the tokens."""
        if not tokens:
            raise ValueError("a range query needs at least one token")
        threshold = _checked_threshold(threshold, low=0.0)
        request = cls(
            kind="range", tokens=tuple(tokens), threshold=threshold,
            verify=verify, parallel=parallel,
            timeout_ms=timeout_ms, degraded=degraded,
        )
        request._check_modes()
        return request

    @classmethod
    def join(
        cls,
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        timeout_ms: int | None = None,
        degraded: str | None = None,
    ) -> "QueryRequest":
        """A similarity self-join of the indexed data (no query tokens)."""
        threshold = _checked_threshold(threshold, low=0.0, low_open=True)
        request = cls(
            kind="join", threshold=threshold, verify=verify, parallel=parallel,
            timeout_ms=timeout_ms, degraded=degraded,
        )
        request._check_modes()
        return request

    def _check_modes(self) -> None:
        from repro.core.columnar import VERIFY_MODES

        if self.verify is not None and self.verify not in VERIFY_MODES:
            raise ValueError(
                f"unknown verify mode {self.verify!r}; expected one of {VERIFY_MODES}"
            )
        if self.parallel is not None and self.parallel not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {self.parallel!r}; expected one of {PARALLEL_MODES}"
            )
        if self.degraded is not None and self.degraded not in DEGRADED_MODES:
            raise ValueError(
                f"unknown degraded mode {self.degraded!r}; expected one of {DEGRADED_MODES}"
            )
        if self.timeout_ms is not None:
            if (
                isinstance(self.timeout_ms, bool)
                or not isinstance(self.timeout_ms, int)
                or self.timeout_ms <= 0
            ):
                raise ValueError(
                    f"timeout_ms must be a positive integer, got {self.timeout_ms!r}"
                )

    @classmethod
    def from_payload(cls, kind: str, payload: dict) -> "QueryRequest":
        """Build a validated request from a JSON-shaped dict (the HTTP body).

        ``payload`` carries ``tokens`` (list of strings), ``k`` or
        ``threshold``, and optionally ``verify`` / ``parallel``.  Unknown
        keys are rejected so client typos fail loudly instead of being
        silently ignored.
        """
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        allowed = {
            "knn": {"tokens", "k", "verify", "parallel", "timeout_ms", "degraded"},
            "range": {"tokens", "threshold", "verify", "parallel", "timeout_ms", "degraded"},
            "join": {"threshold", "verify", "parallel", "timeout_ms", "degraded"},
        }[kind]
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)} for a {kind} request; "
                f"allowed: {sorted(allowed)}"
            )
        modes = {
            "verify": payload.get("verify"),
            "parallel": payload.get("parallel"),
            "timeout_ms": payload.get("timeout_ms"),
            "degraded": payload.get("degraded"),
        }
        if kind == "join":
            return cls.join(_payload_threshold(payload), **modes)
        tokens = payload.get("tokens")
        if not isinstance(tokens, list) or not all(
            isinstance(token, str) for token in tokens
        ):
            raise ValueError(f"a {kind} request needs 'tokens': a list of strings")
        if kind == "knn":
            return cls.knn(tokens, payload.get("k"), **modes)
        return cls.range(tokens, _payload_threshold(payload), **modes)


def _checked_threshold(threshold: object, low: float, low_open: bool = False) -> float:
    if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
        raise ValueError(f"threshold must be a number, got {threshold!r}")
    threshold = float(threshold)
    if not (low < threshold if low_open else low <= threshold) or threshold > 1.0:
        bracket = "(" if low_open else "["
        raise ValueError(f"threshold must be in {bracket}{low:g}, 1], got {threshold}")
    return threshold


def _payload_threshold(payload: dict) -> object:
    if "threshold" not in payload:
        raise ValueError("request needs a 'threshold'")
    return payload["threshold"]


@dataclass(frozen=True)
class QueryResult:
    """One request's answer in engine-independent form.

    ``matches`` holds ``(record_index, similarity)`` pairs for kNN/range
    requests and ``(x, y, similarity)`` triples for joins, in the
    engines' canonical order; ``stats`` the cost counters of the query
    that produced them.  :meth:`to_payload` is the JSON projection the
    HTTP service returns.
    """

    kind: str
    matches: list = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    def to_payload(self) -> dict:
        """A JSON-safe dict: the service's response body.

        A query answered in ``degraded="partial"`` mode with one or more
        shards down additionally carries a top-level ``failed_shards``
        list, so clients can tell a complete answer from a degraded one.
        """
        payload = {
            "kind": self.kind,
            "matches": [list(match) for match in self.matches],
            "count": len(self.matches),
            "stats": {
                "candidates_verified": self.stats.candidates_verified,
                "groups_scored": self.stats.groups_scored,
                "groups_pruned": self.stats.groups_pruned,
            },
        }
        failed_shards = self.stats.extra.get("failed_shards")
        if failed_shards:
            payload["failed_shards"] = list(failed_shards)
        return payload


@dataclass(frozen=True)
class WriteRequest:
    """An engine-independent description of one mutation.

    The write-path counterpart of :class:`QueryRequest`: a kind
    (``"insert"`` or ``"remove"``), the new set's tokens for inserts,
    the record index for removes.  On an engine attached to a saved
    generation the mutation lands in the generation's write-ahead
    ``delta.log``, so it survives a reload (see ``docs/persistence.md``).

    Use the constructors — like query requests they validate eagerly::

        >>> WriteRequest.insert(["a", "b"]).tokens
        ('a', 'b')
        >>> WriteRequest.remove(3).index
        3
        >>> WriteRequest.insert([])
        Traceback (most recent call last):
            ...
        ValueError: an insert needs at least one token
    """

    kind: str
    tokens: tuple | None = None
    index: int | None = None

    @classmethod
    def insert(cls, tokens: Sequence[Hashable]) -> "WriteRequest":
        """Insert a new set (open universe — unseen tokens are fine)."""
        if not tokens:
            raise ValueError("an insert needs at least one token")
        return cls(kind="insert", tokens=tuple(tokens))

    @classmethod
    def remove(cls, index: int) -> "WriteRequest":
        """Logically delete the record at ``index`` (a tombstone)."""
        if isinstance(index, bool) or not isinstance(index, int) or index < 0:
            raise ValueError(
                f"index must be a non-negative integer, got {index!r}"
            )
        return cls(kind="remove", index=index)

    @classmethod
    def from_payload(cls, kind: str, payload: dict) -> "WriteRequest":
        """Build a validated write from a JSON-shaped dict (the HTTP body).

        Unknown keys are rejected, exactly like
        :meth:`QueryRequest.from_payload`.
        """
        if kind not in WRITE_KINDS:
            raise ValueError(
                f"unknown write kind {kind!r}; expected one of {WRITE_KINDS}"
            )
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        allowed = {"insert": {"tokens"}, "remove": {"index"}}[kind]
        unknown = set(payload) - allowed
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)} for a {kind} request; "
                f"allowed: {sorted(allowed)}"
            )
        if kind == "insert":
            tokens = payload.get("tokens")
            if not isinstance(tokens, list) or not all(
                isinstance(token, str) for token in tokens
            ):
                raise ValueError(
                    "an insert request needs 'tokens': a list of strings"
                )
            return cls.insert(tokens)
        if "index" not in payload:
            raise ValueError("a remove request needs an 'index'")
        return cls.remove(payload["index"])


@dataclass(frozen=True)
class WriteResult:
    """One mutation's outcome in engine-independent form.

    ``index`` is the record the write touched (the new record for
    inserts, the tombstoned one for removes), ``group`` the group it
    joined or left, ``shard`` the shard involved (``None`` on a
    single-engine index).
    """

    kind: str
    index: int
    group: int
    shard: int | None = None

    def to_payload(self) -> dict:
        """A JSON-safe dict: the service's response body."""
        payload = {"kind": self.kind, "index": self.index, "group": self.group}
        if self.shard is not None:
            payload["shard"] = self.shard
        return payload


def apply_write(engine: Engine, request: WriteRequest) -> WriteResult:
    """Apply one mutation to either engine kind.

    Inserts route exactly as the engine's own ``insert`` (the sharded
    engine picks the lightest shard); removes tombstone the record.  A
    remove of an unknown or already-removed record raises
    :class:`ValueError`; so does any write against a lazily loaded
    (read-only) engine.

    Examples
    --------
    >>> from repro import Dataset, LES3
    >>> from repro.api import WriteRequest, apply_write
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["x", "y"]])
    >>> engine = LES3.build(dataset, num_groups=2)
    >>> apply_write(engine, WriteRequest.insert(["p", "q"])).index
    2
    >>> apply_write(engine, WriteRequest.remove(0)).kind
    'remove'
    >>> engine.removed
    {0}
    """
    if request.kind == "insert":
        placed = engine.insert(request.tokens)
        if len(placed) == 3:
            record_index, shard_id, group_id = placed
            return WriteResult("insert", record_index, group_id, shard_id)
        record_index, group_id = placed
        return WriteResult("insert", record_index, group_id)
    if request.kind == "remove":
        try:
            left = engine.remove(request.index)
        except KeyError as error:
            # Both engines signal an unknown/already-removed record with
            # KeyError; the service maps ValueError to HTTP 400.
            raise ValueError(
                f"cannot remove record {request.index}: "
                f"{error.args[0] if error.args else error}"
            ) from error
        if isinstance(left, tuple):
            shard_id, group_id = left
            return WriteResult("remove", request.index, group_id, shard_id)
        return WriteResult("remove", request.index, left)
    raise ValueError(
        f"unknown write kind {request.kind!r}; expected one of {WRITE_KINDS}"
    )


def _request_deadline(
    request: QueryRequest, deadline: Deadline | None
) -> Deadline | None:
    """The effective deadline: an explicit one wins over ``timeout_ms``."""
    if deadline is not None:
        return deadline
    return Deadline.from_timeout_ms(request.timeout_ms)


def execute(
    engine: Engine, request: QueryRequest, deadline: Deadline | None = None
) -> QueryResult:
    """Run one request against either engine kind.

    Thanks to the aligned query signatures this is a straight dispatch;
    ``verify``/``parallel``/``degraded`` overrides pass through unchanged
    (``None`` falls back to the engine's defaults).  The request's
    ``timeout_ms`` becomes a :class:`~repro.core.resilience.Deadline`
    starting *now*, unless the caller passes an explicit ``deadline``
    (the query service does: its deadline starts at admission, so queue
    time counts against the budget).  An expired deadline raises
    :class:`~repro.core.resilience.DeadlineExceeded`.

    Examples
    --------
    >>> from repro import Dataset, LES3
    >>> from repro.api import QueryRequest, execute
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> engine = LES3.build(dataset, num_groups=2)
    >>> execute(engine, QueryRequest.knn(["a", "b"], k=1)).matches
    [(0, 1.0)]
    >>> execute(engine, QueryRequest.join(threshold=0.3)).matches
    [(0, 1, 0.3333333333333333)]
    """
    deadline = _request_deadline(request, deadline)
    if request.kind == "knn":
        result = engine.knn(
            request.tokens, k=request.k,
            verify=request.verify, parallel=request.parallel,
            deadline=deadline, degraded=request.degraded,
        )
        return QueryResult("knn", result.matches, result.stats)
    if request.kind == "range":
        result = engine.range(
            request.tokens, threshold=request.threshold,
            verify=request.verify, parallel=request.parallel,
            deadline=deadline, degraded=request.degraded,
        )
        return QueryResult("range", result.matches, result.stats)
    if request.kind == "join":
        joined = engine.join(
            request.threshold, verify=request.verify, parallel=request.parallel,
            deadline=deadline, degraded=request.degraded,
        )
        return QueryResult("join", joined.pairs, joined.stats)
    raise ValueError(f"unknown query kind {request.kind!r}; expected one of {QUERY_KINDS}")


def _coalesce_key(request: QueryRequest) -> tuple[object, ...]:
    """Requests sharing this key can ride one batched kernel call."""
    if request.kind == "knn":
        return (
            "knn", request.k, request.verify, request.parallel,
            request.timeout_ms, request.degraded,
        )
    if request.kind == "range":
        return (
            "range", request.threshold, request.verify, request.parallel,
            request.timeout_ms, request.degraded,
        )
    return None  # joins are whole-database operations; never coalesced


def execute_batch(
    engine: Engine,
    requests: Sequence[QueryRequest | WriteRequest],
    deadline: Deadline | None = None,
) -> list[QueryResult | WriteResult]:
    """Run many requests, coalescing compatible ones into the batch kernels.

    kNN requests sharing ``(k, verify, parallel, timeout_ms, degraded)``
    and range requests sharing the analogous key are interned together
    and answered by one ``batch_knn_record`` / ``batch_range_record``
    call — group scoring becomes one BLAS product for the whole
    sub-batch instead of one scan per request.  Results come back in
    request order and are bit-identical to running :func:`execute` per
    request (asserted by the service's integration tests).  This is the
    primitive ``repro serve``'s micro-batcher dispatches to.  An
    explicit ``deadline`` (the service's, anchored at admission) bounds
    every sub-batch; otherwise each sub-batch gets a deadline from its
    shared ``timeout_ms``.

    The batch may also carry :class:`WriteRequest` entries.  All writes
    are applied first, in request order, so every query in the batch
    observes every write in the batch; a write that raises aborts the
    remaining requests (the query service isolates write failures per
    request instead — see :mod:`repro.serve.service`).
    """
    results: list[QueryResult | WriteResult | None] = [None] * len(requests)
    # Writes first: queries in a batch must see the batch's mutations.
    for position, request in enumerate(requests):
        if isinstance(request, WriteRequest):
            results[position] = apply_write(engine, request)
    coalesced: dict[tuple, list[int]] = {}
    for position, request in enumerate(requests):
        if isinstance(request, WriteRequest):
            continue
        key = _coalesce_key(request)
        if key is None:
            results[position] = execute(engine, request, deadline)
        else:
            coalesced.setdefault(key, []).append(position)
    for key, positions in coalesced.items():
        kind = key[0]
        records = [
            as_query_record(engine.dataset, requests[position].tokens)
            for position in positions
        ]
        verify, parallel = key[2], key[3]
        batch_deadline = _request_deadline(requests[positions[0]], deadline)
        degraded = key[5]
        if kind == "knn":
            answers = engine.batch_knn_record(
                records, key[1], verify=verify, parallel=parallel,
                deadline=batch_deadline, degraded=degraded,
            )
        else:
            answers = engine.batch_range_record(
                records, key[1], verify=verify, parallel=parallel,
                deadline=batch_deadline, degraded=degraded,
            )
        for position, answer in zip(positions, answers):
            results[position] = QueryResult(kind, answer.matches, answer.stats)
    return results  # type: ignore[return-value]
