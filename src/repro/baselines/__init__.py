"""Competing exact set-similarity search methods (Section 7.6)."""

from repro.baselines.brute_force import BruteForceSearch
from repro.baselines.dualtrans import DualTransSearch, bucket_vectors
from repro.baselines.invidx import InvertedIndexSearch

__all__ = [
    "BruteForceSearch",
    "DualTransSearch",
    "bucket_vectors",
    "InvertedIndexSearch",
]
