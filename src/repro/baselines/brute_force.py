"""Brute-force baseline: verify every set (included in Figures 12/13).

The paper's point of including it: for realistically low thresholds or large
result sizes, heavy indexes lose to a plain scan; any useful index must beat
this baseline.
"""

from __future__ import annotations

import heapq

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.search import SearchResult
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure

__all__ = ["BruteForceSearch"]


class BruteForceSearch:
    """Linear scan with exact verification of every record."""

    def __init__(self, dataset: Dataset, measure: str | Similarity = "jaccard") -> None:
        self.dataset = dataset
        self.measure = get_measure(measure)

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        stats = QueryStats()
        matches = []
        for record_index, record in enumerate(self.dataset.records):
            similarity = self.measure(query, record)
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            if similarity >= threshold:
                matches.append((record_index, similarity))
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        return SearchResult(matches, stats)

    def knn_search(self, query: SetRecord, k: int) -> SearchResult:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        stats = QueryStats()
        heap: list[tuple[float, int]] = []
        for record_index, record in enumerate(self.dataset.records):
            similarity = self.measure(query, record)
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            entry = (similarity, -record_index)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        matches = [(-neg, sim) for sim, neg in heap]
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        return SearchResult(matches, stats)
