"""DualTrans-style baseline: set-to-vector transformation + R-tree ([73]).

Reimplements the *mechanism* of the transformation-based framework the
paper compares against: every set becomes a ``d``-dimensional vector and an
R-tree over the vectors drives a branch-and-bound search with exact
verification.

The transformation here is **token bucketing**: the token universe is split
into ``d`` equal buckets and ``v[i] = |S ∩ bucket_i|``.  This gives exact
similarity bounds from MBRs:

* overlap bound: ``ov ≤ Σ_i min(q_i, mbr_max_i)`` (buckets partition T);
* size bound: ``|S| ≥ Σ_i mbr_min_i``;
* similarity bound: ``Sim(Q,S) ≤ measure.from_overlap(ov_ub, |Q|,
  max(size_min, ov_ub))`` — every supported measure is non-decreasing in the
  overlap and non-increasing in ``|S|`` at fixed overlap.

Exactly the drawback structure the paper describes emerges: small ``d``
separates sets poorly (loose bounds), large ``d`` inflates node overlap and
R-tree scan cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.search import SearchResult
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure
from repro.rtree.rtree import RTree

__all__ = ["DualTransSearch", "bucket_vectors"]


def bucket_vectors(dataset: Dataset, dim: int) -> np.ndarray:
    """Token-bucket count vectors for every record (``|D| × dim``)."""
    if dim <= 0:
        raise ValueError("dim must be positive")
    universe = max(len(dataset.universe), 1)
    bucket_of = (np.arange(universe) * dim) // universe
    vectors = np.zeros((len(dataset), dim), dtype=np.float64)
    for i, record in enumerate(dataset.records):
        for token, count in record.counts().items():
            if token < universe:
                vectors[i, bucket_of[token]] += count
    return vectors


class DualTransSearch:
    """Exact search over bucket vectors organised by an R-tree."""

    def __init__(
        self,
        dataset: Dataset,
        dim: int = 16,
        measure: str | Similarity = "jaccard",
        leaf_capacity: int = 32,
        fanout: int = 8,
    ) -> None:
        self.dataset = dataset
        self.measure = get_measure(measure)
        self.dim = dim
        universe = max(len(dataset.universe), 1)
        self._bucket_of = (np.arange(universe) * dim) // universe
        self.vectors = bucket_vectors(dataset, dim)
        self.tree = RTree(leaf_capacity, fanout).bulk_load(self.vectors)

    def _bucket_for(self, token: int) -> int:
        """Bucket of a token; tokens beyond the build-time universe share an
        overflow bucket (the last one) so post-build insertions stay exact —
        their overlap is still accounted for in the MBR bound."""
        if token < len(self._bucket_of):
            return int(self._bucket_of[token])
        return self.dim - 1

    def _query_vector(self, query: SetRecord) -> np.ndarray:
        vector = np.zeros(self.dim)
        for token, count in query.counts().items():
            vector[self._bucket_for(token)] += count
        return vector

    def insert(self, record_index: int) -> None:
        """Index a record appended to the dataset after the build.

        Exhibits the maintenance cost the paper attributes to tree-based
        methods: every insert enlarges MBRs along its path.
        """
        record = self.dataset.records[record_index]
        vector = np.zeros(self.dim)
        for token, count in record.counts().items():
            vector[self._bucket_for(token)] += count
        self.tree.insert(record_index, vector)

    def _bound_function(self, query_vector: np.ndarray, query_size: int):
        measure = self.measure

        def bound(mbr_min: np.ndarray, mbr_max: np.ndarray) -> float:
            overlap_ub = float(np.minimum(query_vector, mbr_max).sum())
            if overlap_ub <= 0.0:
                return 0.0
            # Bucket counts are integral, so both bounds are exact integers;
            # the smallest feasible |S| maximises the similarity bound.
            size_min = float(mbr_min.sum())
            best_size = max(size_min, overlap_ub, 1.0)
            return measure.from_overlap(overlap_ub, query_size, best_size)

        return bound

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        stats = QueryStats()
        query_vector = self._query_vector(query)
        bound = self._bound_function(query_vector, len(query))
        entries, nodes_visited = self.tree.range_query(bound, threshold)
        stats.extra["nodes_visited"] = nodes_visited
        matches = []
        for record_index, _ in entries:
            similarity = self.measure(query, self.dataset.records[record_index])
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            if similarity >= threshold:
                matches.append((record_index, similarity))
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        return SearchResult(matches, stats)

    def knn_search(self, query: SetRecord, k: int) -> SearchResult:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        stats = QueryStats()
        query_vector = self._query_vector(query)
        bound = self._bound_function(query_vector, len(query))

        def score(record_index: int, _vector: np.ndarray) -> float:
            return self.measure(query, self.dataset.records[record_index])

        matches, nodes_visited, entries_scored = self.tree.knn_traverse(bound, score, k)
        stats.extra["nodes_visited"] = nodes_visited
        stats.candidates_verified = entries_scored
        stats.similarity_computations = entries_scored
        stats.result_size = len(matches)
        return SearchResult(matches, stats)

    def index_bytes(self) -> int:
        return self.tree.byte_size()
