"""InvIdx — inverted-index baseline with prefix and length filtering.

Stands in for the set-relations method of Wang et al. [67] that the paper
uses as the state-of-the-art inverted-index competitor.  The core machinery
is the classic exact filter stack for Jaccard range search:

* **Global token order** by ascending document frequency (rare first), so a
  query's *prefix* — its first ``|Q| − ⌈δ|Q|⌉ + 1`` tokens in that order —
  is maximally selective.
* **Prefix filter**: any ``S`` with ``Jaccard(Q, S) ≥ δ`` must contain at
  least one query prefix token, so candidates come from those postings only.
* **Length filter**: ``|S| ∈ [δ·|Q|, |Q|/δ]``; postings are sorted by set
  size so each is scanned within a binary-searched window.

kNN queries use exactly the Section 7.6 adaptation: start at ``δ = 1.0``,
run the range filter, keep the best ``k``; while the kth similarity is below
``δ``, decrease ``δ`` by the tuned step ``z`` and repeat with the widened
candidate set.
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.search import SearchResult
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure

__all__ = ["InvertedIndexSearch"]


class InvertedIndexSearch:
    """Exact set-similarity search on an inverted index (Jaccard bounds).

    The prefix/length bounds assume Jaccard; other measures fall back to a
    conservative prefix length (the full query), staying exact at the cost
    of filtering power — mirroring how the original systems are
    Jaccard-centric.
    """

    def __init__(self, dataset: Dataset, measure: str | Similarity = "jaccard") -> None:
        self.dataset = dataset
        self.measure = get_measure(measure)
        self._jaccard_bounds = self.measure.name == "jaccard"

        frequency: defaultdict[int, int] = defaultdict(int)
        for record in dataset.records:
            for token in record.distinct:
                frequency[token] += 1
        # Rare-first total order; ties broken by token id for determinism.
        self._token_rank = {
            token: rank
            for rank, token in enumerate(
                sorted(frequency, key=lambda t: (frequency[t], t))
            )
        }
        # Postings sorted by set size (supports the length-filter window).
        postings: defaultdict[int, list[int]] = defaultdict(list)
        for record_index, record in enumerate(dataset.records):
            for token in record.distinct:
                postings[token].append(record_index)
        sizes = [len(record) for record in dataset.records]
        self._sizes = sizes
        self._postings: dict[int, list[int]] = {
            token: sorted(ids, key=lambda i: (sizes[i], i)) for token, ids in postings.items()
        }
        self._posting_sizes: dict[int, list[int]] = {
            token: [sizes[i] for i in ids] for token, ids in self._postings.items()
        }

    def index_bytes(self) -> int:
        """Approximate index size: 4-byte postings + per-token list headers.

        Matches the accounting used for the other methods in the Figure 11
        comparison (record payloads excluded everywhere).
        """
        entries = sum(len(posting) for posting in self._postings.values())
        headers = 16 * len(self._postings)
        # The size-sorted parallel arrays double the posting storage.
        return 2 * 4 * entries + headers

    # -- internals ----------------------------------------------------------

    def _ordered_query_tokens(self, query: SetRecord) -> list[int]:
        known = [t for t in query.distinct if t in self._token_rank]
        known.sort(key=lambda t: self._token_rank[t])
        return known

    def _prefix_length(self, query_size: int, threshold: float) -> int:
        if not self._jaccard_bounds or threshold <= 0.0:
            return query_size
        return query_size - math.ceil(threshold * query_size) + 1

    def _gather_candidates(
        self, query: SetRecord, threshold: float, stats: QueryStats
    ) -> set[int]:
        ordered = self._ordered_query_tokens(query)
        prefix_len = min(self._prefix_length(len(query), threshold), len(ordered))
        if self._jaccard_bounds and threshold > 0.0:
            min_size = math.ceil(threshold * len(query))
            max_size = math.floor(len(query) / threshold)
        else:
            min_size, max_size = 0, 1 << 60
        candidates: set[int] = set()
        for token in ordered[:prefix_len]:
            posting = self._postings.get(token)
            if posting is None:
                continue
            posting_sizes = self._posting_sizes[token]
            start = bisect.bisect_left(posting_sizes, min_size)
            end = bisect.bisect_right(posting_sizes, max_size)
            stats.columns_visited += end - start  # posting entries scanned
            candidates.update(posting[start:end])
        return candidates

    # -- queries -----------------------------------------------------------

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        stats = QueryStats()
        if threshold == 0.0:
            # Degenerate: everything matches; no filter helps.
            candidates: set[int] = set(range(len(self.dataset)))
        else:
            candidates = self._gather_candidates(query, threshold, stats)
        matches = []
        for record_index in candidates:
            similarity = self.measure(query, self.dataset.records[record_index])
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            if similarity >= threshold:
                matches.append((record_index, similarity))
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        return SearchResult(matches, stats)

    def knn_search(self, query: SetRecord, k: int, step: float = 0.05) -> SearchResult:
        """Descending-δ kNN adaptation (Section 7.6)."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if not 0.0 < step <= 1.0:
            raise ValueError("step must be in (0, 1]")
        stats = QueryStats()
        threshold = 1.0
        verified: dict[int, float] = {}
        while True:
            candidates = self._gather_candidates(query, threshold, stats)
            for record_index in candidates:
                if record_index in verified:
                    continue
                similarity = self.measure(query, self.dataset.records[record_index])
                stats.candidates_verified += 1
                stats.similarity_computations += 1
                verified[record_index] = similarity
            top = sorted(verified.items(), key=lambda pair: (-pair[1], pair[0]))[:k]
            kth = top[-1][1] if len(top) >= k else -1.0
            if (len(top) >= k and kth >= threshold) or threshold <= 0.0:
                matches = [(index, sim) for index, sim in top]
                stats.result_size = len(matches)
                return SearchResult(matches, stats)
            threshold = max(threshold - step, 0.0)
            if threshold == 0.0 and len(verified) < len(self.dataset):
                # Last resort: δ reached 0, verify everything that remains.
                for record_index in range(len(self.dataset)):
                    if record_index not in verified:
                        similarity = self.measure(query, self.dataset.records[record_index])
                        stats.candidates_verified += 1
                        stats.similarity_computations += 1
                        verified[record_index] = similarity
