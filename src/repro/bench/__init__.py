"""Benchmark harness helpers shared by the ``benchmarks/`` modules."""

from repro.bench.harness import Timer, format_table, geometric_mean, print_table, time_calls

__all__ = ["Timer", "format_table", "geometric_mean", "print_table", "time_calls"]
