"""Benchmark harness helpers shared by the ``benchmarks/`` modules."""

from repro.bench.harness import Timer, format_table, geometric_mean, print_table, time_calls
from repro.bench.trajectory import append_trajectory

__all__ = [
    "Timer",
    "append_trajectory",
    "format_table",
    "geometric_mean",
    "print_table",
    "time_calls",
]
