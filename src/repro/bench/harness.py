"""Benchmark harness utilities: timing helpers and paper-style tables.

Every ``benchmarks/bench_fig*.py`` module uses these to print the same rows
or series the corresponding paper table/figure reports, so the output can be
compared against the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

__all__ = ["Timer", "time_calls", "format_table", "print_table", "geometric_mean"]


class Timer:
    """Context-manager stopwatch; ``elapsed`` holds seconds after exit."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_calls(func: Callable[[], object], repeats: int = 1) -> float:
    """Mean wall-clock seconds of ``repeats`` invocations of ``func``."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    start = time.perf_counter()
    for _ in range(repeats):
        func()
    return (time.perf_counter() - start) / repeats


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero/negative inputs raise ``ValueError``."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= value
    return product ** (1.0 / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain fixed-width table (no external deps)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled table to stdout (shown with ``pytest -s``)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.001 or abs(value) >= 100_000):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
