"""The shared BENCH_*.json trajectory writer.

Every standalone benchmark (``bench_verify.py``, ``bench_join.py``,
``bench_sharded.py``) appends one entry per run to a JSON trajectory at
the repo root, so speedups are tracked across commits.  One definition
of the read-append-atomic-replace dance keeps the three files from
drifting.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["append_trajectory"]


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` to the JSON list at ``path`` (atomic replace).

    A run killed mid-write (or a hand edit) leaves truncated or non-list
    JSON; in that case a fresh trajectory is started rather than losing
    this (possibly minutes-long) run too — with a warning, so the loss
    of history is visible.
    """
    path = Path(path)
    trajectory = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except json.JSONDecodeError:
            trajectory = None
        if not isinstance(trajectory, list):
            print(f"# warning: {path} held no JSON trajectory, starting fresh")
            trajectory = []
    trajectory.append(entry)
    scratch = path.with_suffix(".tmp")
    scratch.write_text(json.dumps(trajectory, indent=2) + "\n")
    scratch.replace(path)  # atomic: never leaves a half-written trajectory
