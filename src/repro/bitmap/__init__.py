"""Roaring-style compressed bitmap substrate (stands in for Roaring [41])."""

from repro.bitmap.containers import (
    ARRAY_MAX,
    ArrayContainer,
    BitsetContainer,
    Container,
    RunContainer,
)
from repro.bitmap.roaring import RoaringBitmap

__all__ = [
    "ARRAY_MAX",
    "ArrayContainer",
    "BitsetContainer",
    "Container",
    "RunContainer",
    "RoaringBitmap",
]
