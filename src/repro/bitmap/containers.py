"""Containers for the Roaring-style compressed bitmap.

A roaring bitmap splits the 32-bit value space into 2^16 chunks keyed by the
high 16 bits; each non-empty chunk stores its low 16 bits in one of three
container kinds, exactly as in the Roaring paper (Lemire et al., 2018):

* :class:`ArrayContainer` — a sorted ``array('H')`` of values, used while the
  chunk holds at most :data:`ARRAY_MAX` values.
* :class:`BitsetContainer` — a fixed 1024-word uint64 bitset (8 KiB), used
  for dense chunks.
* :class:`RunContainer` — sorted ``(start, length)`` runs, used when run
  encoding is smaller than the alternatives (``run_optimize``).

Containers are value-immutable from the outside except through ``add``;
set-algebra methods always return fresh containers.
"""

from __future__ import annotations

from array import array
from typing import Iterator

import numpy as np

__all__ = [
    "ARRAY_MAX",
    "BITSET_WORDS",
    "Container",
    "ArrayContainer",
    "BitsetContainer",
    "RunContainer",
    "container_from_sorted",
]

ARRAY_MAX = 4096
BITSET_WORDS = 1 << 10  # 65536 bits / 64


class Container:
    """Interface shared by the three container kinds."""

    def cardinality(self) -> int:
        raise NotImplementedError

    def contains(self, low: int) -> bool:
        raise NotImplementedError

    def add(self, low: int) -> "Container":
        """Add a value; may return a different container kind."""
        raise NotImplementedError

    def values(self) -> Iterator[int]:
        """Iterate low values in ascending order."""
        raise NotImplementedError

    def byte_size(self) -> int:
        """Approximate serialized size in bytes."""
        raise NotImplementedError

    def to_bitset(self) -> "BitsetContainer":
        bitset = BitsetContainer()
        words = bitset.words
        for low in self.values():
            words[low >> 6] |= np.uint64(1 << (low & 63))
        bitset._cardinality = self.cardinality()
        return bitset

    def to_array(self) -> "ArrayContainer":
        return ArrayContainer(array("H", self.values()))

    # Set algebra: implemented pairwise in subclasses via normalisation.

    def intersection(self, other: "Container") -> "Container":
        raise NotImplementedError

    def union(self, other: "Container") -> "Container":
        raise NotImplementedError

    def intersection_cardinality(self, other: "Container") -> int:
        return self.intersection(other).cardinality()


class ArrayContainer(Container):
    """Sorted array of 16-bit values (sparse chunks)."""

    __slots__ = ("items",)

    def __init__(self, items: array | None = None) -> None:
        self.items: array = items if items is not None else array("H")

    def cardinality(self) -> int:
        return len(self.items)

    def contains(self, low: int) -> bool:
        items = self.items
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if items[mid] < low:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(items) and items[lo] == low

    def add(self, low: int) -> Container:
        items = self.items
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if items[mid] < low:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(items) and items[lo] == low:
            return self
        items.insert(lo, low)
        if len(items) > ARRAY_MAX:
            return self.to_bitset()
        return self

    def values(self) -> Iterator[int]:
        return iter(self.items)

    def byte_size(self) -> int:
        return 2 * len(self.items) + 8

    def intersection(self, other: Container) -> Container:
        if isinstance(other, ArrayContainer):
            a = np.frombuffer(self.items, dtype=np.uint16) if self.items else np.empty(0, np.uint16)
            b = np.frombuffer(other.items, dtype=np.uint16) if other.items else np.empty(0, np.uint16)
            common = np.intersect1d(a, b, assume_unique=True)
            return ArrayContainer(array("H", common.tolist()))
        if isinstance(other, BitsetContainer):
            kept = array("H", (low for low in self.items if other.contains(low)))
            return ArrayContainer(kept)
        return other.intersection(self)

    def union(self, other: Container) -> Container:
        if isinstance(other, ArrayContainer):
            a = np.frombuffer(self.items, dtype=np.uint16) if self.items else np.empty(0, np.uint16)
            b = np.frombuffer(other.items, dtype=np.uint16) if other.items else np.empty(0, np.uint16)
            merged = np.union1d(a, b)
            if len(merged) > ARRAY_MAX:
                result = ArrayContainer(array("H", merged.tolist()))
                return result.to_bitset()
            return ArrayContainer(array("H", merged.tolist()))
        return other.union(self)

    def intersection_cardinality(self, other: Container) -> int:
        if isinstance(other, BitsetContainer):
            return sum(1 for low in self.items if other.contains(low))
        return super().intersection_cardinality(other)


class BitsetContainer(Container):
    """Fixed-size uint64 bitset (dense chunks)."""

    __slots__ = ("words", "_cardinality")

    def __init__(self, words: np.ndarray | None = None) -> None:
        if words is None:
            words = np.zeros(BITSET_WORDS, dtype=np.uint64)
        self.words: np.ndarray = words
        self._cardinality: int | None = None

    def cardinality(self) -> int:
        if self._cardinality is None:
            self._cardinality = int(np.bitwise_count(self.words).sum())
        return self._cardinality

    def contains(self, low: int) -> bool:
        return bool(self.words[low >> 6] & np.uint64(1 << (low & 63)))

    def add(self, low: int) -> Container:
        word = np.uint64(1 << (low & 63))
        if not self.words[low >> 6] & word:
            self.words[low >> 6] |= word
            if self._cardinality is not None:
                self._cardinality += 1
        return self

    def values(self) -> Iterator[int]:
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return iter(np.flatnonzero(bits).tolist())

    def byte_size(self) -> int:
        return BITSET_WORDS * 8

    def intersection(self, other: Container) -> Container:
        if isinstance(other, BitsetContainer):
            words = self.words & other.words
            result = BitsetContainer(words)
            if result.cardinality() <= ARRAY_MAX:
                return result.to_array()
            return result
        return other.intersection(self)

    def union(self, other: Container) -> Container:
        if isinstance(other, BitsetContainer):
            return BitsetContainer(self.words | other.words)
        merged = BitsetContainer(self.words.copy())
        merged._cardinality = None
        for low in other.values():
            merged.words[low >> 6] |= np.uint64(1 << (low & 63))
        return merged

    def intersection_cardinality(self, other: Container) -> int:
        if isinstance(other, BitsetContainer):
            return int(np.bitwise_count(self.words & other.words).sum())
        return other.intersection_cardinality(self)


class RunContainer(Container):
    """Run-length encoded container: sorted ``(start, length)`` pairs.

    Produced only by ``run_optimize``; ``add`` converts back to an array or
    bitset container first (runs are cheap to read, awkward to mutate).
    """

    __slots__ = ("runs",)

    def __init__(self, runs: list[tuple[int, int]]) -> None:
        self.runs = runs

    @classmethod
    def from_sorted(cls, values: Iterator[int]) -> "RunContainer":
        runs: list[tuple[int, int]] = []
        start = None
        prev = None
        for value in values:
            if start is None:
                start, prev = value, value
            elif value == prev + 1:
                prev = value
            else:
                runs.append((start, prev - start + 1))
                start, prev = value, value
        if start is not None:
            runs.append((start, prev - start + 1))
        return cls(runs)

    def cardinality(self) -> int:
        return sum(length for _, length in self.runs)

    def contains(self, low: int) -> bool:
        lo, hi = 0, len(self.runs)
        while lo < hi:
            mid = (lo + hi) // 2
            start, length = self.runs[mid]
            if start + length <= low:
                lo = mid + 1
            elif start > low:
                hi = mid
            else:
                return True
        return False

    def add(self, low: int) -> Container:
        if self.contains(low):
            return self
        expanded = self.to_array() if self.cardinality() < ARRAY_MAX else self.to_bitset()
        return expanded.add(low)

    def values(self) -> Iterator[int]:
        for start, length in self.runs:
            yield from range(start, start + length)

    def byte_size(self) -> int:
        return 4 * len(self.runs) + 8

    def intersection(self, other: Container) -> Container:
        if isinstance(other, RunContainer):
            return self.to_array().intersection(other.to_array()) if (
                self.cardinality() <= ARRAY_MAX and other.cardinality() <= ARRAY_MAX
            ) else self.to_bitset().intersection(other.to_bitset())
        kept = array("H", (low for low in self.values() if other.contains(low)))
        if len(kept) > ARRAY_MAX:
            return ArrayContainer(kept).to_bitset()
        return ArrayContainer(kept)

    def union(self, other: Container) -> Container:
        base = self.to_array() if self.cardinality() <= ARRAY_MAX else self.to_bitset()
        return base.union(other)


def container_from_sorted(values: list[int]) -> Container:
    """Build the most natural container for a sorted, duplicate-free chunk."""
    if len(values) <= ARRAY_MAX:
        return ArrayContainer(array("H", values))
    container: Container = BitsetContainer()
    for low in values:
        container.add(low)
    return container
