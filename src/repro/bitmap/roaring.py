"""Roaring-style compressed bitmap over 32-bit integers.

The paper compresses the TGM with Roaring [41]; with no network access we
implement the same design in pure Python/numpy: the value space is chunked by
the high 16 bits, and each chunk stores its low 16 bits in an array, bitset,
or run container (see :mod:`repro.bitmap.containers`).

The subset of the Roaring API needed by the TGM and the index-size
experiment is implemented: membership, insertion, union, intersection,
intersection cardinality, run optimisation, and serialized-size accounting.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.bitmap.containers import (
    ArrayContainer,
    BitsetContainer,
    Container,
    RunContainer,
    container_from_sorted,
)

__all__ = ["RoaringBitmap"]


class RoaringBitmap:
    """A compressed set of 32-bit unsigned integers."""

    __slots__ = ("_containers",)

    def __init__(self, values: Iterable[int] = ()) -> None:
        self._containers: dict[int, Container] = {}
        values = sorted(set(values))
        if values:
            self._bulk_load(values)

    def _bulk_load(self, values: list[int]) -> None:
        chunk: list[int] = []
        current_high = values[0] >> 16
        for value in values:
            self._check(value)
            high = value >> 16
            if high != current_high:
                self._containers[current_high] = container_from_sorted(chunk)
                chunk = []
                current_high = high
            chunk.append(value & 0xFFFF)
        self._containers[current_high] = container_from_sorted(chunk)

    @staticmethod
    def _check(value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise ValueError(f"value {value} outside the 32-bit unsigned range")

    # -- basic set operations ------------------------------------------------

    def add(self, value: int) -> None:
        self._check(value)
        high, low = value >> 16, value & 0xFFFF
        container = self._containers.get(high)
        if container is None:
            container = ArrayContainer()
            self._containers[high] = container
        self._containers[high] = container.add(low)

    def update(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    def __contains__(self, value: int) -> bool:
        if not 0 <= value < (1 << 32):
            return False
        container = self._containers.get(value >> 16)
        return container is not None and container.contains(value & 0xFFFF)

    def __len__(self) -> int:
        return sum(container.cardinality() for container in self._containers.values())

    def __iter__(self) -> Iterator[int]:
        for high in sorted(self._containers):
            base = high << 16
            for low in self._containers[high].values():
                yield base | low

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        return list(self) == list(other)

    def __repr__(self) -> str:
        return f"RoaringBitmap(cardinality={len(self)}, chunks={len(self._containers)})"

    # -- algebra ---------------------------------------------------------------

    def intersection(self, other: "RoaringBitmap") -> "RoaringBitmap":
        result = RoaringBitmap()
        small, large = (self, other) if len(self._containers) <= len(other._containers) else (other, self)
        for high, container in small._containers.items():
            other_container = large._containers.get(high)
            if other_container is None:
                continue
            merged = container.intersection(other_container)
            if merged.cardinality():
                result._containers[high] = merged
        return result

    def union(self, other: "RoaringBitmap") -> "RoaringBitmap":
        result = RoaringBitmap()
        for high, container in self._containers.items():
            other_container = other._containers.get(high)
            if other_container is None:
                result._containers[high] = container
            else:
                result._containers[high] = container.union(other_container)
        for high, container in other._containers.items():
            if high not in self._containers:
                result._containers[high] = container
        return result

    def intersection_cardinality(self, other: "RoaringBitmap") -> int:
        total = 0
        small, large = (self, other) if len(self._containers) <= len(other._containers) else (other, self)
        for high, container in small._containers.items():
            other_container = large._containers.get(high)
            if other_container is not None:
                total += container.intersection_cardinality(other_container)
        return total

    def difference(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """Values in self but not in other (and-not)."""
        result = RoaringBitmap()
        for high, container in self._containers.items():
            other_container = other._containers.get(high)
            if other_container is None:
                result._containers[high] = container
                continue
            kept = [low for low in container.values() if not other_container.contains(low)]
            if kept:
                result._containers[high] = container_from_sorted(kept)
        return result

    def remove(self, value: int) -> None:
        """Remove a value if present (no-op otherwise)."""
        if not 0 <= value < (1 << 32):
            return
        high, low = value >> 16, value & 0xFFFF
        container = self._containers.get(high)
        if container is None or not container.contains(low):
            return
        kept = [v for v in container.values() if v != low]
        if kept:
            self._containers[high] = container_from_sorted(kept)
        else:
            del self._containers[high]

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self.intersection(other)

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self.union(other)

    def __sub__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        return self.difference(other)

    # -- maintenance -------------------------------------------------------------

    def run_optimize(self) -> None:
        """Convert chunks to run containers where that shrinks them."""
        for high, container in list(self._containers.items()):
            run = RunContainer.from_sorted(container.values())
            if run.byte_size() < container.byte_size():
                self._containers[high] = run

    def byte_size(self) -> int:
        """Approximate serialized size in bytes (containers + chunk keys)."""
        overhead = 4 * len(self._containers) + 16
        return overhead + sum(container.byte_size() for container in self._containers.values())

    def container_kinds(self) -> dict[str, int]:
        """Count containers by kind (diagnostics and tests)."""
        kinds = {"array": 0, "bitset": 0, "run": 0}
        for container in self._containers.values():
            if isinstance(container, ArrayContainer):
                kinds["array"] += 1
            elif isinstance(container, BitsetContainer):
                kinds["bitset"] += 1
            elif isinstance(container, RunContainer):
                kinds["run"] += 1
        return kinds
