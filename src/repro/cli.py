"""Command-line interface: build, query, persist, validate, and inspect indexes.

Usage::

    repro build data.txt index --groups 64
    repro save index sharded-index --shards 4
    repro load sharded-index --mode lazy
    repro knn index --query "a b c" -k 10 --shards 4
    repro knn sharded-index --query "a b c" -k 10 --parallel process
    repro range index --query "a b c" --threshold 0.7 --mode mmap
    repro join sharded-index --threshold 0.8 --verify both --parallel thread
    repro bench sharded-index --queries 200 -k 10 --verify both --mode mmap
    repro serve sharded-index --mode lazy --parallel process
    repro stats data.txt
    repro validate sharded-index

``data.txt`` is the standard one-set-per-line, whitespace-separated token
format used by the public set-similarity benchmarks.  Every query command
routes through the unified :func:`repro.load` entry point, which
auto-detects whether its index directory holds a single-engine save
(``repro build``) or a sharded save (``repro save``); results are
identical either way.  ``--shards S`` re-shards a loaded *single-engine*
index in memory; ``--parallel serial|thread|process`` picks the sharded
execution mode (``process`` needs a sharded index directory — its
workers rehydrate from disk).  ``--verify`` picks the
candidate-verification path (``columnar`` kernel by default, ``scalar``
as the escape hatch; ``join``/``bench`` accept ``both`` to time each and
report the speedup).  ``--mode memory|mmap|lazy`` picks the dataset load
path (parse ``dataset.txt``, map the binary ``dataset.bin``, or
additionally build shard indexes on demand).  Results are identical in
every combination.  ``repro serve`` turns a saved index into a long-lived
HTTP query service with micro-batching (see ``docs/serving.md``).  See
``docs/cli.md`` for the complete reference.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import QueryRequest, execute, load
from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.persistence import PersistenceError, save_engine
from repro.core.resilience import DeadlineExceeded
from repro.core.validation import validate_tgm
from repro.distributed import ShardedLES3, save_sharded
from repro.distributed.persistence import is_sharded_index

__all__ = ["main", "build_parser"]

_LOAD_ERRORS = (PersistenceError, FileNotFoundError)


class _CliError(Exception):
    """A user-facing CLI argument/usage error (printed, exit code 1)."""


def _add_parallel_flag(command) -> None:
    command.add_argument(
        "--parallel", default="serial", choices=["serial", "thread", "process"],
        help="sharded execution mode (process needs a sharded index directory)",
    )


def _add_robustness_flags(command) -> None:
    command.add_argument(
        "--timeout-ms", type=int, default=None,
        help="per-query deadline in milliseconds (expired queries fail)",
    )
    command.add_argument(
        "--degraded", default=None, choices=["strict", "partial"],
        help="strict (default): exact answers or an error; "
        "partial: answer from healthy shards, report the failed ones",
    )


def _add_mode_flag(command) -> None:
    command.add_argument(
        "--mode", default="memory", choices=["memory", "mmap", "lazy"],
        help="dataset load path: parse dataset.txt into RAM (memory), map the "
        "binary dataset.bin (mmap), or additionally build shard indexes on "
        "demand (lazy; sharded directories only) — results are identical",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LES3: learning-based exact set similarity search",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="partition a dataset and persist the index")
    build.add_argument("data", help="dataset file (one set per line)")
    build.add_argument("index", help="output index directory")
    build.add_argument("--groups", type=int, default=0, help="group count (default 0.5%% of |D|)")
    build.add_argument("--measure", default="jaccard", help="similarity measure")
    build.add_argument("--backend", default="dense", choices=["dense", "roaring"])
    build.add_argument("--pairs", type=int, default=40_000, help="training pairs per model")
    build.add_argument("--epochs", type=int, default=3)
    build.add_argument("--workers", type=int, default=1, help="parallel model training threads")
    build.add_argument("--seed", type=int, default=0)

    save = commands.add_parser(
        "save", help="re-shard a single-engine index and persist it as a sharded index"
    )
    save.add_argument("index", help="single-engine index directory (from `repro build`)")
    save.add_argument("out", help="output sharded index directory")
    save.add_argument("--shards", type=int, required=True, help="shard count")

    load_cmd = commands.add_parser("load", help="load an index (either kind) and summarize it")
    load_cmd.add_argument("index", help="index directory (single-engine or sharded)")
    _add_mode_flag(load_cmd)

    knn = commands.add_parser("knn", help="k nearest neighbours of a query set")
    knn.add_argument("index", help="index directory (single-engine or sharded)")
    knn.add_argument("--query", required=True, help="space-separated query tokens")
    knn.add_argument("-k", type=int, default=10)
    knn.add_argument("--shards", type=int, default=1, help="re-shard a single-engine index")
    knn.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar"],
        help="verification path (results are identical)",
    )
    _add_mode_flag(knn)
    _add_parallel_flag(knn)
    _add_robustness_flags(knn)

    range_cmd = commands.add_parser("range", help="all sets within a similarity threshold")
    range_cmd.add_argument("index", help="index directory (single-engine or sharded)")
    range_cmd.add_argument("--query", required=True, help="space-separated query tokens")
    range_cmd.add_argument("--threshold", type=float, required=True)
    range_cmd.add_argument("--shards", type=int, default=1, help="re-shard a single-engine index")
    range_cmd.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar"],
        help="verification path (results are identical)",
    )
    _add_mode_flag(range_cmd)
    _add_parallel_flag(range_cmd)
    _add_robustness_flags(range_cmd)

    join = commands.add_parser("join", help="exact similarity self-join of the indexed data")
    join.add_argument("index", help="index directory (single-engine or sharded)")
    join.add_argument("--threshold", type=float, required=True)
    join.add_argument("--shards", type=int, default=1, help="re-shard a single-engine index")
    join.add_argument("--limit", type=int, default=20, help="pairs to print (0 = none)")
    join.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar", "both"],
        help="verification path; 'both' times each and reports the speedup",
    )
    _add_mode_flag(join)
    _add_parallel_flag(join)
    _add_robustness_flags(join)

    bench = commands.add_parser("bench", help="batch-query throughput of a built index")
    bench.add_argument("index", help="index directory (single-engine or sharded)")
    bench.add_argument("--queries", type=int, default=200, help="batch size (sampled from the data)")
    bench.add_argument("-k", type=int, default=10, help="kNN depth (0 disables the kNN pass)")
    bench.add_argument("--threshold", type=float, default=0.7, help="range threshold (negative disables)")
    bench.add_argument("--shards", type=int, default=1, help="re-shard a single-engine index")
    bench.add_argument("--repeat", type=int, default=1, help="timing repetitions (best is reported)")
    bench.add_argument("--seed", type=int, default=0, help="query sampling seed")
    bench.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar", "both"],
        help="verification path; 'both' times each and reports the speedup",
    )
    _add_mode_flag(bench)
    _add_parallel_flag(bench)

    serve_cmd = commands.add_parser(
        "serve", help="serve an index over HTTP with micro-batched queries"
    )
    serve_cmd.add_argument("index", help="index directory (single-engine or sharded)")
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8722, help="bind port (0 picks an ephemeral one)"
    )
    serve_cmd.add_argument(
        "--verify", default=None, choices=["columnar", "scalar"],
        help="override the persisted verification path (results are identical)",
    )
    _add_mode_flag(serve_cmd)
    serve_cmd.add_argument(
        "--parallel", default=None, choices=["serial", "thread", "process"],
        help="sharded execution mode (process needs a sharded index directory)",
    )
    serve_cmd.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="how long the first request of a batch waits for company",
    )
    serve_cmd.add_argument(
        "--max-batch", type=int, default=64,
        help="largest micro-batch dispatched to the engine (1 = no batching)",
    )
    serve_cmd.add_argument(
        "--max-queue", type=int, default=256,
        help="admission bound: in-flight requests beyond it get 503 + Retry-After",
    )
    serve_cmd.add_argument(
        "--concurrency", type=int, default=1,
        help="batches allowed in flight on the executor simultaneously",
    )
    serve_cmd.add_argument(
        "--shard-workers", type=int, default=None,
        help="per-shard fan-out cap for the engine's thread/process pools",
    )
    serve_cmd.add_argument(
        "--default-timeout-ms", type=int, default=None,
        help="deadline for requests without their own timeout_ms (504 on expiry)",
    )
    serve_cmd.add_argument(
        "--max-timeout-ms", type=int, default=None,
        help="server-side cap on any request's timeout_ms budget",
    )
    serve_cmd.add_argument(
        "--drain-seconds", type=float, default=5.0,
        help="graceful-shutdown budget: SIGTERM stops accepting and finishes "
        "in-flight requests within this many seconds",
    )
    serve_cmd.add_argument(
        "--retry-attempts", type=int, default=None,
        help="bounded retries per process-mode shard task (default 3)",
    )
    serve_cmd.add_argument(
        "--breaker-threshold", type=int, default=None,
        help="consecutive shard failures that open its circuit breaker (default 5)",
    )
    serve_cmd.add_argument(
        "--breaker-reset-seconds", type=float, default=None,
        help="seconds an open breaker waits before its half-open probe (default 30)",
    )

    compact = commands.add_parser(
        "compact",
        help="fold the delta log into a fresh base generation (crash-safe)",
    )
    compact.add_argument("index", help="index directory (single-engine or sharded)")
    compact.add_argument(
        "--workers", type=int, default=None, help="shard build threads (sharded saves)"
    )

    rebalance = commands.add_parser(
        "rebalance",
        help="re-shard a saved index from its columnar file (no re-partitioning)",
    )
    rebalance.add_argument("index", help="index directory (single-engine or sharded)")
    rebalance.add_argument("--shards", type=int, required=True, help="target shard count")
    rebalance.add_argument(
        "--workers", type=int, default=None, help="shard build threads"
    )

    stats = commands.add_parser("stats", help="Table 2-style statistics of a dataset file")
    stats.add_argument("data", help="dataset file")

    validate = commands.add_parser("validate", help="check index integrity (either kind)")
    validate.add_argument("index", help="index directory (single-engine or sharded)")

    lint = commands.add_parser(
        "lint",
        help="AST-based invariant checks over the engine's own source",
        description=(
            "Run the repro static-analysis rules (bit-identity, concurrency, "
            "resilience, hygiene) over Python files; see docs/static-analysis.md."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files/directories to check (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format (json is the stable machine interface)",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="only run these comma-separated codes/prefixes (e.g. RL3,RL101)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="skip these comma-separated codes/prefixes (applied after --select)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (code, scope, summary) and exit",
    )
    return parser


def _cmd_build(args) -> int:
    dataset = Dataset.load(args.data)
    if not len(dataset):
        print("error: dataset is empty", file=sys.stderr)
        return 1
    num_groups = args.groups if args.groups > 0 else max(int(0.005 * len(dataset)), 2)
    from repro.learn.cascade import L2PPartitioner

    partitioner = L2PPartitioner(
        measure=args.measure,
        pairs_per_model=args.pairs,
        epochs=args.epochs,
        workers=args.workers,
        seed=args.seed,
    )
    start = time.perf_counter()
    engine = LES3.build(
        dataset,
        num_groups=num_groups,
        partitioner=partitioner,
        measure=args.measure,
        backend=args.backend,
    )
    elapsed = time.perf_counter() - start
    save_engine(engine, args.index)
    print(
        f"built {engine.tgm.num_groups} groups over {len(dataset)} sets "
        f"in {elapsed:.2f}s; index at {args.index} ({engine.index_bytes()} bytes)"
    )
    return 0


def _close_engine(engine) -> None:
    """Shut down a sharded engine's worker pools (no-op for a single LES3)."""
    if isinstance(engine, ShardedLES3):
        engine.close()


def _print_matches(engine, matches) -> None:
    for record_index, similarity in matches:
        tokens = " ".join(str(t) for t in engine.tokens_of(record_index))
        print(f"{similarity:.4f}\t#{record_index}\t{tokens}")


def _print_degraded(result) -> None:
    """Warn (stderr) when a partial-mode answer is missing shards."""
    failed = result.stats.extra.get("failed_shards")
    if failed:
        shards = ", ".join(str(shard) for shard in failed)
        print(
            f"# WARNING: degraded answer — shard(s) {shards} failed and were skipped",
            file=sys.stderr,
        )


def _load_query_engine(args):
    """Load either index kind, honouring ``--shards``/``--parallel``/``--mode``.

    One :func:`repro.load` call auto-detects the directory kind (the
    per-command sniffing this file used to repeat lives there now).
    Single-engine directories are optionally re-sharded in memory
    (``--shards S``); sharded directories load as-is (they already fix
    their shard count).  ``--parallel process`` requires a sharded
    directory: its workers rehydrate shards from the save.  ``--mode
    mmap`` maps the binary ``dataset.bin`` instead of parsing
    ``dataset.txt``; ``--mode lazy`` additionally builds shard indexes on
    first visit (sharded directories only).
    """
    parallel = getattr(args, "parallel", "serial")
    shards = getattr(args, "shards", 1)
    mode = getattr(args, "mode", "memory")
    engine = load(args.index, mode=mode)
    if isinstance(engine, ShardedLES3):
        if shards != 1:
            raise _CliError(
                "--shards re-shards single-engine indexes; this index is already "
                "sharded (its shard count is fixed by the save)"
            )
        engine.parallel = parallel
    elif shards != 1 or parallel != "serial":
        if parallel == "process":
            raise _CliError(
                "--parallel process rehydrates shard workers from a sharded "
                "save; create one with `repro save <index> <out> --shards S` "
                "and query that directory instead"
            )
        if shards == 1:
            raise _CliError(
                f"--parallel {parallel} needs shards to scatter over; "
                "add --shards S or query a sharded index directory"
            )
        engine = ShardedLES3.from_engine(engine, shards, parallel=parallel)
    # Subcommands without a --verify flag (e.g. `load`) must not override
    # the verify mode the manifest restored; 'both' is a bench/join-local
    # notion resolved by the command itself.
    verify = getattr(args, "verify", None)
    if verify in ("columnar", "scalar"):
        engine.verify = verify
    return engine


def _cmd_save(args) -> int:
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    try:
        # The one remaining explicit kind-sniff: `repro save` must refuse a
        # sharded input *before* paying a full load of it.
        if is_sharded_index(args.index):
            raise _CliError(
                f"{args.index} is already a sharded index; `repro save` re-shards "
                "single-engine indexes (from `repro build`)"
            )
        engine = load(args.index)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    start = time.perf_counter()
    sharded = ShardedLES3.from_engine(engine, args.shards)
    save_sharded(sharded, args.out)
    elapsed = time.perf_counter() - start
    print(
        f"sharded {len(sharded.dataset)} sets into {sharded.num_shards} shard(s) "
        f"(placement {sharded.placement!r}) in {elapsed:.2f}s; index at {args.out}"
    )
    return 0


def _cmd_load(args) -> int:
    try:
        engine = _load_query_engine(args)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if isinstance(engine, ShardedLES3):
        sizes = " ".join(str(size) for size in engine.shard_sizes())
        print(
            f"sharded index: {len(engine.dataset)} sets, {engine.num_shards} shard(s) "
            f"[{sizes}], {engine.num_groups} groups, measure {engine.measure.name!r}, "
            f"placement {engine.placement!r}, verify {engine.verify!r}, "
            f"{len(engine.removed)} tombstone(s), {engine.index_bytes()} index bytes"
        )
    else:
        print(
            f"single-engine index: {len(engine.dataset)} sets, "
            f"{engine.num_groups} groups, measure {engine.measure.name!r}, "
            f"verify {engine.verify!r}, {len(engine.removed)} tombstone(s), "
            f"{engine.index_bytes()} index bytes"
        )
    return 0


def _cmd_knn(args) -> int:
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    try:
        request = QueryRequest.knn(
            args.query.split(), k=args.k,
            timeout_ms=args.timeout_ms, degraded=args.degraded,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        engine = _load_query_engine(args)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        result = execute(engine, request)
        _print_matches(engine, result.matches)
        _print_degraded(result)
        print(
            f"# verified {result.stats.candidates_verified}/{len(engine.dataset)} sets, "
            f"pruned {result.stats.groups_pruned}/{engine.num_groups} groups",
            file=sys.stderr,
        )
        return 0
    except DeadlineExceeded as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        _close_engine(engine)


def _cmd_range(args) -> int:
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    try:
        request = QueryRequest.range(
            args.query.split(), threshold=args.threshold,
            timeout_ms=args.timeout_ms, degraded=args.degraded,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        engine = _load_query_engine(args)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        result = execute(engine, request)
        _print_matches(engine, result.matches)
        _print_degraded(result)
        print(
            f"# {len(result.matches)} matches; verified "
            f"{result.stats.candidates_verified}/{len(engine.dataset)} sets",
            file=sys.stderr,
        )
        return 0
    except DeadlineExceeded as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        _close_engine(engine)


def _cmd_join(args) -> int:
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    if args.limit < 0:
        print("error: --limit must be non-negative", file=sys.stderr)
        return 1
    modes = ["columnar", "scalar"] if args.verify == "both" else [args.verify]
    try:
        requests = {
            mode: QueryRequest.join(
                threshold=args.threshold, verify=mode,
                timeout_ms=args.timeout_ms, degraded=args.degraded,
            )
            for mode in modes
        }
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        query_engine = _load_query_engine(args)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        if "columnar" in modes:
            # The CSR view is a one-time, whole-database cost — keep it out
            # of the timed region so 'both' compares verification only.
            query_engine.dataset.columnar()
        seconds = {}
        result = None
        for mode in modes:
            start = time.perf_counter()
            joined = execute(query_engine, requests[mode])
            seconds[mode] = time.perf_counter() - start
            if result is None:
                result = joined
            elif joined.matches != result.matches:
                print("error: join results differ between verify modes", file=sys.stderr)
                return 2
        for x, y, similarity in result.matches[: args.limit]:
            print(f"{similarity:.4f}\t#{x}\t#{y}")
        if args.limit and len(result.matches) > args.limit:
            print(f"... and {len(result.matches) - args.limit} more pairs")
        _print_degraded(result)
        print(
            f"# {len(result.matches)} pairs; verified {result.stats.candidates_verified} "
            f"candidates, pruned {result.stats.groups_pruned}/"
            f"{result.stats.groups_scored} group pairs",
            file=sys.stderr,
        )
        if len(modes) > 1:
            print(
                f"# columnar speedup {seconds['scalar'] / seconds['columnar']:.2f}x",
                file=sys.stderr,
            )
        return 0
    except DeadlineExceeded as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        _close_engine(query_engine)


def _load_bench_engine(args) -> ShardedLES3:
    """Load the bench target, always as a sharded engine.

    Unlike the query commands, ``repro bench`` times the batch kernels
    through the sharded scatter-gather path even for single-engine saves
    (a 1-shard in-memory wrap), so its report always carries a shard
    count and any ``--parallel`` mode short of ``process`` applies.
    """
    engine = load(args.index, mode=args.mode)
    if isinstance(engine, ShardedLES3):
        if args.shards != 1:
            raise _CliError(
                "--shards re-shards single-engine indexes; this index is already "
                "sharded (its shard count is fixed by the save)"
            )
        engine.parallel = args.parallel
        return engine
    if args.parallel == "process":
        raise _CliError(
            "--parallel process rehydrates shard workers from a sharded "
            "save; create one with `repro save <index> <out> --shards S` "
            "and bench that directory instead"
        )
    return ShardedLES3.from_engine(engine, args.shards, parallel=args.parallel)


def _cmd_bench(args) -> int:
    if args.queries <= 0:
        print("error: --queries must be positive", file=sys.stderr)
        return 1
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    if args.repeat < 1:
        print("error: --repeat must be positive", file=sys.stderr)
        return 1
    if args.threshold > 1.0:
        print("error: threshold must be in [0, 1]", file=sys.stderr)
        return 1
    from repro.workloads import sample_queries

    try:
        sharded = _load_bench_engine(args)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        queries = sample_queries(sharded.dataset, args.queries, seed=args.seed)
        print(
            f"# {len(sharded.dataset)} sets, {sharded.num_groups} groups, "
            f"{sharded.num_shards} shard(s), {len(queries)} queries, "
            f"parallel={args.parallel}"
        )
        modes = ["columnar", "scalar"] if args.verify == "both" else [args.verify]
        if "columnar" in modes:
            # Build the CSR view outside the timed region: it is a one-time,
            # whole-database cost, not a per-batch one.
            sharded.dataset.columnar()
        passes = []
        if args.k > 0:
            passes.append(
                ("knn", lambda mode: sharded.batch_knn_record(queries, args.k, verify=mode))
            )
        if args.threshold >= 0:
            passes.append(
                (
                    "range",
                    lambda mode: sharded.batch_range_record(
                        queries, args.threshold, verify=mode
                    ),
                )
            )
        for name, run in passes:
            seconds = {}
            reference = None
            for mode in modes:
                best = float("inf")
                for _ in range(args.repeat):
                    start = time.perf_counter()
                    results = run(mode)
                    best = min(best, time.perf_counter() - start)
                seconds[mode] = best
                matches = sum(len(result) for result in results)
                if reference is None:
                    reference = [result.matches for result in results]
                elif reference != [result.matches for result in results]:
                    print(f"error: {name} results differ between verify modes", file=sys.stderr)
                    return 2
                label = f"{name}[{mode}]" if len(modes) > 1 else name
                print(
                    f"{label}: {len(queries) / best:,.0f} queries/s "
                    f"({best * 1000:.1f} ms/batch, {matches} matches)"
                )
            if len(modes) > 1:
                print(f"{name}: columnar speedup {seconds['scalar'] / seconds['columnar']:.2f}x")
        return 0
    finally:
        _close_engine(sharded)


def _cmd_stats(args) -> int:
    stats = Dataset.load(args.data).stats()
    print(f"sets:      {stats.num_sets}")
    print(f"max size:  {stats.max_set_size}")
    print(f"min size:  {stats.min_set_size}")
    print(f"avg size:  {stats.avg_set_size:.1f}")
    print(f"universe:  {stats.universe_size}")
    return 0


def _check_dataset_bin(index_dir: str) -> None:
    """Full-integrity pass over ``dataset.bin``, when the save carries one.

    Loading deliberately skips the binary payload digests (an mmap load
    must not read every page); ``repro validate`` is where they are all
    checked — the manifest's whole-file digest first, then every
    per-segment digest inside the header.
    """
    from pathlib import Path

    from repro.core.persistence import DATASET_BIN, file_digest, read_index_json

    manifest = read_index_json(Path(index_dir) / "manifest.json", "index manifest")
    recorded = manifest.get("dataset_bin_digest") if isinstance(manifest, dict) else None
    path = Path(index_dir) / DATASET_BIN
    if not path.is_file():
        if recorded is not None:
            raise PersistenceError(
                f"manifest records a {DATASET_BIN} digest but the file is missing"
            )
        return  # pre-v3 save: no binary dataset to check
    if recorded is not None and file_digest(path) != recorded:
        raise PersistenceError(
            f"{DATASET_BIN} digest mismatch against the manifest — corrupt or "
            "mixed-save index directory"
        )
    from repro.storage.columnar_file import ColumnarFileReader

    ColumnarFileReader(path, mode="mmap").verify()


def _cmd_validate(args) -> int:
    try:
        engine = load(args.index)
        _check_dataset_bin(args.index)
    except (ValueError, FileNotFoundError) as error:
        print(f"index CORRUPT: {error}")
        return 2
    if isinstance(engine, ShardedLES3):
        # Global coverage (each record in exactly one shard, tombstones
        # excepted) was already enforced by the load; per shard, check the
        # TGM invariants with every record outside the shard treated as
        # intentionally absent.
        all_records = set(range(len(engine.dataset)))
        ok = True
        for shard_id, tgm in enumerate(engine.tgms):
            assigned = {
                record_index
                for members in tgm.group_members
                for record_index in members
            }
            report = validate_tgm(
                engine.dataset, tgm, removed=all_records - assigned
            )
            print(f"shard {shard_id:04d}: {report.summary()}")
            ok = ok and report.ok
        print("index OK" if ok else "index CORRUPT")
        return 0 if ok else 2
    report = validate_tgm(engine.dataset, engine.tgm, removed=engine.removed)
    print(report.summary())
    return 0 if report.ok else 2


def _cmd_compact(args) -> int:
    from repro.maintenance import compact_index

    try:
        stats = compact_index(args.index, workers=args.workers)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    kind = f"sharded ({stats['num_shards']} shard(s))" if stats["sharded"] else "single-engine"
    print(
        f"compacted {kind} index at {args.index}: folded {stats['ops_folded']} "
        f"delta op(s) into a new generation of {stats['num_records']} sets, "
        f"{stats['num_tombstones']} tombstone(s)"
    )
    return 0


def _cmd_rebalance(args) -> int:
    from repro.maintenance import rebalance_index

    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    try:
        stats = rebalance_index(args.index, args.shards, workers=args.workers)
    except (_CliError, *_LOAD_ERRORS) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    sizes = " ".join(str(size) for size in stats["shard_sizes"])
    print(
        f"rebalanced index at {args.index}: {stats['num_records']} sets, "
        f"{stats['num_groups']} groups over {stats['num_shards']} shard(s) "
        f"[{sizes}], folded {stats['ops_folded']} delta op(s)"
    )
    return 0


def _cmd_serve(args) -> int:
    if args.port < 0 or args.port > 65535:
        print("error: --port must be in [0, 65535]", file=sys.stderr)
        return 1
    for flag, value in (
        ("--max-batch", args.max_batch),
        ("--max-queue", args.max_queue),
        ("--concurrency", args.concurrency),
    ):
        if value < 1:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 1
    if args.batch_window_ms < 0:
        print("error: --batch-window-ms must be >= 0", file=sys.stderr)
        return 1
    if args.drain_seconds < 0:
        print("error: --drain-seconds must be >= 0", file=sys.stderr)
        return 1
    for flag, value in (
        ("--default-timeout-ms", args.default_timeout_ms),
        ("--max-timeout-ms", args.max_timeout_ms),
        ("--retry-attempts", args.retry_attempts),
        ("--breaker-threshold", args.breaker_threshold),
        ("--breaker-reset-seconds", args.breaker_reset_seconds),
    ):
        if value is not None and value <= 0:
            print(f"error: {flag} must be positive", file=sys.stderr)
            return 1
    from repro.serve import serve

    try:
        serve(
            args.index,
            announce=print,
            host=args.host,
            port=args.port,
            mode=args.mode,
            parallel=args.parallel,
            verify=args.verify,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            concurrency=args.concurrency,
            shard_workers=args.shard_workers,
            default_timeout_ms=args.default_timeout_ms,
            max_timeout_ms=args.max_timeout_ms,
            drain_seconds=args.drain_seconds,
            retry_attempts=args.retry_attempts,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_seconds=args.breaker_reset_seconds,
        )
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _split_codes(expressions: list[str] | None) -> list[str] | None:
    if expressions is None:
        return None
    return [code.strip() for entry in expressions for code in entry.split(",") if code.strip()]


def _cmd_lint(args) -> int:
    from repro.analysis import RuleError, all_rules, analyze_paths, render_json, render_text

    if args.list_rules:
        for registered in all_rules():
            scope = ", ".join(registered.scope) if registered.scope else "all files"
            print(f"{registered.code}  {registered.name}  [{scope}]")
            print(f"       {registered.summary}")
            print(f"       protects: {registered.invariant}")
        return 0
    try:
        diagnostics, files_checked = analyze_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except RuleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    renderer = render_json if args.output_format == "json" else render_text
    print(renderer(diagnostics, files_checked))
    return 1 if diagnostics else 0


_COMMANDS = {
    "build": _cmd_build,
    "save": _cmd_save,
    "load": _cmd_load,
    "knn": _cmd_knn,
    "range": _cmd_range,
    "join": _cmd_join,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "compact": _cmd_compact,
    "rebalance": _cmd_rebalance,
    "stats": _cmd_stats,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
