"""Command-line interface: build, query, validate, and inspect indexes.

Usage::

    python -m repro build data.txt index_dir --groups 64
    python -m repro knn index_dir --query "a b c" -k 10 --shards 4
    python -m repro range index_dir --query "a b c" --threshold 0.7
    python -m repro join index_dir --threshold 0.8 --verify both
    python -m repro bench index_dir --queries 200 -k 10 --shards 4 --verify both
    python -m repro stats data.txt
    python -m repro validate index_dir

``data.txt`` is the standard one-set-per-line, whitespace-separated token
format used by the public set-similarity benchmarks.  ``--shards S``
re-shards a loaded index across ``S`` scatter-gather shards (exact: the
results are identical for every shard count).  ``--verify`` picks the
candidate-verification path (``columnar`` kernel by default, ``scalar``
as the escape hatch; ``bench --verify both`` times each and reports the
speedup — results are identical either way).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.persistence import load_engine, save_engine
from repro.core.validation import validate_tgm
from repro.distributed import ShardedLES3

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LES3: learning-based exact set similarity search",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="partition a dataset and persist the index")
    build.add_argument("data", help="dataset file (one set per line)")
    build.add_argument("index", help="output index directory")
    build.add_argument("--groups", type=int, default=0, help="group count (default 0.5%% of |D|)")
    build.add_argument("--measure", default="jaccard", help="similarity measure")
    build.add_argument("--backend", default="dense", choices=["dense", "roaring"])
    build.add_argument("--pairs", type=int, default=40_000, help="training pairs per model")
    build.add_argument("--epochs", type=int, default=3)
    build.add_argument("--workers", type=int, default=1, help="parallel model training threads")
    build.add_argument("--seed", type=int, default=0)

    knn = commands.add_parser("knn", help="k nearest neighbours of a query set")
    knn.add_argument("index", help="index directory")
    knn.add_argument("--query", required=True, help="space-separated query tokens")
    knn.add_argument("-k", type=int, default=10)
    knn.add_argument("--shards", type=int, default=1, help="scatter-gather shard count")
    knn.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar"],
        help="verification path (results are identical)",
    )

    range_cmd = commands.add_parser("range", help="all sets within a similarity threshold")
    range_cmd.add_argument("index", help="index directory")
    range_cmd.add_argument("--query", required=True, help="space-separated query tokens")
    range_cmd.add_argument("--threshold", type=float, required=True)
    range_cmd.add_argument("--shards", type=int, default=1, help="scatter-gather shard count")
    range_cmd.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar"],
        help="verification path (results are identical)",
    )

    join = commands.add_parser("join", help="exact similarity self-join of the indexed data")
    join.add_argument("index", help="index directory")
    join.add_argument("--threshold", type=float, required=True)
    join.add_argument("--shards", type=int, default=1, help="scatter-gather shard count")
    join.add_argument("--limit", type=int, default=20, help="pairs to print (0 = none)")
    join.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar", "both"],
        help="verification path; 'both' times each and reports the speedup",
    )

    bench = commands.add_parser("bench", help="batch-query throughput of a built index")
    bench.add_argument("index", help="index directory")
    bench.add_argument("--queries", type=int, default=200, help="batch size (sampled from the data)")
    bench.add_argument("-k", type=int, default=10, help="kNN depth (0 disables the kNN pass)")
    bench.add_argument("--threshold", type=float, default=0.7, help="range threshold (negative disables)")
    bench.add_argument("--shards", type=int, default=1, help="scatter-gather shard count")
    bench.add_argument("--repeat", type=int, default=1, help="timing repetitions (best is reported)")
    bench.add_argument("--seed", type=int, default=0, help="query sampling seed")
    bench.add_argument(
        "--verify", default="columnar", choices=["columnar", "scalar", "both"],
        help="verification path; 'both' times each and reports the speedup",
    )

    stats = commands.add_parser("stats", help="Table 2-style statistics of a dataset file")
    stats.add_argument("data", help="dataset file")

    validate = commands.add_parser("validate", help="check index integrity")
    validate.add_argument("index", help="index directory")
    return parser


def _cmd_build(args) -> int:
    dataset = Dataset.load(args.data)
    if not len(dataset):
        print("error: dataset is empty", file=sys.stderr)
        return 1
    num_groups = args.groups if args.groups > 0 else max(int(0.005 * len(dataset)), 2)
    from repro.learn.cascade import L2PPartitioner

    partitioner = L2PPartitioner(
        measure=args.measure,
        pairs_per_model=args.pairs,
        epochs=args.epochs,
        workers=args.workers,
        seed=args.seed,
    )
    start = time.perf_counter()
    engine = LES3.build(
        dataset,
        num_groups=num_groups,
        partitioner=partitioner,
        measure=args.measure,
        backend=args.backend,
    )
    elapsed = time.perf_counter() - start
    save_engine(engine, args.index)
    print(
        f"built {engine.tgm.num_groups} groups over {len(dataset)} sets "
        f"in {elapsed:.2f}s; index at {args.index} ({engine.index_bytes()} bytes)"
    )
    return 0


def _print_matches(engine, matches) -> None:
    for record_index, similarity in matches:
        tokens = " ".join(str(t) for t in engine.tokens_of(record_index))
        print(f"{similarity:.4f}\t#{record_index}\t{tokens}")


def _load_query_engine(args):
    """Load the persisted index, re-sharded when ``--shards`` asks for it."""
    engine = load_engine(args.index)
    engine.verify = getattr(args, "verify", "columnar")
    if args.shards == 1:
        return engine
    return ShardedLES3.from_engine(engine, args.shards)


def _cmd_knn(args) -> int:
    if not args.query.split():
        print("error: query must contain at least one token", file=sys.stderr)
        return 1
    if args.k <= 0:
        print("error: k must be positive", file=sys.stderr)
        return 1
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    engine = _load_query_engine(args)
    result = engine.knn(args.query.split(), k=args.k)
    _print_matches(engine, result.matches)
    print(
        f"# verified {result.stats.candidates_verified}/{len(engine.dataset)} sets, "
        f"pruned {result.stats.groups_pruned}/{engine.num_groups} groups",
        file=sys.stderr,
    )
    return 0


def _cmd_range(args) -> int:
    if not args.query.split():
        print("error: query must contain at least one token", file=sys.stderr)
        return 1
    if not 0.0 <= args.threshold <= 1.0:
        print("error: threshold must be in [0, 1]", file=sys.stderr)
        return 1
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    engine = _load_query_engine(args)
    result = engine.range(args.query.split(), threshold=args.threshold)
    _print_matches(engine, result.matches)
    print(
        f"# {len(result)} matches; verified "
        f"{result.stats.candidates_verified}/{len(engine.dataset)} sets",
        file=sys.stderr,
    )
    return 0


def _cmd_join(args) -> int:
    if not 0.0 < args.threshold <= 1.0:
        print("error: threshold must be in (0, 1]", file=sys.stderr)
        return 1
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    if args.limit < 0:
        print("error: --limit must be non-negative", file=sys.stderr)
        return 1
    engine = load_engine(args.index)
    query_engine = engine if args.shards == 1 else ShardedLES3.from_engine(engine, args.shards)
    modes = ["columnar", "scalar"] if args.verify == "both" else [args.verify]
    if "columnar" in modes:
        # The CSR view is a one-time, whole-database cost — keep it out
        # of the timed region so 'both' compares verification only.
        engine.dataset.columnar()
    seconds = {}
    result = None
    for mode in modes:
        start = time.perf_counter()
        joined = query_engine.join(args.threshold, verify=mode)
        seconds[mode] = time.perf_counter() - start
        if result is None:
            result = joined
        elif joined.pairs != result.pairs:
            print("error: join results differ between verify modes", file=sys.stderr)
            return 2
    for x, y, similarity in result.pairs[: args.limit]:
        print(f"{similarity:.4f}\t#{x}\t#{y}")
    if args.limit and len(result.pairs) > args.limit:
        print(f"... and {len(result.pairs) - args.limit} more pairs")
    print(
        f"# {len(result)} pairs; verified {result.stats.candidates_verified} candidates, "
        f"pruned {result.stats.groups_pruned}/{result.stats.groups_scored} group pairs",
        file=sys.stderr,
    )
    if len(modes) > 1:
        print(
            f"# columnar speedup {seconds['scalar'] / seconds['columnar']:.2f}x",
            file=sys.stderr,
        )
    return 0


def _cmd_bench(args) -> int:
    if args.queries <= 0:
        print("error: --queries must be positive", file=sys.stderr)
        return 1
    if args.shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 1
    if args.repeat < 1:
        print("error: --repeat must be positive", file=sys.stderr)
        return 1
    if args.threshold > 1.0:
        print("error: threshold must be in [0, 1]", file=sys.stderr)
        return 1
    from repro.workloads import sample_queries

    engine = load_engine(args.index)
    sharded = ShardedLES3.from_engine(engine, args.shards)
    queries = sample_queries(engine.dataset, args.queries, seed=args.seed)
    print(
        f"# {len(engine.dataset)} sets, {engine.num_groups} groups, "
        f"{sharded.num_shards} shard(s), {len(queries)} queries"
    )
    modes = ["columnar", "scalar"] if args.verify == "both" else [args.verify]
    if "columnar" in modes:
        # Build the CSR view outside the timed region: it is a one-time,
        # whole-database cost, not a per-batch one.
        engine.dataset.columnar()
    passes = []
    if args.k > 0:
        passes.append(
            ("knn", lambda mode: sharded.batch_knn_record(queries, args.k, verify=mode))
        )
    if args.threshold >= 0:
        passes.append(
            (
                "range",
                lambda mode: sharded.batch_range_record(
                    queries, args.threshold, verify=mode
                ),
            )
        )
    for name, run in passes:
        seconds = {}
        reference = None
        for mode in modes:
            best = float("inf")
            for _ in range(args.repeat):
                start = time.perf_counter()
                results = run(mode)
                best = min(best, time.perf_counter() - start)
            seconds[mode] = best
            matches = sum(len(result) for result in results)
            if reference is None:
                reference = [result.matches for result in results]
            elif reference != [result.matches for result in results]:
                print(f"error: {name} results differ between verify modes", file=sys.stderr)
                return 2
            label = f"{name}[{mode}]" if len(modes) > 1 else name
            print(
                f"{label}: {len(queries) / best:,.0f} queries/s "
                f"({best * 1000:.1f} ms/batch, {matches} matches)"
            )
        if len(modes) > 1:
            print(f"{name}: columnar speedup {seconds['scalar'] / seconds['columnar']:.2f}x")
    return 0


def _cmd_stats(args) -> int:
    stats = Dataset.load(args.data).stats()
    print(f"sets:      {stats.num_sets}")
    print(f"max size:  {stats.max_set_size}")
    print(f"min size:  {stats.min_set_size}")
    print(f"avg size:  {stats.avg_set_size:.1f}")
    print(f"universe:  {stats.universe_size}")
    return 0


def _cmd_validate(args) -> int:
    try:
        engine = load_engine(args.index)
    except (ValueError, FileNotFoundError) as error:
        print(f"index CORRUPT: {error}")
        return 2
    report = validate_tgm(engine.dataset, engine.tgm, removed=engine.removed)
    print(report.summary())
    return 0 if report.ok else 2


_COMMANDS = {
    "build": _cmd_build,
    "knn": _cmd_knn,
    "range": _cmd_range,
    "join": _cmd_join,
    "bench": _cmd_bench,
    "stats": _cmd_stats,
    "validate": _cmd_validate,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
