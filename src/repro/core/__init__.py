"""Core of the LES3 reproduction: sets, similarity, TGM, search, updates."""

from repro.core.batch import batch_covered_counts, batch_knn_search, batch_range_search
from repro.core.columnar import ColumnarView, GroupVerifier, make_verifier
from repro.core.dataset import Dataset, DatasetStats
from repro.core.engine import LES3
from repro.core.htgm import HierarchicalTGM
from repro.core.join import (
    JoinResult,
    best_feasible_pair_bound,
    group_join_profiles,
    similarity_join_between,
    similarity_self_join,
)
from repro.core.metrics import (
    QueryStats,
    knn_pruning_efficiency,
    range_pruning_efficiency,
)
from repro.core.persistence import PersistenceError, load_engine, save_engine
from repro.core.search import SearchResult, knn_search, range_search
from repro.core.sets import SetRecord, distinct_overlap, overlap
from repro.core.similarity import (
    MEASURES,
    ContainmentSimilarity,
    CosineSimilarity,
    DiceSimilarity,
    JaccardSimilarity,
    OverlapCoefficient,
    Similarity,
    get_measure,
)
from repro.core.tgm import TokenGroupMatrix
from repro.core.tokens import TokenUniverse
from repro.core.updates import choose_group, insert_set
from repro.core.validation import ValidationReport, validate_tgm

__all__ = [
    "batch_covered_counts",
    "batch_knn_search",
    "batch_range_search",
    "ColumnarView",
    "GroupVerifier",
    "make_verifier",
    "Dataset",
    "DatasetStats",
    "LES3",
    "HierarchicalTGM",
    "JoinResult",
    "best_feasible_pair_bound",
    "group_join_profiles",
    "similarity_join_between",
    "similarity_self_join",
    "QueryStats",
    "knn_pruning_efficiency",
    "range_pruning_efficiency",
    "PersistenceError",
    "load_engine",
    "save_engine",
    "SearchResult",
    "knn_search",
    "range_search",
    "SetRecord",
    "distinct_overlap",
    "overlap",
    "MEASURES",
    "ContainmentSimilarity",
    "CosineSimilarity",
    "DiceSimilarity",
    "JaccardSimilarity",
    "OverlapCoefficient",
    "Similarity",
    "get_measure",
    "TokenGroupMatrix",
    "TokenUniverse",
    "choose_group",
    "insert_set",
    "ValidationReport",
    "validate_tgm",
]
