"""Batched query processing.

Applications such as data cleaning (dedupe every record) and the PAR-G
kNN-graph construction issue thousands of queries at once.  Scoring all
groups for a *batch* of queries is one sparse-matrix product instead of a
Python loop, which shifts the per-query TGM scan from milliseconds to
microseconds on the dense backend.

Only the group-scoring stage is batched; verification remains per-query
(it already touches only surviving groups).  The sharded engine reuses
:func:`query_weight_matrix` to build the batch query matrix once and
multiply it against every shard's (smaller) TGM.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.columnar import make_verifier
from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.search import (
    SearchResult,
    finalize_result,
    knn_heap_matches,
    knn_visit_groups,
    pad_zero_matches,
    prepare_query,
    range_collect_groups,
)
from repro.core.sets import SetRecord
from repro.core.tgm import TokenGroupMatrix

__all__ = [
    "query_weight_matrix",
    "batch_covered_counts",
    "batch_range_search",
    "batch_knn_search",
]


def query_weight_matrix(
    queries: Sequence[SetRecord], universe_size: int
) -> np.ndarray:
    """Multiplicity-weighted query-token matrix, shape ``(len(queries), U)``.

    Row ``i`` holds ``count_{Q_i}(t)`` for every known token ``t``; unseen
    tokens (ids at or beyond ``universe_size``) are dropped, matching
    :func:`repro.core.search.prepare_query`.  Multiplying by a TGM (or a
    slice of one) yields the covered counts for the whole batch at once.
    """
    weighted = np.zeros((len(queries), universe_size), dtype=np.int64)
    for i, query in enumerate(queries):
        known, weights, _ = prepare_query(query, universe_size)
        weighted[i, known] = weights
    return weighted


def batch_covered_counts(
    tgm: TokenGroupMatrix, queries: Sequence[SetRecord]
) -> np.ndarray:
    """``|Q_i ∩ GS_g|`` for every query i and group g, shape (len(queries), n).

    Dense backend: one boolean matrix product over the *union* of the
    batch's known tokens — the product is ``(B × |union|) @ (|union| × n)``,
    far smaller than the full universe width, and only the touched TGM
    columns are ever materialized (a full-matrix conversion would copy
    ``n × U`` floats per batch, dwarfing the BLAS win).  Roaring backend:
    falls back to per-query scoring (still correct, not faster).
    """
    if tgm.backend != "dense":
        rows = []
        for query in queries:
            known, weights, _ = prepare_query(query, tgm.universe_size)
            rows.append(tgm.covered_counts(known, weights))
        return np.stack(rows) if rows else np.zeros((0, tgm.num_groups), dtype=np.int64)
    if not queries:
        return np.zeros((0, tgm.num_groups), dtype=np.int64)
    per_query = [prepare_query(query, tgm.universe_size) for query in queries]
    union = sorted({token for known, _, _ in per_query for token in known})
    if not union:
        return np.zeros((len(queries), tgm.num_groups), dtype=np.int64)
    column_of = {token: column for column, token in enumerate(union)}
    # The product runs in float64 so it goes through BLAS (an int64 matmul
    # falls back to numpy's slow generic loop); every partial sum is an
    # integer far below 2^53, so the rounded counts are exact.
    weighted = np.zeros((len(queries), len(union)), dtype=np.float64)
    for i, (known, weights, _) in enumerate(per_query):
        for token, weight in zip(known, weights):
            weighted[i, column_of[token]] = weight
    counts = weighted @ tgm._matrix[:, union].T.astype(np.float64)
    return np.rint(counts).astype(np.int64)


def batch_range_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    queries: Sequence[SetRecord],
    threshold: float,
    verify: str = "columnar",
) -> list[SearchResult]:
    """Range search for every query; one TGM scan for the whole batch.

    Verification of the surviving groups runs through the columnar kernel
    (``verify="columnar"``) or the scalar walk (``"scalar"``) with
    bit-identical results.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    counts = batch_covered_counts(tgm, queries)
    measure = tgm.measure
    results = []
    for i, query in enumerate(queries):
        stats = QueryStats()
        stats.groups_scored = tgm.num_groups
        bounds = measure.bounds_from_counts(counts[i], len(query))
        matches: list[tuple[int, float]] = []
        verifier = make_verifier(dataset, query, measure, verify)
        range_collect_groups(
            dataset, tgm, query, threshold, bounds, matches, stats, measure, verifier
        )
        results.append(finalize_result(matches, stats))
    return results


def batch_knn_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    queries: Sequence[SetRecord],
    k: int,
    verify: str = "columnar",
) -> list[SearchResult]:
    """kNN for every query; one TGM scan for the whole batch.

    Group scoring is shared — one :func:`batch_covered_counts` product
    covers every query — while the best-first descent and verification
    stay per-query (their order is query-specific).  Matches are
    bit-identical to looping :func:`knn_search`.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    counts = batch_covered_counts(tgm, queries)
    measure = tgm.measure
    results = []
    for i, query in enumerate(queries):
        stats = QueryStats()
        stats.groups_scored = tgm.num_groups
        bounds = measure.bounds_from_counts(counts[i], len(query))
        heap: list[tuple[float, int]] = []
        zero_candidates: list[list[int]] = []
        verifier = make_verifier(dataset, query, measure, verify)
        knn_visit_groups(
            dataset, tgm, query, k, bounds, heap, stats, measure,
            zero_candidates, verifier,
        )
        pad_zero_matches(heap, k, zero_candidates)
        results.append(finalize_result(knn_heap_matches(heap), stats))
    return results
