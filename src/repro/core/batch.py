"""Batched query processing.

Applications such as data cleaning (dedupe every record) and the PAR-G
kNN-graph construction issue thousands of queries at once.  Scoring all
groups for a *batch* of queries is one sparse-matrix product instead of a
Python loop, which shifts the per-query TGM scan from milliseconds to
microseconds on the dense backend.

Only the group-scoring stage is batched; verification remains per-query
(it already touches only surviving groups).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.search import SearchResult, knn_search, prepare_query
from repro.core.sets import SetRecord
from repro.core.tgm import TokenGroupMatrix

__all__ = ["batch_covered_counts", "batch_range_search", "batch_knn_search"]


def batch_covered_counts(
    tgm: TokenGroupMatrix, queries: Sequence[SetRecord]
) -> np.ndarray:
    """``|Q_i ∩ GS_g|`` for every query i and group g, shape (len(queries), n).

    Dense backend: one boolean matrix product.  Roaring backend: falls back
    to per-query scoring (still correct, not faster).
    """
    if tgm.backend != "dense":
        rows = []
        for query in queries:
            known, weights, _ = prepare_query(query, tgm.universe_size)
            rows.append(tgm.covered_counts(known, weights))
        return np.stack(rows) if rows else np.zeros((0, tgm.num_groups), dtype=np.int64)
    if not queries:
        return np.zeros((0, tgm.num_groups), dtype=np.int64)
    weighted = np.zeros((len(queries), tgm.universe_size), dtype=np.int64)
    for i, query in enumerate(queries):
        known, weights, _ = prepare_query(query, tgm.universe_size)
        weighted[i, known] = weights
    # (queries × tokens) @ (tokens × groups) — multiplicity-weighted coverage.
    return weighted @ tgm._matrix.T.astype(np.int64)


def batch_range_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    queries: Sequence[SetRecord],
    threshold: float,
) -> list[SearchResult]:
    """Range search for every query; one TGM scan for the whole batch."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    counts = batch_covered_counts(tgm, queries)
    measure = tgm.measure
    results = []
    for i, query in enumerate(queries):
        stats = QueryStats()
        stats.groups_scored = tgm.num_groups
        bounds = np.array(
            [measure.group_upper_bound(int(c), len(query)) for c in counts[i]]
        )
        matches: list[tuple[int, float]] = []
        surviving = np.flatnonzero(bounds >= threshold)
        for group_id in surviving:
            for record_index in tgm.group_members[int(group_id)]:
                similarity = measure(query, dataset.records[record_index])
                stats.candidates_verified += 1
                stats.similarity_computations += 1
                if similarity >= threshold:
                    matches.append((record_index, similarity))
        stats.groups_pruned = tgm.num_groups - len(surviving)
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        results.append(SearchResult(matches, stats))
    return results


def batch_knn_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    queries: Sequence[SetRecord],
    k: int,
) -> list[SearchResult]:
    """kNN for every query.

    The group scan is shared conceptually but kNN's verification order is
    query-specific, so this simply loops :func:`knn_search`; provided for
    API symmetry and used by the join and the examples.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return [knn_search(dataset, tgm, query, k) for query in queries]
