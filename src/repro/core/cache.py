"""A tiny thread-safe LRU used by every lazy/out-of-core cache.

Three places keep "build on first use, keep the last N resident" state:
lazily built shard TGMs (:class:`repro.distributed.sharded.LazyShardTGMs`),
lazily materialized records of a mapped dataset
(:class:`repro.storage.columnar_file.LazyRecords`), and the process-pool
workers' per-process shard caches
(:mod:`repro.distributed.persistence`).  They share this one
implementation so the locking discipline lives in a single place — the
thread-pool execution mode hands the same engine (and therefore the same
caches) to concurrent tasks.

Values must be safe to build redundantly: a build runs *outside* the
lock (it may take seconds for a big shard), so two threads racing on the
same key may both build, and the first to publish wins.  Every current
use builds deterministic, immutable-after-construction values, for which
that is only duplicated work, never inconsistency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

__all__ = ["LRUCache"]

V = TypeVar("V")


class LRUCache:
    """Get-or-build cache with bounded residency, safe under threads."""

    __slots__ = ("_lock", "_data", "capacity")

    def __init__(self, capacity: int) -> None:
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.capacity = max(1, int(capacity))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get_or_build(self, key: Hashable, build: Callable[[], V]) -> V:
        """The cached value for ``key``, building (unlocked) on a miss.

        On a hit the entry is marked most recently used.  On a miss the
        ``build`` thunk runs outside the lock; if another thread
        published the key meanwhile, its value wins and this build's
        result is discarded.  Publishing evicts least-recently-used
        entries beyond :attr:`capacity`.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                return self._data[key]
        value = build()
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                return self._data[key]
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
        return value

    def resident(self) -> list:
        """The currently resident values, least recently used first."""
        with self._lock:
            return list(self._data.values())

    def drop_matching(self, predicate: Callable[[Hashable], bool]) -> None:
        """Remove every entry whose key satisfies ``predicate``."""
        with self._lock:
            for key in [k for k in self._data if predicate(k)]:
                del self._data[key]
