"""Columnar (CSR) view of a dataset and the vectorized verification kernel.

Candidate verification — computing the exact similarity of the query
against every member of a surviving group — dominates query cost once TGM
pruning has done its job.  The scalar path walks a Python frozenset per
record; this module replaces that walk with numpy over a cache-friendly
columnar layout:

* :class:`ColumnarView` stores the whole database in CSR form: one flat
  sorted ``int64`` array of distinct token ids, a parallel multiplicity
  array (``1`` everywhere for plain sets), per-record offsets into the
  flat arrays, and the precomputed multiset size ``|S|`` of every record.
  The view is built once per :class:`~repro.core.dataset.Dataset` (cached
  on the dataset) and kept incrementally fresh: inserts append to the
  tail with amortized-O(1) capacity doubling, and logical deletes need no
  maintenance at all because group membership, not the layout, defines
  liveness.

* :class:`GroupVerifier` scores *all members of a group in one shot*:
  the query's token multiplicities are scattered into a universe-sized
  lookup array once per query; verifying a group gathers the members'
  concatenated CSR slices, reads each token's query-side multiplicity
  from the lookup, takes the elementwise ``min`` (the multiset overlap
  contribution), and reduces per record with ``np.add.reduceat``.  Exact
  similarities for the whole group then come out of one call to the
  measure's vectorized :meth:`~repro.core.similarity.Similarity.from_overlaps`.

The kernel computes the very same integer overlaps and applies the very
same float64 operations as the scalar ``overlap()`` path, so similarities
are bit-identical — the scalar path (``verify="scalar"``) remains as an
escape hatch and as the test oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.dataset import Dataset
    from repro.core.sets import SetRecord
    from repro.core.similarity import Similarity

__all__ = [
    "ColumnarView",
    "GroupVerifier",
    "make_verifier",
    "VERIFY_MODES",
    "DEFAULT_TILE_CELLS",
]

VERIFY_MODES = ("columnar", "scalar")

_MIN_CAPACITY = 1024

# Tiling budget for blockwise pairwise kernels: the largest intermediate
# (a dense per-row count table or a gathered contribution buffer) holds at
# most this many int64 cells (2M cells = 16 MiB), however large the
# record blocks are.
DEFAULT_TILE_CELLS = 1 << 21


def _grow(array: np.ndarray, used: int, extra: int) -> np.ndarray:
    """Return ``array`` with capacity for ``used + extra`` (amortized doubling)."""
    need = used + extra
    if need <= len(array):
        return array
    capacity = max(2 * len(array), need, _MIN_CAPACITY)
    grown = np.empty(capacity, dtype=array.dtype)
    grown[:used] = array[:used]
    return grown


class ColumnarView:
    """CSR layout of a dataset: flat tokens + multiplicities + offsets + sizes.

    Record ``i`` occupies ``tokens[offsets[i]:offsets[i+1]]`` (distinct
    token ids, sorted ascending) with parallel per-token multiplicities in
    ``counts``; ``sizes[i]`` is the full multiset size ``|S_i|`` including
    duplicates.  :meth:`sync` appends any records the dataset gained since
    the last call; it never rewrites existing rows (records are immutable
    and deletes are logical), so a view stays valid across updates.

    Not thread-safe during :meth:`sync`; query paths call it once per
    query before any verification, which is safe under the repo's
    single-threaded query execution.
    """

    __slots__ = ("dataset", "_tokens", "_counts", "_offsets", "_sizes", "_num_records", "_nnz")

    def __init__(self, dataset: "Dataset") -> None:
        self.dataset = dataset
        self._tokens = np.empty(0, dtype=np.int64)
        self._counts = np.empty(0, dtype=np.int64)
        self._offsets = np.zeros(1, dtype=np.int64)
        self._sizes = np.empty(0, dtype=np.int64)
        self._num_records = 0
        self._nnz = 0
        self.sync()

    # -- maintenance -------------------------------------------------------

    def sync(self) -> "ColumnarView":
        """Append any records added to the dataset since the last sync."""
        records = self.dataset.records
        if len(records) == self._num_records:
            return self
        flat_tokens: list[int] = []
        flat_counts: list[int] = []
        lengths: list[int] = []
        sizes: list[int] = []
        for record in records[self._num_records:]:
            if record.is_multiset:
                items = sorted(record.counts().items())
                flat_tokens.extend(token for token, _ in items)
                flat_counts.extend(count for _, count in items)
                lengths.append(len(items))
            else:
                flat_tokens.extend(record.tokens)
                flat_counts.extend([1] * len(record.tokens))
                lengths.append(len(record.tokens))
            sizes.append(len(record))
        extra_nnz = len(flat_tokens)
        extra_rows = len(lengths)
        self._tokens = _grow(self._tokens, self._nnz, extra_nnz)
        self._counts = _grow(self._counts, self._nnz, extra_nnz)
        self._tokens[self._nnz:self._nnz + extra_nnz] = flat_tokens
        self._counts[self._nnz:self._nnz + extra_nnz] = flat_counts
        self._offsets = _grow(self._offsets, self._num_records + 1, extra_rows)
        tail = self._offsets[self._num_records] + np.cumsum(lengths, dtype=np.int64)
        self._offsets[self._num_records + 1:self._num_records + 1 + extra_rows] = tail
        self._sizes = _grow(self._sizes, self._num_records, extra_rows)
        self._sizes[self._num_records:self._num_records + extra_rows] = sizes
        self._num_records = len(records)
        self._nnz += extra_nnz
        return self

    # -- introspection -----------------------------------------------------

    @property
    def num_records(self) -> int:
        """Records materialized so far (equals ``len(dataset)`` after sync)."""
        return self._num_records

    @property
    def nnz(self) -> int:
        """Total distinct-token entries across all materialized records."""
        return self._nnz

    def tokens_of(self, record_index: int) -> np.ndarray:
        """CSR token slice of one record (distinct ids, sorted)."""
        return self._tokens[self._offsets[record_index]:self._offsets[record_index + 1]]

    def counts_of(self, record_index: int) -> np.ndarray:
        """Per-token multiplicities parallel to :meth:`tokens_of`."""
        return self._counts[self._offsets[record_index]:self._offsets[record_index + 1]]

    def size_of(self, record_index: int) -> int:
        """Full multiset size ``|S|`` of one record."""
        return int(self._sizes[record_index])

    def flat_tokens(self) -> np.ndarray:
        """The used portion of the flat token array (all records, CSR order).

        Writers serialize this instead of reaching into ``_tokens``
        directly: a mapped view with an in-RAM tail overrides it to
        present base + tail as one logically contiguous array.
        """
        return self._tokens[: self._nnz]

    def flat_counts(self) -> np.ndarray:
        """The used portion of the flat multiplicity array (see :meth:`flat_tokens`)."""
        return self._counts[: self._nnz]

    def byte_size(self) -> int:
        """Bytes held by the CSR arrays (capacity, not just used cells)."""
        return sum(a.nbytes for a in (self._tokens, self._counts, self._offsets, self._sizes))

    def sizes_of(self, record_indices: Sequence[int]) -> np.ndarray:
        """Full multiset sizes of the listed records, as an int64 vector."""
        return self._sizes[np.asarray(record_indices, dtype=np.int64)]

    def tokens_of_records(self, record_indices: Sequence[int]) -> np.ndarray:
        """Distinct token ids of the listed records, concatenated.

        Tokens shared between records appear once per record (callers
        that need the union apply ``np.unique``).  This is the vectorized
        replacement for walking ``record.distinct`` per record — TGM bit
        construction, shard vocabularies, and join profiles all build
        from it, so a mapped dataset is indexed without materializing a
        single Python record.
        """
        members = np.asarray(record_indices, dtype=np.int64)
        if members.size == 0:
            return np.zeros(0, dtype=np.int64)
        tokens, _, _, _ = self._gather(members)
        return tokens

    # -- verification ------------------------------------------------------

    def verifier(self, query: "SetRecord", measure: "Similarity") -> "GroupVerifier":
        """A per-query kernel scoring whole groups against ``query``."""
        self.sync()
        return GroupVerifier(self, query, measure)

    def _gather(self, members: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated CSR slices of the listed records.

        Returns ``(tokens, counts, boundaries, lengths)``: the records'
        token and multiplicity entries back to back, the exclusive prefix
        sums marking where each record starts, and the per-record entry
        counts.
        """
        starts = self._offsets[members]
        lengths = self._offsets[members + 1] - starts
        total = int(lengths.sum())
        boundaries = np.cumsum(lengths) - lengths  # exclusive prefix sums
        gather = np.arange(total, dtype=np.int64) + np.repeat(starts - boundaries, lengths)
        return self._tokens[gather], self._counts[gather], boundaries, lengths

    def overlaps(self, query_counts: np.ndarray, member_indices: Sequence[int]) -> np.ndarray:
        """Multiset overlap of the scattered query with each listed record.

        ``query_counts`` is the universe-sized lookup array holding
        ``count_Q(t)`` at index ``t`` (zero elsewhere); the result is
        ``Σ_t min(count_Q(t), count_S(t))`` per member, an ``int64``
        vector aligned with ``member_indices``.
        """
        members = np.asarray(member_indices, dtype=np.int64)
        if members.size == 0:
            return np.zeros(0, dtype=np.int64)
        tokens, counts, boundaries, _ = self._gather(members)
        contributions = np.minimum(counts, query_counts[tokens])
        return np.add.reduceat(contributions, boundaries)

    def pairwise_overlaps(
        self,
        row_indices: Sequence[int],
        col_indices: Sequence[int],
        max_cells: int = DEFAULT_TILE_CELLS,
    ) -> np.ndarray:
        """Full pairwise multiset overlap matrix between two record blocks.

        ``result[i, j] = Σ_t min(count_rows[i](t), count_cols[j](t))`` —
        the exact multiset overlap of every row record with every column
        record, as an int64 matrix of shape ``(len(rows), len(cols))``.
        This is the self-join's verification kernel: one call scores a
        whole group pair.

        Memory stays bounded by blockwise tiling: a row block is scattered
        into a dense per-row count table over only the block's *distinct*
        tokens (not the whole universe — a column token the block never
        holds maps to a trailing all-zero sentinel column), and column
        records are gathered in chunks whose contribution buffer also
        stays under ``max_cells`` — so arbitrarily large groups never
        materialize more than ~2·``max_cells`` int64 cells of
        intermediates (plus the result matrix itself), and the cost per
        call scales with the records' entries, not the universe width.
        """
        self.sync()
        rows = np.asarray(row_indices, dtype=np.int64)
        cols = np.asarray(col_indices, dtype=np.int64)
        result = np.zeros((len(rows), len(cols)), dtype=np.int64)
        if rows.size == 0 or cols.size == 0:
            return result
        max_cells = max(int(max_cells), 1)
        row_nnz = self._offsets[rows + 1] - self._offsets[rows]
        col_nnz = self._offsets[cols + 1] - self._offsets[cols]
        col_cum = np.cumsum(col_nnz)
        r0 = 0
        while r0 < len(rows):
            # Grow the row block while its count table — at most
            # (rows × block entries + sentinel) cells — fits the budget.
            r1 = r0 + 1
            nnz = int(row_nnz[r0])
            while r1 < len(rows):
                grown = nnz + int(row_nnz[r1])
                if (r1 + 1 - r0) * (grown + 1) > max_cells:
                    break
                nnz = grown
                r1 += 1
            block = rows[r0:r1]
            tokens, counts, _, lengths = self._gather(block)
            vocab = np.unique(tokens)
            if vocab.size:
                table = np.zeros((len(block), vocab.size + 1), dtype=np.int64)
                positions = np.searchsorted(vocab, tokens)
                table[np.repeat(np.arange(len(block)), lengths), positions] = counts
                # Column chunks sized so the (block × chunk-nnz)
                # contribution buffer respects the cell budget; always at
                # least one record.
                budget = max(max_cells // len(block), 1)
                c0 = 0
                while c0 < len(cols):
                    base = int(col_cum[c0 - 1]) if c0 else 0
                    c1 = max(
                        int(np.searchsorted(col_cum, base + budget, side="right")),
                        c0 + 1,
                    )
                    chunk_tokens, chunk_counts, boundaries, _ = self._gather(cols[c0:c1])
                    positions = np.searchsorted(vocab, chunk_tokens)
                    positions[
                        (positions == vocab.size)
                        | (vocab[np.minimum(positions, vocab.size - 1)] != chunk_tokens)
                    ] = vocab.size  # tokens outside the block → zero column
                    contributions = np.minimum(
                        chunk_counts[None, :], table[:, positions]
                    )
                    result[r0:r1, c0:c1] = np.add.reduceat(
                        contributions, boundaries, axis=1
                    )
                    c0 = c1
            r0 = r1
        return result


class GroupVerifier:
    """Vectorized exact verification of one query against record groups.

    Built once per query (scattering the query's token multiplicities into
    a universe-sized lookup array); calling it with a group's member
    indices returns the exact similarity of every member, bit-identical to
    the scalar ``measure(query, record)`` walk.
    """

    __slots__ = ("view", "measure", "query_size", "_query", "_query_counts")

    def __init__(self, view: ColumnarView, query: "SetRecord", measure: "Similarity") -> None:
        self.view = view
        self.measure = measure
        self.query_size = len(query)
        self._query = query
        # The O(|universe|) scatter is deferred to the first verification:
        # a query whose every group is pruned never pays for it.
        self._query_counts: np.ndarray | None = None

    def _scatter(self) -> np.ndarray:
        if self._query_counts is None:
            width = len(self.view.dataset.universe)
            scattered = np.zeros(width, dtype=np.int64)
            for token, count in self._query.counts().items():
                # Tokens at or beyond the universe are phantoms (Section
                # 3.1): they count towards |Q| but overlap no stored record.
                if token < width:
                    scattered[token] = count
            self._query_counts = scattered
        return self._query_counts

    def __call__(self, member_indices: Sequence[int]) -> np.ndarray:
        """Exact similarities for every member, aligned with the input order."""
        members = np.asarray(member_indices, dtype=np.int64)
        shared = self.view.overlaps(self._scatter(), members)
        return self.measure.from_overlaps(shared, self.query_size, self.view._sizes[members])


def make_verifier(
    dataset: "Dataset",
    query: "SetRecord",
    measure: "Similarity",
    verify: str = "columnar",
) -> GroupVerifier | None:
    """Resolve a ``verify`` mode into a kernel (or ``None`` for scalar).

    ``"columnar"`` returns a :class:`GroupVerifier` over the dataset's
    cached :class:`ColumnarView`; ``"scalar"`` returns ``None``, which the
    group-visit helpers take as "verify one record at a time with the
    measure's ``__call__``" — the original path, kept as the escape hatch
    and test oracle.
    """
    if verify == "scalar":
        return None
    if verify != "columnar":
        raise ValueError(f"unknown verify mode {verify!r}; expected one of {VERIFY_MODES}")
    return dataset.columnar().verifier(query, measure)
