"""Dataset container: a collection of set records over a token universe.

This is the ``D`` of the paper.  It owns the :class:`TokenUniverse` and the
list of :class:`SetRecord` instances, exposes the statistics reported in
Table 2, and offers persistence in the standard "one set per line,
space-separated tokens" format used by the public set-similarity benchmarks
(KOSARAK et al.).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Sequence

from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse

if TYPE_CHECKING:
    from repro.core.columnar import ColumnarView
    from repro.storage.columnar_file import ColumnarFileReader

__all__ = ["Dataset", "DatasetStats"]


@dataclass(frozen=True)
class DatasetStats:
    """The per-dataset statistics the paper reports in Table 2."""

    num_sets: int
    max_set_size: int
    min_set_size: int
    avg_set_size: float
    universe_size: int

    def as_row(self) -> tuple[int, int, int, float, int]:
        """Return the Table 2 row ``(|D|, max, min, avg, |T|)``."""
        return (
            self.num_sets,
            self.max_set_size,
            self.min_set_size,
            round(self.avg_set_size, 1),
            self.universe_size,
        )


class Dataset:
    """A database of sets ``D`` with its token universe ``T``.

    Parameters
    ----------
    records : iterable of SetRecord, optional
        The stored sets; token ids must already be interned in
        ``universe`` (use :meth:`from_token_lists` for raw tokens).
    universe : TokenUniverse, optional
        The token universe the records are expressed in; a fresh empty
        universe when omitted.

    Attributes
    ----------
    records : list of SetRecord
        The stored sets; record *indices* into this list are the ids all
        engines report, and they stay stable across logical deletes.
    universe : TokenUniverse
        Bidirectional external-token ↔ dense-id mapping, shared by every
        index over this dataset.

    Examples
    --------
    >>> from repro import Dataset
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c", "c"]])
    >>> len(dataset)
    2
    >>> len(dataset[1])                       # multiset size counts duplicates
    3
    >>> dataset.stats().universe_size
    3
    """

    def __init__(
        self,
        records: Iterable[SetRecord] = (),
        universe: TokenUniverse | None = None,
    ) -> None:
        self.universe = universe if universe is not None else TokenUniverse()
        self.records: list[SetRecord] = list(records)
        self._columnar = None
        self._validate()

    def _validate(self) -> None:
        universe_size = len(self.universe)
        for index, record in enumerate(self.records):
            if record.tokens and record.tokens[-1] >= universe_size:
                raise ValueError(
                    f"record {index} references token id {record.tokens[-1]} "
                    f"outside the universe of size {universe_size}"
                )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_token_lists(
        cls,
        token_lists: Iterable[Sequence[Hashable]],
        universe: TokenUniverse | None = None,
    ) -> "Dataset":
        """Build a dataset from raw token sequences, interning tokens."""
        universe = universe if universe is not None else TokenUniverse()
        records = [SetRecord(universe.intern_all(tokens)) for tokens in token_lists]
        return cls(records, universe)

    @classmethod
    def load(cls, path: str | Path) -> "Dataset":
        """Load the one-set-per-line whitespace-separated token format."""
        universe = TokenUniverse()
        records = []
        with open(path) as handle:
            for line in handle:
                tokens = line.split()
                if tokens:
                    records.append(SetRecord(universe.intern_all(tokens)))
        return cls(records, universe)

    @classmethod
    def from_columnar_file(cls, source: str | Path | ColumnarFileReader) -> "Dataset":
        """Build a dataset over a binary columnar file, without records.

        ``source`` is a path to a ``dataset.bin`` (opened with
        ``mode="mmap"``) or an already-open
        :class:`~repro.storage.columnar_file.ColumnarFileReader`.  The
        returned dataset's :meth:`columnar` view serves the stored CSR
        arrays directly (``np.memmap``-backed for mapped readers), and
        ``records`` is a lazy sequence that materializes a
        :class:`~repro.core.sets.SetRecord` only when one is indexed —
        the columnar query paths never do, which is what makes
        ``load_engine(..., mode="mmap")`` answer without pulling the
        dataset into RAM.

        Examples
        --------
        >>> import tempfile, os
        >>> from repro import Dataset
        >>> from repro.storage import ColumnarFileWriter
        >>> original = Dataset.from_token_lists([["a", "b"], ["b", "c"]])
        >>> path = os.path.join(tempfile.mkdtemp(), "dataset.bin")
        >>> _ = ColumnarFileWriter(path).write(original)
        >>> mapped = Dataset.from_columnar_file(path)
        >>> len(mapped), mapped.stats().universe_size
        (2, 3)
        >>> mapped[1].tokens                  # materialized on demand
        (1, 2)
        """
        from repro.storage.columnar_file import ColumnarFileReader, LazyRecords

        reader = source if isinstance(source, ColumnarFileReader) else ColumnarFileReader(source)
        dataset = cls.__new__(cls)  # the per-record validation walk would defeat laziness
        dataset.universe = reader.universe()
        view = reader.view()
        view.dataset = dataset
        dataset.records = LazyRecords(view)
        dataset._columnar = view
        return dataset

    def save(self, path: str | Path) -> None:
        """Write the dataset in the one-set-per-line token format."""
        with open(path, "w") as handle:
            for record in self.records:
                line = " ".join(str(self.universe.token_of(t)) for t in record.tokens)
                handle.write(line + "\n")

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SetRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> SetRecord:
        return self.records[index]

    def append(self, record: SetRecord) -> int:
        """Add a record (token ids must already be interned); return its index."""
        if record.tokens[-1] >= len(self.universe):
            raise ValueError(
                f"token id {record.tokens[-1]} outside universe of size {len(self.universe)}"
            )
        self.records.append(record)
        return len(self.records) - 1

    def columnar(self) -> ColumnarView:
        """The cached CSR view of this dataset (built on first use).

        The view is shared by every index over this dataset (single
        engine, all shards) and kept fresh incrementally: records appended
        after the view was built are synced in on the next use, and
        logical deletes need no maintenance (liveness is defined by group
        membership, not by the layout).
        """
        from repro.core.columnar import ColumnarView

        if self._columnar is None:
            self._columnar = ColumnarView(self)
        return self._columnar.sync()

    # -- statistics and sampling -------------------------------------------

    def stats(self) -> DatasetStats:
        """Compute the Table 2 statistics for this dataset."""
        if not self.records:
            return DatasetStats(0, 0, 0, 0.0, len(self.universe))
        if self._columnar is not None and self._columnar.num_records == len(self.records):
            # Sizes are precomputed in the (possibly mapped) CSR view —
            # no need to materialize records to measure them.
            sizes = self._columnar._sizes[: len(self.records)].tolist()
        else:
            sizes = [len(record) for record in self.records]
        return DatasetStats(
            num_sets=len(self.records),
            max_set_size=max(sizes),
            min_set_size=min(sizes),
            avg_set_size=sum(sizes) / len(sizes),
            universe_size=len(self.universe),
        )

    def sample_indices(self, count: int, rng: random.Random) -> list[int]:
        """Sample ``count`` distinct record indices (all of them if fewer)."""
        if count >= len(self.records):
            return list(range(len(self.records)))
        return rng.sample(range(len(self.records)), count)

    def sample(self, count: int, rng: random.Random) -> "Dataset":
        """Sample a sub-dataset sharing this dataset's universe."""
        indices = self.sample_indices(count, rng)
        return Dataset([self.records[i] for i in indices], self.universe)
