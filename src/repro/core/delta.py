"""Append-only delta segments: the durable write path over a saved generation.

A saved index directory is an immutable *generation*: ``dataset.bin``,
``dataset.txt``, the manifests and group files are never rewritten in
place.  Mutations of a loaded engine are instead absorbed by a
:class:`DeltaSegment` — the engine applies each ``insert``/``remove`` to
its in-memory structures (the mapped dataset grows a CSR *tail*, see
:class:`repro.storage.columnar_file.MappedColumnarView`) and appends one
checksummed JSON line to ``delta.log`` inside the generation directory:

    {"check": "…", "group": 3, "index": 120, "op": "insert",
     "shard": 1, "tokens": ["a", "b"]}
    {"check": "…", "group": 0, "index": 7, "op": "remove", "shard": 0}

The log records the *outcome* of routing (the record index, the target
shard and group), not just the request — replay is therefore a
deterministic re-application, independent of the routing heuristics, so
a reload of base + delta answers queries identically to the engine that
performed the writes.  Token strings use the same ``str(token)`` normal
form as ``dataset.txt``.

Durability follows write-ahead-log conventions:

* every append opens the log, writes one line, flushes, fsyncs, and
  closes — a crash never leaves a stale open handle across a compaction
  swap, and a committed op survives power loss;
* each line carries a truncated SHA-256 over its canonical body in the
  ``check`` field;
* on read, a torn *final* line (the classic crash-mid-append) is
  truncated and ignored; a corrupt line anywhere else — bad JSON
  mid-log, a checksum mismatch, an unknown op shape — raises
  :class:`~repro.core.persistence.PersistenceError`, because silently
  skipping committed ops would serve wrong answers.

``repro compact`` folds the delta into a fresh generation (the staged
directory simply carries no ``delta.log``) through the same
crash-safe :func:`~repro.core.persistence.atomic_directory` swap every
save uses; see :mod:`repro.maintenance`.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.core.sets import SetRecord

if TYPE_CHECKING:  # pragma: no cover — import cycle: dataset users import us
    from repro.core.dataset import Dataset
from repro.testing.faults import fault_point

__all__ = [
    "DELTA_LOG",
    "DeltaSegment",
    "read_delta_ops",
    "apply_insert_op",
    "apply_group_ops",
]

#: File name of the write-ahead delta log inside a generation directory.
DELTA_LOG = "delta.log"

_OPS = ("insert", "remove")


def _persistence_error(message: str) -> Exception:
    # Imported lazily: repro.core.persistence imports this module's users.
    from repro.core.persistence import PersistenceError

    return PersistenceError(message)


def _op_check(body: dict) -> str:
    """Truncated SHA-256 over the canonical JSON of an op body (sans check)."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _validate_op(op: dict, line_number: int, path: Path) -> dict:
    def fail(reason: str) -> Exception:
        return _persistence_error(
            f"delta log {path} line {line_number} {reason} — the write-ahead "
            "log is corrupt; refusing to load a wrong-answer engine"
        )

    if not isinstance(op, dict) or op.get("op") not in _OPS:
        raise fail("is not a delta operation")
    recorded = op.get("check")
    body = {key: value for key, value in op.items() if key != "check"}
    if recorded != _op_check(body):
        raise fail("fails its checksum (torn or tampered mid-log write)")
    index = op.get("index")
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        raise fail("has no valid record index")
    for field in ("shard", "group"):
        value = op.get(field)
        if value is not None and (
            not isinstance(value, int) or isinstance(value, bool) or value < 0
        ):
            raise fail(f"has an invalid {field!r} field")
    if op["op"] == "insert":
        tokens = op.get("tokens")
        if (
            not isinstance(tokens, list)
            or not tokens
            or not all(isinstance(token, str) for token in tokens)
        ):
            raise fail("records an insert without its token strings")
        if op.get("group") is None:
            raise fail("records an insert without its target group")
    return op


def read_delta_ops(directory: str | Path) -> list[dict]:
    """Read and validate every committed op of a generation's delta log.

    Returns ``[]`` when the directory has no ``delta.log`` (a freshly
    compacted or never-mutated generation).  A torn final line is
    ignored — WAL semantics: the op never committed.  Any earlier
    corruption raises :class:`~repro.core.persistence.PersistenceError`.
    """
    path = Path(directory) / DELTA_LOG
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return []
    lines = raw.decode("utf-8", errors="replace").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    ops: list[dict] = []
    for line_number, line in enumerate(lines, start=1):
        try:
            op = json.loads(line)
        except json.JSONDecodeError:
            if line_number == len(lines):
                break  # torn final append: the op never committed
            raise _persistence_error(
                f"delta log {path} line {line_number} is not valid JSON but is "
                "not the final line — mid-log corruption; refusing to load"
            ) from None
        ops.append(_validate_op(op, line_number, path))
    return ops


class DeltaSegment:
    """The write-ahead log of one generation directory.

    Attached to an engine by ``save``/``load`` (never by an in-memory
    build); the engine calls :meth:`log_insert` / :meth:`log_remove`
    *after* applying the mutation in memory, so the log records routing
    outcomes.  ``num_ops`` counts the ops currently committed to the log
    (replayed ops included), which is what epoch suffixes advertise to
    process-pool workers.
    """

    __slots__ = ("directory", "base_epoch", "num_ops")

    def __init__(
        self, directory: str | Path, base_epoch: str = "", num_ops: int = 0
    ) -> None:
        self.directory = Path(directory)
        self.base_epoch = base_epoch
        self.num_ops = num_ops

    @property
    def path(self) -> Path:
        return self.directory / DELTA_LOG

    def epoch(self) -> str:
        """The generation epoch as seen by process workers.

        The base manifest epoch while the log is empty; suffixed with
        ``+<num_ops>`` once mutations landed, so workers replay exactly
        the ops the parent has committed and stale caches are evicted.
        """
        if self.num_ops == 0:
            return self.base_epoch
        return f"{self.base_epoch}+{self.num_ops}"

    def _append(self, body: dict) -> None:
        line = json.dumps(
            {**body, "check": _op_check(body)},
            sort_keys=True,
            separators=(",", ":"),
        )
        fault_point("delta.append", f"{body['op']}:{self.path}")
        # Open-per-append: no handle survives across a compaction's
        # directory swap, and the fsync makes the op durable before the
        # caller acknowledges the write.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.num_ops += 1

    def log_insert(
        self,
        tokens: Sequence[Hashable],
        index: int,
        group: int,
        shard: int | None = None,
    ) -> None:
        """Record a committed insert: its tokens and where it was routed."""
        body: dict = {
            "op": "insert",
            "tokens": [str(token) for token in tokens],
            "index": index,
            "group": group,
        }
        if shard is not None:
            body["shard"] = shard
        self._append(body)

    def log_remove(self, index: int, group: int, shard: int | None = None) -> None:
        """Record a committed logical delete (tombstone)."""
        body: dict = {"op": "remove", "index": index, "group": group}
        if shard is not None:
            body["shard"] = shard
        self._append(body)


def apply_insert_op(dataset: "Dataset", op: dict) -> SetRecord:
    """Re-apply one insert op to a dataset; returns the appended record.

    Tokens are interned (open universe, same order as the original
    insert), the record is appended, and the resulting index must equal
    the one the log recorded — a mismatch means the log and the base
    generation drifted apart (e.g. files from different saves).
    """
    token_ids = dataset.universe.intern_all(op["tokens"])
    record = SetRecord(token_ids)
    index = dataset.append(record)
    if index != op["index"]:
        raise _persistence_error(
            f"delta log op expected record index {op['index']}, replay produced "
            f"{index} — the delta log does not align with the base generation"
        )
    return record


def apply_group_ops(groups: list[list[int]], ops: Sequence[dict], shard: int | None = None) -> None:
    """Fold delta ops into plain group-membership lists, in log order.

    ``groups`` is one engine's (or one shard's) ``group_members`` lists;
    when ``shard`` is given, only ops recorded for that shard apply.
    Inserts append the record index to its recorded group; removes drop
    it again.  Misalignment (unknown group, index not present on remove)
    raises :class:`~repro.core.persistence.PersistenceError`.
    """
    for op in ops:
        if shard is not None and op.get("shard") != shard:
            continue
        group = op.get("group")
        if group is None or group >= len(groups):
            raise _persistence_error(
                f"delta log references group {group!r} outside the saved "
                f"{len(groups)} group(s) — log and base generation mismatch"
            )
        if op["op"] == "insert":
            groups[group].append(op["index"])
        else:
            try:
                groups[group].remove(op["index"])
            except ValueError:
                raise _persistence_error(
                    f"delta log removes record {op['index']} from group {group}, "
                    "which does not hold it — log and base generation mismatch"
                ) from None
