"""LES3 — the end-to-end engine (partition → TGM → search → update).

This is the public facade most applications use::

    from repro import LES3, Dataset
    dataset = Dataset.from_token_lists(token_lists)
    engine = LES3.build(dataset, num_groups=64)
    result = engine.knn(query_tokens, k=10)
    result = engine.range(query_tokens, threshold=0.7)
    engine.insert(new_tokens)

``build`` accepts any :class:`repro.partitioning.Partitioner`; the default
is the paper's L2P cascade (imported lazily to keep the core free of the
learning stack).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Sequence

from repro.core.dataset import Dataset
from repro.core.join import JoinResult, similarity_self_join
from repro.core.resilience import Deadline
from repro.core.search import SearchResult, knn_search, range_search
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity
from repro.core.tgm import TokenGroupMatrix
from repro.core.updates import insert_set, remove_set

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

__all__ = [
    "LES3",
    "suggest_num_groups",
    "as_query_record",
    "PARALLEL_MODES",
    "DEGRADED_MODES",
]

#: Execution modes of the query methods — one canonical tuple shared by
#: both engine classes so their signatures validate identically.  A
#: single-node :class:`LES3` always executes serially; it still accepts
#: (and validates) the keyword so callers can treat the engines
#: interchangeably.  :class:`repro.distributed.ShardedLES3` actually
#: dispatches to thread/process pools.
PARALLEL_MODES = ("serial", "thread", "process")

#: Failure-handling modes of the query methods.  ``"strict"`` (the
#: default) returns bit-identical answers or raises; ``"partial"`` lets a
#: sharded engine answer from the healthy shards and report the failed
#: ones in ``stats.extra["failed_shards"]``.  A single-node :class:`LES3`
#: validates the keyword (signature parity) but has no shards to lose,
#: so its answers are always complete.
DEGRADED_MODES = ("strict", "partial")


def suggest_num_groups(database_size: int) -> int:
    """The paper's Section 7.5 rule of thumb: ``n ≈ 0.5% · |D|``."""
    return max(int(0.005 * database_size), 2)


def as_query_record(dataset: Dataset, query_tokens: Sequence[Hashable]) -> SetRecord:
    """Map external query tokens to a SetRecord without growing the universe.

    Unseen tokens get synthetic ids beyond the universe so they count
    towards ``|Q|`` but match nothing (Section 3.1).  Shared by the
    single-node engine and the sharded engine so external queries intern
    identically everywhere.
    """
    universe = dataset.universe
    phantom = len(universe)
    token_ids = []
    phantom_map: dict[Hashable, int] = {}
    for token in query_tokens:
        token_id = universe.get_id(token)
        if token_id is None:
            if token not in phantom_map:
                phantom_map[token] = phantom
                phantom += 1
            token_id = phantom_map[token]
        token_ids.append(token_id)
    return SetRecord(token_ids)


class LES3:
    """Learning-based exact set similarity search engine.

    The single-node facade: a learned partition of the dataset, the TGM
    filter built over it, and exact bound-based kNN/range/join on top.
    Construct via :meth:`build`; persist with
    :func:`~repro.core.persistence.save_engine`; scale out by handing it
    to :meth:`repro.distributed.ShardedLES3.from_engine`.

    Parameters
    ----------
    dataset : Dataset
        The database of sets the engine answers queries over.
    tgm : TokenGroupMatrix
        A built token-group matrix whose groups cover the dataset.
    verify : {"columnar", "scalar"}, default ``"columnar"``
        Default candidate-verification path: the vectorized kernel over
        the dataset's CSR view, or the per-record walk (the escape hatch
        and test oracle).  Every query method takes a per-call override;
        results are bit-identical either way.

    Attributes
    ----------
    removed : set of int
        Logically deleted record indices (the persistence tombstone log);
        record slots are never reused.

    Examples
    --------
    >>> from repro import Dataset, LES3
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> engine = LES3.build(dataset, num_groups=2)
    >>> engine.knn(["a", "b"], k=1).matches
    [(0, 1.0)]
    >>> engine.range(["b", "c"], threshold=0.3).matches
    [(1, 1.0), (0, 0.3333333333333333)]
    >>> engine.join(0.3).pairs
    [(0, 1, 0.3333333333333333)]
    """

    def __init__(
        self, dataset: Dataset, tgm: TokenGroupMatrix, verify: str = "columnar"
    ) -> None:
        self.dataset = dataset
        self.tgm = tgm
        self.verify = verify
        # Logically deleted record indices.  Record slots are never reused,
        # so this only grows; persistence writes it to the manifest and
        # validation treats these as intentional orphans.
        self.removed: set[int] = set()
        # The write-ahead delta segment of the generation this engine was
        # saved to / loaded from (None for in-memory builds).  When set,
        # insert/remove append their routing outcome to the generation's
        # delta.log so a reload replays to exactly this state.
        self._delta = None

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        num_groups: int | None = None,
        partitioner: Partitioner | None = None,
        measure: str | Similarity = "jaccard",
        backend: str = "dense",
        seed: int = 0,
        verify: str = "columnar",
    ) -> "LES3":
        """Partition the dataset and build the TGM.

        Parameters
        ----------
        dataset:
            The database of sets.
        num_groups:
            Target group count; defaults to the paper's rule of thumb
            ``n ≈ 0.005 · |D|`` (Section 7.5) via
            :func:`suggest_num_groups`.
        partitioner:
            Any :class:`repro.partitioning.Partitioner`; defaults to the L2P
            cascade with PTR representations.
        measure:
            Similarity measure used for bounds and verification.
        backend:
            TGM storage backend, ``"dense"`` or ``"roaring"``.
        seed:
            Seed for the default partitioner.
        """
        if num_groups is None:
            num_groups = suggest_num_groups(len(dataset))
        if partitioner is None:
            from repro.learn.cascade import L2PPartitioner

            partitioner = L2PPartitioner(measure=measure, seed=seed)
        partition = partitioner.partition(dataset, num_groups)
        tgm = TokenGroupMatrix(dataset, partition.groups, measure, backend)
        return cls(dataset, tgm, verify=verify)

    @property
    def measure(self) -> Similarity:
        return self.tgm.measure

    @property
    def num_groups(self) -> int:
        return self.tgm.num_groups

    def _as_record(self, query_tokens: Sequence[Hashable]) -> SetRecord:
        """External query tokens → SetRecord (see :func:`as_query_record`)."""
        return as_query_record(self.dataset, query_tokens)

    def _verify_mode(self, verify: str | None) -> str:
        return self.verify if verify is None else verify

    def _resolve_parallel(self, parallel: str | None) -> str:
        """Validate ``parallel`` for signature parity with ShardedLES3.

        A single-node engine has no shards to scatter over, so every
        valid mode executes the same serial plan; an *unknown* mode is
        still rejected, exactly like the sharded engine rejects it.
        """
        mode = "serial" if parallel is None else parallel
        if mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
            )
        return mode

    def _resolve_degraded(self, degraded: str | None) -> str:
        """Validate ``degraded`` for signature parity with ShardedLES3.

        A single-node engine has no shards to lose, so both modes execute
        identically and answers are always complete; an unknown mode is
        still rejected, exactly like the sharded engine rejects it.
        """
        mode = "strict" if degraded is None else degraded
        if mode not in DEGRADED_MODES:
            raise ValueError(
                f"unknown degraded mode {mode!r}; expected one of {DEGRADED_MODES}"
            )
        return mode

    @staticmethod
    def _check_deadline(deadline: Deadline | None) -> None:
        """Refuse to start work whose deadline has already passed."""
        if deadline is not None:
            deadline.check("before query execution")

    def knn(
        self,
        query_tokens: Sequence[Hashable],
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """kNN search over external tokens."""
        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return knn_search(
            self.dataset, self.tgm, self._as_record(query_tokens), k,
            verify=self._verify_mode(verify),
        )

    def range(
        self,
        query_tokens: Sequence[Hashable],
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """Range search over external tokens."""
        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return range_search(
            self.dataset, self.tgm, self._as_record(query_tokens), threshold,
            verify=self._verify_mode(verify),
        )

    def knn_record(
        self,
        query: SetRecord,
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """kNN search with a pre-interned query record."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return knn_search(
            self.dataset, self.tgm, query, k, verify=self._verify_mode(verify)
        )

    def range_record(
        self,
        query: SetRecord,
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """Range search with a pre-interned query record."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return range_search(
            self.dataset, self.tgm, query, threshold, verify=self._verify_mode(verify)
        )

    def batch_knn_record(
        self,
        queries: Sequence[SetRecord],
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> list[SearchResult]:
        """kNN for every query (see :func:`repro.core.batch.batch_knn_search`)."""
        from repro.core.batch import batch_knn_search

        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return batch_knn_search(
            self.dataset, self.tgm, queries, k, verify=self._verify_mode(verify)
        )

    def batch_range_record(
        self,
        queries: Sequence[SetRecord],
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> list[SearchResult]:
        """Range search for every query; one TGM scan for the whole batch."""
        from repro.core.batch import batch_range_search

        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return batch_range_search(
            self.dataset, self.tgm, queries, threshold,
            verify=self._verify_mode(verify),
        )

    def join(
        self,
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> JoinResult:
        """Exact similarity self-join: all pairs with ``Sim >= threshold``."""
        self._resolve_parallel(parallel)
        self._resolve_degraded(degraded)
        self._check_deadline(deadline)
        return similarity_self_join(
            self.dataset, self.tgm, threshold, verify=self._verify_mode(verify)
        )

    def insert(self, tokens: Sequence[Hashable]) -> tuple[int, int]:
        """Insert a new set (open universe); returns (record index, group id).

        On an engine attached to a saved generation (anything that went
        through ``save``/``load``) the insert is also appended to the
        generation's write-ahead ``delta.log`` — the save stays in sync
        and a reload replays to exactly this state.
        """
        record_index, group_id = insert_set(self.dataset, self.tgm, tokens)
        if self._delta is not None:
            try:
                self._delta.log_insert(tokens, record_index, group_id)
            except FileNotFoundError:
                self._detach_delta()
        return record_index, group_id

    def remove(self, record_index: int) -> int:
        """Logically delete a set; searches no longer return it.

        Durable like :meth:`insert`: an attached generation logs the
        tombstone to ``delta.log``.
        """
        group_id = remove_set(self.tgm, record_index)
        self.removed.add(record_index)
        if self._delta is not None:
            try:
                self._delta.log_remove(record_index, group_id)
            except FileNotFoundError:
                self._detach_delta()
        return group_id

    def _detach_delta(self) -> None:
        """The backing generation vanished (its directory was deleted).

        Durability for a deleted save is meaningless, so the engine
        degrades to what a never-saved one is: fully usable in memory,
        with nothing armed on disk.  The mutation that detected the loss
        is already applied and stays applied.
        """
        self._delta = None

    def tokens_of(self, record_index: int) -> list[Hashable]:
        """External tokens of a stored record (for presenting results)."""
        record = self.dataset.records[record_index]
        return [self.dataset.universe.token_of(token_id) for token_id in record.tokens]

    def index_bytes(self) -> int:
        return self.tgm.byte_size()

    def __repr__(self) -> str:
        return f"LES3(|D|={len(self.dataset)}, groups={self.tgm.num_groups}, measure={self.measure.name!r})"
