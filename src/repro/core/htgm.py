"""HTGM — hierarchical token-group matrix (Sections 5.2 and 7.7).

The cascade framework produces partitions at every level; HTGM stacks a TGM
per chosen level, coarse to fine.  A fine group is only scored when its
coarse ancestor survived pruning, so on mostly-dissimilar data the small
coarse matrices eliminate work before the wide fine matrix is touched.

Cost accounting matches the paper's two Figure 14 metrics: *columns visited*
(index access cost — one column per query token per scored group) and
*similarity computations* (verification cost).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.search import SearchResult, prepare_query
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure
from repro.core.tgm import TokenGroupMatrix

if TYPE_CHECKING:
    from repro.learn.cascade import L2PPartitioner

__all__ = ["HierarchicalTGM"]


class HierarchicalTGM:
    """A stack of TGMs over nested partitions, coarse first.

    Parameters
    ----------
    dataset:
        The database.
    level_groups:
        One group list per level, ordered coarse → fine.  Every fine group
        must be fully contained in exactly one group of each coarser level
        (which is what the cascade framework produces).
    measure:
        Similarity measure shared by all levels.
    """

    def __init__(
        self,
        dataset: Dataset,
        level_groups: Sequence[Sequence[Sequence[int]]],
        measure: str | Similarity = "jaccard",
        backend: str = "dense",
    ) -> None:
        if not level_groups:
            raise ValueError("HTGM needs at least one level")
        self.measure = get_measure(measure)
        self.levels = [
            TokenGroupMatrix(dataset, groups, self.measure, backend) for groups in level_groups
        ]
        self._children = self._link_levels(level_groups)

    @staticmethod
    def _link_levels(
        level_groups: Sequence[Sequence[Sequence[int]]],
    ) -> list[list[list[int]]]:
        """For each level ``i < last``, map group id → child group ids at ``i+1``."""
        links: list[list[list[int]]] = []
        for coarse_level in range(len(level_groups) - 1):
            coarse = level_groups[coarse_level]
            fine = level_groups[coarse_level + 1]
            owner: dict[int, int] = {}
            for group_id, group in enumerate(coarse):
                for record_index in group:
                    owner[record_index] = group_id
            children: list[list[int]] = [[] for _ in coarse]
            for fine_id, group in enumerate(fine):
                parents = {owner[record_index] for record_index in group}
                if len(parents) != 1:
                    raise ValueError(
                        f"fine group {fine_id} spans {len(parents)} coarse groups; "
                        "levels must be nested"
                    )
                children[parents.pop()].append(fine_id)
            links.append(children)
        return links

    @classmethod
    def from_cascade(
        cls,
        dataset: Dataset,
        partitioner: L2PPartitioner,
        level_group_counts: Sequence[int],
        measure: str | Similarity = "jaccard",
        backend: str = "dense",
    ) -> "HierarchicalTGM":
        """Build an HTGM from an already-run L2P cascade.

        ``partitioner`` must expose ``level_partitions_`` (an
        :class:`repro.learn.cascade.L2PPartitioner` after ``partition()``);
        the levels whose group counts match ``level_group_counts`` are
        stacked coarse → fine.  Raises if a requested count was never
        produced by the cascade.
        """
        available = {p.num_groups: p for p in partitioner.level_partitions_}
        chosen = []
        for count in sorted(level_group_counts):
            partition = available.get(count)
            if partition is None:
                produced = sorted(available)
                raise ValueError(
                    f"cascade produced no level with {count} groups; available: {produced}"
                )
            chosen.append(partition.groups)
        return cls(dataset, chosen, measure, backend)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def byte_size(self) -> int:
        return sum(level.byte_size() for level in self.levels)

    # -- search ------------------------------------------------------------

    def _surviving_fine_groups(
        self,
        known: list[int],
        weights: list[int],
        query_size: int,
        threshold: float,
        stats: QueryStats,
    ) -> tuple[list[int], np.ndarray]:
        """Drill down the levels, pruning subtrees whose bound < threshold.

        Returns the surviving group ids of the finest level together with the
        finest level's bounds (NaN for groups never scored).
        """
        survivors = list(range(self.levels[0].num_groups))
        fine_bounds = np.full(self.levels[-1].num_groups, np.nan)
        for level_index, tgm in enumerate(self.levels):
            bounds = tgm.upper_bounds(known, query_size, weights)
            stats.columns_visited += len(known) * len(survivors)
            stats.groups_scored += len(survivors)
            kept = [g for g in survivors if bounds[g] >= threshold]
            stats.groups_pruned += len(survivors) - len(kept)
            if level_index == len(self.levels) - 1:
                for g in kept:
                    fine_bounds[g] = bounds[g]
                return kept, fine_bounds
            next_survivors: list[int] = []
            for g in kept:
                next_survivors.extend(self._children[level_index][g])
            survivors = next_survivors
        return [], fine_bounds  # pragma: no cover - loop always returns

    def range_search(
        self, dataset: Dataset, query: SetRecord, threshold: float
    ) -> SearchResult:
        """Exact range search with hierarchical pruning."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        known, weights, query_size = prepare_query(query, self.levels[-1].universe_size)
        stats = QueryStats()
        survivors, _ = self._surviving_fine_groups(
            known, weights, query_size, threshold, stats
        )
        fine = self.levels[-1]
        matches: list[tuple[int, float]] = []
        for group_id in survivors:
            for record_index in fine.group_members[group_id]:
                similarity = self.measure(query, dataset.records[record_index])
                stats.candidates_verified += 1
                stats.similarity_computations += 1
                if similarity >= threshold:
                    matches.append((record_index, similarity))
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        return SearchResult(matches, stats)

    def knn_search(self, dataset: Dataset, query: SetRecord, k: int) -> SearchResult:
        """Exact kNN with hierarchical pruning.

        Coarse levels are used with the running kth-similarity threshold:
        the drill-down is re-evaluated lazily — groups are visited finest
        level best-first, but a fine group inherits ``min(bound, parent
        bound)`` so a weak coarse bound prunes all its descendants at once.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        known, weights, query_size = prepare_query(query, self.levels[-1].universe_size)
        stats = QueryStats()

        # Score every level top-down, but only score a fine group if its
        # parent might still be useful (bound > 0).  The effective bound of a
        # fine group is capped by its ancestors' bounds.
        fine = self.levels[-1]
        effective = np.zeros(fine.num_groups)
        survivors = list(range(self.levels[0].num_groups))
        parent_cap: dict[int, float] = {g: 1.0 for g in survivors}
        for level_index, tgm in enumerate(self.levels):
            bounds = tgm.upper_bounds(known, query_size, weights)
            stats.columns_visited += len(known) * len(survivors)
            stats.groups_scored += len(survivors)
            capped = {g: min(bounds[g], parent_cap[g]) for g in survivors}
            if level_index == len(self.levels) - 1:
                for g, bound in capped.items():
                    effective[g] = bound
                break
            keep = [g for g in survivors if capped[g] > 0.0]
            stats.groups_pruned += len(survivors) - len(keep)
            parent_cap = {}
            next_survivors = []
            for g in keep:
                for child in self._children[level_index][g]:
                    parent_cap[child] = capped[g]
                    next_survivors.append(child)
            survivors = next_survivors

        order = np.argsort(-effective, kind="stable")
        heap: list[tuple[float, int]] = []
        visited = 0
        for group_id in order:
            bound = effective[int(group_id)]
            if len(heap) >= k and bound < heap[0][0]:
                break
            if len(heap) >= k and bound == heap[0][0] == 0.0:
                break
            members = fine.group_members[int(group_id)]
            if not members:
                continue
            visited += 1
            for record_index in members:
                similarity = self.measure(query, dataset.records[record_index])
                stats.candidates_verified += 1
                stats.similarity_computations += 1
                entry = (similarity, -record_index)
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
        stats.groups_pruned += fine.num_groups - visited

        matches = [(-neg, sim) for sim, neg in heap]
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        stats.result_size = len(matches)
        return SearchResult(matches, stats)
