"""TGM-accelerated exact set similarity self-join.

The paper's related work (Section 8) is dominated by threshold joins; the
TGM supports them naturally, so this module provides the join as an
extension of the reproduced system: find all pairs ``(S_x, S_y)``,
``x < y``, with ``Sim(S_x, S_y) >= δ``.

Pruning happens at two granularities:

* **Group-pair bound**: for groups ``G_a, G_b`` with vocabularies
  ``V_a, V_b`` and minimum member sizes ``m_a, m_b``, any cross pair has
  overlap at most ``|V_a ∩ V_b|`` and both sizes at least
  ``m_a, m_b`` — so ``Sim`` is at most
  ``measure.from_overlap(|V_a ∩ V_b|, m*, m*)`` with the most favourable
  feasible sizes.  Pairs of groups failing δ are skipped wholesale.
* **Within surviving group pairs**, each candidate pair is verified
  exactly; a per-pair size filter (for Jaccard: ``|S_x| ≥ δ·|S_y|``)
  prunes before the intersection is computed.
"""

from __future__ import annotations

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.similarity import JaccardSimilarity
from repro.core.tgm import TokenGroupMatrix

__all__ = ["JoinResult", "similarity_self_join"]


class JoinResult:
    """Join pairs plus the cost counters of the computation."""

    __slots__ = ("pairs", "stats")

    def __init__(self, pairs: list[tuple[int, int, float]], stats: QueryStats) -> None:
        self.pairs = pairs
        self.stats = stats

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


def _group_vocabularies(dataset: Dataset, tgm: TokenGroupMatrix) -> list[set[int]]:
    vocabularies = []
    for members in tgm.group_members:
        vocabulary: set[int] = set()
        for record_index in members:
            vocabulary.update(dataset.records[record_index].distinct)
        vocabularies.append(vocabulary)
    return vocabularies


def _best_feasible_similarity(measure, shared_cap: int, min_a: int, min_b: int) -> float:
    """Upper bound of Sim across two groups given vocab overlap and min sizes.

    The most favourable feasible pair takes the full vocabulary overlap and
    sets exactly as large as required: ``overlap = shared_cap`` and
    ``size = max(min_size, overlap)`` on both sides (a set's size can never
    be below its overlap, and every supported measure is non-increasing in
    set size at fixed overlap).
    """
    if shared_cap <= 0:
        return 0.0
    size_a = max(min_a, shared_cap, 1)
    size_b = max(min_b, shared_cap, 1)
    return measure.from_overlap(shared_cap, size_a, size_b)


def similarity_self_join(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    threshold: float,
) -> JoinResult:
    """All pairs with ``Sim >= threshold`` (x < y), exactly."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    measure = tgm.measure
    stats = QueryStats()
    vocabularies = _group_vocabularies(dataset, tgm)
    min_sizes = [
        min((len(dataset.records[i]) for i in members), default=0)
        for members in tgm.group_members
    ]
    num_groups = tgm.num_groups
    jaccard = isinstance(measure, JaccardSimilarity)

    pairs: list[tuple[int, int, float]] = []
    for a in range(num_groups):
        if not tgm.group_members[a]:
            continue
        for b in range(a, num_groups):
            if not tgm.group_members[b]:
                continue
            stats.groups_scored += 1
            shared_cap = len(vocabularies[a] & vocabularies[b]) if a != b else len(
                vocabularies[a]
            )
            bound = _best_feasible_similarity(measure, shared_cap, min_sizes[a], min_sizes[b])
            if bound < threshold:
                stats.groups_pruned += 1
                continue
            members_a = tgm.group_members[a]
            members_b = tgm.group_members[b]
            for i, x in enumerate(members_a):
                record_x = dataset.records[x]
                candidates = members_b if a != b else members_a[i + 1 :]
                for y in candidates:
                    if x == y:
                        continue
                    record_y = dataset.records[y]
                    if jaccard:
                        # Size filter: Jaccard >= δ needs δ ≤ min/max size ratio.
                        small = min(len(record_x), len(record_y))
                        large = max(len(record_x), len(record_y))
                        if small < threshold * large:
                            continue
                    similarity = measure(record_x, record_y)
                    stats.candidates_verified += 1
                    stats.similarity_computations += 1
                    if similarity >= threshold:
                        pairs.append((min(x, y), max(x, y), similarity))
    pairs.sort()
    stats.result_size = len(pairs)
    return JoinResult(pairs, stats)
