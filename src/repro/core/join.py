"""TGM-accelerated exact set similarity self-join.

The paper's related work (Section 8) is dominated by threshold joins; the
TGM supports them naturally, so this module provides the join as an
extension of the reproduced system: find all pairs ``(S_x, S_y)``,
``x < y``, with ``Sim(S_x, S_y) >= δ``.

Pruning happens at two granularities:

* **Group-pair bound**: for groups ``G_a, G_b`` with vocabularies
  ``V_a, V_b`` and minimum member sizes ``m_a, m_b``, any cross pair has
  overlap at most ``|V_a ∩ V_b|`` and both sizes at least
  ``m_a, m_b`` — so ``Sim`` is at most
  ``measure.from_overlap(|V_a ∩ V_b|, m*, m*)`` with the most favourable
  feasible sizes.  Pairs of groups failing δ are skipped wholesale.  The
  caps come out of one boolean matrix product over the groups' live
  vocabularies.
* **Within surviving group pairs**, candidates are verified exactly.
  The default ``verify="columnar"`` path scores a whole group pair in
  one vectorized shot: both groups' CSR slices are gathered from the
  dataset's columnar view, the full pairwise overlap matrix is computed
  blockwise (:meth:`~repro.core.columnar.ColumnarView.pairwise_overlaps`,
  tiled so memory stays bounded on large groups), and exact similarities
  come out of one :meth:`~repro.core.similarity.Similarity.from_overlap_matrix`
  call — the same float64 operations as the scalar formula, so the
  resulting pairs are bit-identical.  ``verify="scalar"`` keeps the
  original per-pair walk (with its per-pair Jaccard size filter) as the
  escape hatch and test oracle.

:func:`similarity_join_between` joins the groups of two *disjoint* TGMs
over one shared dataset — the cross-shard building block of
``ShardedLES3.join`` (:mod:`repro.distributed.sharded`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.columnar import DEFAULT_TILE_CELLS, VERIFY_MODES, ColumnarView
from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.similarity import JaccardSimilarity, Similarity
from repro.core.tgm import TokenGroupMatrix

__all__ = [
    "JoinResult",
    "similarity_self_join",
    "similarity_join_between",
    "best_feasible_pair_bound",
    "group_join_profiles",
]


class JoinResult:
    """Join pairs plus the cost counters of the computation."""

    __slots__ = ("pairs", "stats")

    def __init__(self, pairs: list[tuple[int, int, float]], stats: QueryStats) -> None:
        self.pairs = pairs
        self.stats = stats

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[tuple[int, int, float]]:
        return iter(self.pairs)


def best_feasible_pair_bound(
    measure: Similarity, shared_cap: int, min_a: int, min_b: int
) -> float:
    """Upper bound of Sim across two groups given vocab overlap and min sizes.

    The most favourable feasible pair takes the full vocabulary overlap and
    sets exactly as large as required: ``overlap = shared_cap`` and
    ``size = max(min_size, overlap)`` on both sides (a set's size can never
    be below its overlap, and every supported measure is non-increasing in
    set size at fixed overlap).  Because the bound is monotone in the cap
    and antitone in the minimum sizes, it stays sound when computed from
    any vocabulary superset and any size lower bound — which is what makes
    shard-level caps (``ShardedLES3.join``) sound too.
    """
    if shared_cap <= 0:
        return 0.0
    size_a = max(min_a, shared_cap, 1)
    size_b = max(min_b, shared_cap, 1)
    bound = measure.from_overlap(shared_cap, size_a, size_b)
    if measure.symmetric:
        return bound
    # Asymmetric measures: the reported pair may be oriented either way
    # (the join orients by record index), so the bound must cover both.
    return max(bound, measure.from_overlap(shared_cap, size_b, size_a))


def group_join_profiles(
    dataset: Dataset, groups: list[list[int]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Live vocabulary matrix, minimum member sizes, and token columns.

    Returns ``(vocab, min_sizes, columns)``: a boolean group × token
    matrix, the minimum live member size per group, and the sorted int64
    token ids the matrix columns stand for.  The columns cover exactly
    the distinct tokens of the *current* members — not the whole
    universe (which may have grown far wider through open-universe
    inserts) and not the TGM bits (which may carry lingering tokens
    after deletions) — so both the matrix footprint and the cap matmul
    scale with the data's real vocabulary, and the group-pair bounds
    stay as tight as the data allows.  The joins compute this per TGM;
    the sharded join precomputes one profile per shard and passes it
    down so cross-shard calls don't rebuild the same profiles once per
    shard pair (profiles with different column spaces are aligned on
    their shared tokens, which is exact — a token two groups share is in
    both column sets by construction).
    """
    # One vectorized CSR gather per group instead of a per-record walk:
    # identical vocabularies and minimum sizes, but a mapped dataset
    # profiles its groups without materializing any record.
    view = dataset.columnar()
    group_tokens = [
        np.unique(view.tokens_of_records(members)) if members
        else np.zeros(0, dtype=np.int64)
        for members in groups
    ]
    columns = (
        np.unique(np.concatenate(group_tokens)) if groups
        else np.zeros(0, dtype=np.int64)
    )
    vocab = np.zeros((len(groups), len(columns)), dtype=bool)
    min_sizes = np.zeros(len(groups), dtype=np.int64)
    for group_id, members in enumerate(groups):
        vocab[group_id, np.searchsorted(columns, group_tokens[group_id])] = True
        if members:
            min_sizes[group_id] = int(view.sizes_of(members).min())
    return vocab, min_sizes, columns


def _vocab_caps(
    vocab_a: np.ndarray, vocab_b: np.ndarray, max_cells: int = DEFAULT_TILE_CELLS
) -> np.ndarray:
    """``|V_a ∩ V_b|`` for every group pair, as an int64 matrix.

    The right operand is a free ``uint8`` view of the bool vocabulary
    matrix (no copy); only a row block of the left operand is ever cast
    up for the matmul, so the extra memory stays bounded at ``max_cells``
    cells however large the group × universe matrices are.
    """
    caps = np.empty((len(vocab_a), len(vocab_b)), dtype=np.int64)
    right = vocab_b.view(np.uint8).T
    block = max(1, max_cells // max(vocab_a.shape[1], 1))
    for r0 in range(0, len(vocab_a), block):
        caps[r0:r0 + block] = vocab_a[r0:r0 + block].astype(np.int32) @ right
    return caps


def _vocab_caps_self(
    vocab: np.ndarray, max_cells: int = DEFAULT_TILE_CELLS
) -> np.ndarray:
    """Symmetric ``|V_a ∩ V_b|`` caps of a group set against itself.

    Same contract as :func:`_vocab_caps(vocab, vocab)` but only the upper
    triangle goes through the matmul; the lower triangle is mirrored, which
    halves the O(G² · width) pruning-phase work the self-join pays.
    """
    caps = np.empty((len(vocab), len(vocab)), dtype=np.int64)
    right = vocab.view(np.uint8).T
    block = max(1, max_cells // max(vocab.shape[1], 1))
    for r0 in range(0, len(vocab), block):
        r1 = min(r0 + block, len(vocab))
        caps[r0:r1, r0:] = vocab[r0:r1].astype(np.int32) @ right[:, r0:]
        caps[r0:, r0:r1] = caps[r0:r1, r0:].T
    return caps


def _pair_bound_matrix(
    measure: Similarity, caps: np.ndarray, mins_a: np.ndarray, mins_b: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`best_feasible_pair_bound` over a cap matrix."""
    sizes_a = np.maximum(np.maximum(mins_a[:, None], caps), 1)
    sizes_b = np.maximum(np.maximum(mins_b[None, :], caps), 1)
    bounds = measure.from_overlaps(caps, sizes_a, sizes_b)
    if not measure.symmetric:
        bounds = np.maximum(bounds, measure.from_overlaps(caps, sizes_b, sizes_a))
    return np.where(caps > 0, bounds, 0.0)


def _verify_pair_scalar(
    dataset: Dataset,
    measure: Similarity,
    jaccard: bool,
    threshold: float,
    members_a: list[int],
    members_b: list[int],
    within: bool,
    pairs: list[tuple[int, int, float]],
    stats: QueryStats,
) -> None:
    """The original per-pair walk: one exact similarity per candidate pair.

    The reported similarity is ``Sim(S_min, S_max)`` — oriented by record
    index, not by iteration order, so asymmetric measures (containment)
    give one well-defined answer per unordered pair regardless of how the
    partitioning laid the records out.
    """
    for i, x in enumerate(members_a):
        record_x = dataset.records[x]
        candidates = members_a[i + 1:] if within else members_b
        for y in candidates:
            if x == y:
                continue
            record_y = dataset.records[y]
            if jaccard:
                # Size filter: Jaccard >= δ needs δ ≤ min/max size ratio.
                small = min(len(record_x), len(record_y))
                large = max(len(record_x), len(record_y))
                if small < threshold * large:
                    continue
            if x < y:
                similarity = measure(record_x, record_y)
            else:
                similarity = measure(record_y, record_x)
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            if similarity >= threshold:
                pairs.append((min(x, y), max(x, y), similarity))


def _verify_pair_columnar(
    view: ColumnarView,
    measure: Similarity,
    threshold: float,
    members_a: list[int],
    members_b: list[int],
    within: bool,
    pairs: list[tuple[int, int, float]],
    stats: QueryStats,
    max_cells: int,
) -> None:
    """Score one group pair in vectorized row-block shots over the CSR view.

    The overlap matrix and the measure's ``from_overlap_matrix`` apply
    the same integer and float64 operations as the scalar walk, so the
    surviving pairs carry bit-identical similarities.  For a group joined
    with itself only the strict upper triangle (by member position) is
    kept — the same unordered pairs the scalar walk visits; shared
    records between overlapping collections are masked out like the
    scalar walk's ``x == y`` skip.

    Tiling happens at this level too: rows are processed in blocks of at
    most ``max_cells / |cols|``, so the overlap/similarity slabs — not
    just :meth:`~repro.core.columnar.ColumnarView.pairwise_overlaps`'
    internal buffers — stay bounded on arbitrarily large groups.
    """
    rows = np.asarray(members_a, dtype=np.int64)
    cols = rows if within else np.asarray(members_b, dtype=np.int64)
    sizes_cols = view.sizes_of(cols)
    scored = len(rows) * (len(rows) - 1) // 2 if within else len(rows) * len(cols)
    stats.candidates_verified += scored
    stats.similarity_computations += scored
    row_block = max(1, max_cells // max(len(cols), 1))
    for r0 in range(0, len(rows), row_block):
        block = rows[r0:r0 + row_block]
        # Within a group, a row only ever pairs with later member
        # positions — score the columns from the block's start onward and
        # skip the lower-triangle cells entirely instead of masking them.
        block_cols = cols[r0:] if within else cols
        sizes_block_cols = sizes_cols[r0:] if within else sizes_cols
        overlaps = view.pairwise_overlaps(block, block_cols, max_cells)
        sizes_block = view.sizes_of(block)
        similarities = measure.from_overlap_matrix(
            overlaps, sizes_block, sizes_block_cols
        )
        if not measure.symmetric:
            # Canonical orientation Sim(S_min, S_max): where the row
            # record has the larger index, score with arguments swapped.
            swapped = measure.from_overlaps(
                overlaps, sizes_block_cols[None, :], sizes_block[:, None]
            )
            similarities = np.where(
                block[:, None] <= block_cols[None, :], similarities, swapped
            )
        keep = similarities >= threshold
        if within:
            # Strict upper triangle by member position (local: the block
            # row at offset i is the column at offset i).
            keep &= np.arange(len(block_cols))[None, :] > np.arange(len(block))[:, None]
        else:
            keep &= block[:, None] != block_cols[None, :]
        for i, j in zip(*np.nonzero(keep)):
            x, y = int(block[i]), int(block_cols[j])
            similarity = float(similarities[i, j])
            pairs.append((x, y, similarity) if x < y else (y, x, similarity))


def _check_join_args(threshold: float, verify: str) -> None:
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if verify not in VERIFY_MODES:
        raise ValueError(f"unknown verify mode {verify!r}; expected one of {VERIFY_MODES}")


def similarity_self_join(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    threshold: float,
    verify: str = "columnar",
    max_cells: int = DEFAULT_TILE_CELLS,
    profiles: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> JoinResult:
    """All pairs with ``Sim >= threshold`` (x < y), exactly.

    Parameters
    ----------
    dataset : Dataset
        The shared database of sets.
    tgm : TokenGroupMatrix
        A built TGM over ``dataset``; its groups drive the group-pair
        vocabulary pruning.
    threshold : float
        The join threshold δ, in ``(0, 1]``.
    verify : {"columnar", "scalar"}, default ``"columnar"``
        Verification path: the blockwise pairwise kernel, or the
        per-pair walk.  The returned pairs are bit-identical either way;
        only the cost counters differ (the scalar walk skips
        size-filtered Jaccard pairs before computing a similarity, the
        kernel scores every cell of a surviving group pair).
    max_cells : int, optional
        Cap on the kernel's intermediate buffers, in int64 cells.
    profiles : tuple, optional
        A precomputed :func:`group_join_profiles` for this TGM (must
        reflect the current memberships).

    Returns
    -------
    JoinResult
        ``pairs`` — sorted ``(x, y, Sim(S_x, S_y))`` triples with
        ``x < y`` (asymmetric measures are oriented by record index) —
        plus the cost counters in ``stats``.

    Examples
    --------
    >>> from repro import Dataset, LES3
    >>> from repro.core import similarity_self_join
    >>> dataset = Dataset.from_token_lists(
    ...     [["a", "b"], ["a", "b", "c"], ["x", "y"]]
    ... )
    >>> engine = LES3.build(dataset, num_groups=2)
    >>> similarity_self_join(dataset, engine.tgm, 0.5).pairs
    [(0, 1, 0.6666666666666666)]
    """
    _check_join_args(threshold, verify)
    measure = tgm.measure
    stats = QueryStats()
    pairs: list[tuple[int, int, float]] = []
    groups = tgm.group_members
    vocab, min_sizes, _ = profiles if profiles is not None else group_join_profiles(
        dataset, groups
    )
    caps = _vocab_caps_self(vocab, max_cells)
    bounds = _pair_bound_matrix(measure, caps, min_sizes, min_sizes)
    view = dataset.columnar() if verify == "columnar" else None
    jaccard = isinstance(measure, JaccardSimilarity)
    for a in range(len(groups)):
        if not groups[a]:
            continue
        for b in range(a, len(groups)):
            if not groups[b]:
                continue
            stats.groups_scored += 1
            if bounds[a, b] < threshold:
                stats.groups_pruned += 1
                continue
            if view is None:
                _verify_pair_scalar(
                    dataset, measure, jaccard, threshold,
                    groups[a], groups[b], a == b, pairs, stats,
                )
            else:
                _verify_pair_columnar(
                    view, measure, threshold,
                    groups[a], groups[b], a == b, pairs, stats, max_cells,
                )
    pairs.sort()
    stats.result_size = len(pairs)
    return JoinResult(pairs, stats)


def similarity_join_between(
    dataset: Dataset,
    tgm_a: TokenGroupMatrix,
    tgm_b: TokenGroupMatrix,
    threshold: float,
    verify: str = "columnar",
    max_cells: int = DEFAULT_TILE_CELLS,
    profiles_a: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    profiles_b: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> JoinResult:
    """All cross pairs between two TGMs over one shared dataset.

    Both TGMs must index record subsets of ``dataset`` — disjoint, as the
    shards of a :class:`~repro.distributed.sharded.ShardedLES3` are — and
    agree on the measure.  Only pairs with one record in each TGM are
    returned (a record the TGMs share is never paired with itself, in
    either verify mode); combined with each TGM's
    :func:`similarity_self_join` this tiles the full self-join exactly
    once, which is how the sharded join stays bit-identical to the
    single-engine one.  ``profiles_a`` / ``profiles_b`` accept
    precomputed :func:`group_join_profiles` for the respective TGMs.
    """
    _check_join_args(threshold, verify)
    if tgm_a.measure.name != tgm_b.measure.name:
        raise ValueError(
            f"cannot join across measures {tgm_a.measure.name!r} and "
            f"{tgm_b.measure.name!r} — bounds would be unsound"
        )
    measure = tgm_a.measure
    stats = QueryStats()
    pairs: list[tuple[int, int, float]] = []
    vocab_a, mins_a, cols_a = profiles_a if profiles_a is not None else (
        group_join_profiles(dataset, tgm_a.group_members)
    )
    vocab_b, mins_b, cols_b = profiles_b if profiles_b is not None else (
        group_join_profiles(dataset, tgm_b.group_members)
    )
    # The two profiles cover different token column spaces; align them on
    # the shared tokens.  Exact: a token two records share is in both
    # column sets by construction, so no overlap escapes the projection.
    _, idx_a, idx_b = np.intersect1d(
        cols_a, cols_b, assume_unique=True, return_indices=True
    )
    caps = _vocab_caps(
        np.ascontiguousarray(vocab_a[:, idx_a]),
        np.ascontiguousarray(vocab_b[:, idx_b]),
        max_cells,
    )
    bounds = _pair_bound_matrix(measure, caps, mins_a, mins_b)
    view = dataset.columnar() if verify == "columnar" else None
    jaccard = isinstance(measure, JaccardSimilarity)
    for a, members_a in enumerate(tgm_a.group_members):
        if not members_a:
            continue
        for b, members_b in enumerate(tgm_b.group_members):
            if not members_b:
                continue
            stats.groups_scored += 1
            if bounds[a, b] < threshold:
                stats.groups_pruned += 1
                continue
            if view is None:
                _verify_pair_scalar(
                    dataset, measure, jaccard, threshold,
                    members_a, members_b, False, pairs, stats,
                )
            else:
                _verify_pair_columnar(
                    view, measure, threshold,
                    members_a, members_b, False, pairs, stats, max_cells,
                )
    pairs.sort()
    stats.result_size = len(pairs)
    return JoinResult(pairs, stats)
