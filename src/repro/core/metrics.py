"""Query-cost accounting and the pruning-efficiency metric (Definition 2.3).

Every search records a :class:`QueryStats`; the PE formulas match the paper:

* kNN:   ``PE = (|D| - (|S_Q| - k)) / |D|``
* range: ``PE = (|D| - (|S_Q| - |R|)) / |D|``

where ``S_Q`` is the candidate collection whose similarities were actually
computed and ``R`` the result collection.  A perfect filter verifies only
the answers, giving ``PE = 1``; the brute force verifies everything, giving
``PE = k / |D|`` (resp. ``|R| / |D|``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryStats", "knn_pruning_efficiency", "range_pruning_efficiency"]


@dataclass
class QueryStats:
    """Cost counters accumulated while answering one query."""

    candidates_verified: int = 0
    similarity_computations: int = 0
    groups_scored: int = 0
    groups_pruned: int = 0
    columns_visited: int = 0
    result_size: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one."""
        self.candidates_verified += other.candidates_verified
        self.similarity_computations += other.similarity_computations
        self.groups_scored += other.groups_scored
        self.groups_pruned += other.groups_pruned
        self.columns_visited += other.columns_visited
        self.result_size += other.result_size


def knn_pruning_efficiency(database_size: int, candidates: int, k: int) -> float:
    """PE for a kNN query per Definition 2.3."""
    if database_size <= 0:
        return 1.0
    return (database_size - (candidates - k)) / database_size


def range_pruning_efficiency(database_size: int, candidates: int, result_size: int) -> float:
    """PE for a range query per Definition 2.3."""
    if database_size <= 0:
        return 1.0
    return (database_size - (candidates - result_size)) / database_size
