"""Saving and loading a built LES3 engine.

Partitioning (model training) is the expensive build step; persisting the
result makes the index reusable across processes.  The on-disk layout is a
directory of human-auditable files — no pickling:

    <dir>/
      manifest.json    # measure, backend, universe size, format version,
                       # verify mode, logically deleted record indices
      dataset.txt      # one set per line (external tokens)
      groups.json      # record-index lists per group

The TGM is rebuilt from the groups at load time (cheaper than
serialising bitmaps, and immune to backend format drift).

Deletes are logical: a removed record keeps its line in ``dataset.txt``
(indices are stable) but belongs to no group.  Format v2 records those
indices in the manifest's ``deleted`` list so the load-time coverage
check can tell an intentional tombstone from a corrupt ``groups.json``;
v1 directories (written before deletes were persistable) are still read,
with an empty deleted set.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.columnar import VERIFY_MODES
from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.similarity import get_measure
from repro.core.tgm import TokenGroupMatrix

__all__ = ["save_engine", "load_engine"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_engine(engine: LES3, directory: str | Path) -> None:
    """Persist a built engine to ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    engine.dataset.save(directory / "dataset.txt")
    with open(directory / "groups.json", "w") as handle:
        json.dump(engine.tgm.group_members, handle)
    # The engine's own delete log, NOT the records missing from the groups:
    # a record that is unassigned without having been removed is an orphan
    # (partitioner bug, hand-built TGM), and writing it as a tombstone
    # would silently legitimize it — the load-time coverage check must
    # keep catching that mismatch.
    deleted = sorted(engine.removed)
    manifest = {
        "format_version": _FORMAT_VERSION,
        "measure": engine.measure.name,
        "backend": engine.tgm.backend,
        "num_records": len(engine.dataset),
        "universe_size": len(engine.dataset.universe),
        "verify": engine.verify,
        "deleted": deleted,
    }
    with open(directory / "manifest.json", "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_engine(directory: str | Path) -> LES3:
    """Load an engine persisted by :func:`save_engine`.

    Reads the current format (v2) and v1 directories (no ``deleted`` /
    ``verify`` fields: nothing was removed, verification defaults to
    columnar).  The groups plus the deleted list must cover the dataset
    exactly once; the loaded engine re-applies the deletions, so queries
    answer identically to the engine that was saved.
    """
    directory = Path(directory)
    with open(directory / "manifest.json") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported index format version {manifest.get('format_version')!r}"
        )
    dataset = Dataset.load(directory / "dataset.txt")
    if len(dataset) != manifest["num_records"]:
        raise ValueError(
            f"dataset.txt holds {len(dataset)} records, manifest says "
            f"{manifest['num_records']} — index directory is corrupt"
        )
    deleted_raw = manifest.get("deleted", [])
    if not isinstance(deleted_raw, list) or not all(
        isinstance(index, int) and not isinstance(index, bool)
        and 0 <= index < len(dataset)
        for index in deleted_raw
    ):
        raise ValueError(
            "manifest 'deleted' must list record indices inside the dataset"
        )
    deleted = set(deleted_raw)
    verify = manifest.get("verify", "columnar")
    if verify not in VERIFY_MODES:
        raise ValueError(
            f"manifest 'verify' must be one of {VERIFY_MODES}, got {verify!r}"
        )
    with open(directory / "groups.json") as handle:
        groups = json.load(handle)
    assigned = sorted(index for group in groups for index in group)
    expected = sorted(set(range(len(dataset))) - deleted)
    if assigned != expected:
        raise ValueError(
            "groups.json does not cover the dataset exactly once "
            "(manifest-deleted records excepted)"
        )
    tgm = TokenGroupMatrix(
        dataset, groups, get_measure(manifest["measure"]), manifest["backend"]
    )
    engine = LES3(dataset, tgm, verify=verify)
    engine.removed = set(deleted)
    return engine
