"""Saving and loading a built LES3 engine.

Partitioning (model training) is the expensive build step; persisting the
result makes the index reusable across processes.  The on-disk layout is a
directory of human-auditable files — no pickling:

    <dir>/
      manifest.json    # measure, backend, universe size, format version
      dataset.txt      # one set per line (external tokens)
      groups.json      # record-index lists per group

The TGM is rebuilt from the groups at load time (cheaper than
serialising bitmaps, and immune to backend format drift).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.similarity import get_measure
from repro.core.tgm import TokenGroupMatrix

__all__ = ["save_engine", "load_engine"]

_FORMAT_VERSION = 1


def save_engine(engine: LES3, directory: str | Path) -> None:
    """Persist a built engine to ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    engine.dataset.save(directory / "dataset.txt")
    with open(directory / "groups.json", "w") as handle:
        json.dump(engine.tgm.group_members, handle)
    manifest = {
        "format_version": _FORMAT_VERSION,
        "measure": engine.measure.name,
        "backend": engine.tgm.backend,
        "num_records": len(engine.dataset),
        "universe_size": len(engine.dataset.universe),
    }
    with open(directory / "manifest.json", "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_engine(directory: str | Path) -> LES3:
    """Load an engine persisted by :func:`save_engine`."""
    directory = Path(directory)
    with open(directory / "manifest.json") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported index format version {manifest.get('format_version')!r}"
        )
    dataset = Dataset.load(directory / "dataset.txt")
    if len(dataset) != manifest["num_records"]:
        raise ValueError(
            f"dataset.txt holds {len(dataset)} records, manifest says "
            f"{manifest['num_records']} — index directory is corrupt"
        )
    with open(directory / "groups.json") as handle:
        groups = json.load(handle)
    assigned = sorted(index for group in groups for index in group)
    if assigned != list(range(len(dataset))):
        raise ValueError("groups.json does not cover the dataset exactly once")
    tgm = TokenGroupMatrix(
        dataset, groups, get_measure(manifest["measure"]), manifest["backend"]
    )
    return LES3(dataset, tgm)
