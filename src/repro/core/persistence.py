"""Saving and loading a built LES3 engine.

Partitioning (model training) is the expensive build step; persisting the
result makes the index reusable across processes.  The on-disk layout is a
directory of small files — no pickling:

    <dir>/
      manifest.json    # measure, backend, universe size, format version,
                       # verify mode, logically deleted record indices,
                       # generation epoch (v4)
      dataset.txt      # one set per line (external tokens) — interchange form
      dataset.bin      # binary columnar dataset (CSR arrays + universe),
                       # the np.memmap target of mode="mmap" loads
      groups.json      # record-index lists per group
      delta.log        # write-ahead log of post-save mutations (absent on
                       # a freshly saved/compacted generation) — see
                       # repro.core.delta

The TGM is rebuilt from the groups at load time (cheaper than
serialising bitmaps, and immune to backend format drift).
:func:`load_engine` reads the dataset either way: ``mode="memory"``
parses the text file into records, ``mode="mmap"`` maps the binary
columnar file (:mod:`repro.storage.columnar_file`) so queries run
without materializing records at all.

Deletes are logical: a removed record keeps its line in ``dataset.txt``
(indices are stable) but belongs to no group.  Format v2 records those
indices in the manifest's ``deleted`` list so the load-time coverage
check can tell an intentional tombstone from a corrupt ``groups.json``;
v1 directories (written before deletes were persistable) are still read,
with an empty deleted set.

The building blocks — :func:`write_index_files`, :func:`read_index_json`,
:func:`parse_manifest_state`, :func:`read_groups` — are shared with the
sharded lifecycle (:mod:`repro.distributed.persistence`): each shard
subdirectory of a sharded save carries the same v2 ``manifest.json`` +
``groups.json`` pair, so the v2 invariants (``deleted``, ``verify``)
carry over unchanged.  See ``docs/persistence.md`` for the full on-disk
format reference.

Every integrity failure raises :class:`PersistenceError` (a
:class:`ValueError` subclass), never a wrong-answer engine.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.core.columnar import VERIFY_MODES
from repro.core.dataset import Dataset
from repro.core.engine import LES3
from repro.core.similarity import get_measure
from repro.core.tgm import TokenGroupMatrix
from repro.testing.faults import fault_point

__all__ = [
    "PersistenceError",
    "atomic_directory",
    "recover_interrupted_swap",
    "manifest_epoch",
    "save_engine",
    "load_engine",
    "engine_manifest",
    "write_index_files",
    "write_dataset_files",
    "open_mapped_dataset",
    "read_index_json",
    "parse_manifest_state",
    "read_groups",
    "file_digest",
    "check_dataset_digest",
    "SHARDED_MANIFEST_KEY",
    "DATASET_BIN",
    "LOAD_MODES",
]

_FORMAT_VERSION = 4
_SUPPORTED_VERSIONS = (1, 2, 3, 4)

#: File name of the binary columnar dataset written next to ``dataset.txt``
#: by every v3 save (single-engine and sharded alike).
DATASET_BIN = "dataset.bin"

#: Load modes of :func:`load_engine` (``load_sharded`` adds ``"lazy"``).
LOAD_MODES = ("memory", "mmap")

#: Manifest key that marks a directory as a *sharded* save.  The single
#: format discriminator shared by :func:`read_index_manifest`, the
#: sharded loader, and the CLI's auto-detection
#: (:func:`repro.distributed.persistence.is_sharded_index`).
SHARDED_MANIFEST_KEY = "sharded_format_version"


def file_digest(path: str | Path) -> str:
    """``sha256:<hex>`` over a file's bytes (the manifest digest format)."""
    return "sha256:" + hashlib.sha256(Path(path).read_bytes()).hexdigest()


def check_dataset_digest(manifest: dict, directory: Path) -> None:
    """Verify ``dataset.txt`` against the manifest's recorded digest.

    Manifests written before the digest existed (single-engine saves up
    to v2-without-digest) simply skip the check; when the field is
    present, a mismatch — tampering, or a re-save that crashed between
    the dataset write and the manifest write — refuses to load.
    """
    recorded = manifest.get("dataset_digest")
    if recorded is None:
        return
    actual = file_digest(directory / "dataset.txt")
    if recorded != actual:
        raise PersistenceError(
            f"dataset.txt digest mismatch (manifest {recorded!r}, file "
            f"{actual!r}) — index directory is corrupt or mid-rewrite"
        )


class PersistenceError(ValueError):
    """An index directory cannot be read or written safely.

    Raised for every integrity failure — unknown format versions,
    truncated or non-JSON files, record-count mismatches, coverage
    violations, digest mismatches of sharded saves.  Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` call sites
    keep working.  Loading never "repairs" a corrupt directory: for an
    exact search engine a silently wrong index is the worst failure
    mode, so any inconsistency raises instead of answering queries.
    """


# -- crash-safe directory replacement --------------------------------------


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_tree(root: Path) -> None:
    """fsync every file, then every directory, of ``root`` (bottom-up)."""
    for dirpath, _dirnames, filenames in os.walk(root, topdown=False):
        for name in sorted(filenames):
            relative = os.path.relpath(os.path.join(dirpath, name), root)
            fault_point("save.fsync_file", relative)
            _fsync_path(Path(dirpath) / name)
        fault_point("save.fsync_dir", os.path.relpath(dirpath, root))
        _fsync_path(Path(dirpath))


def _clear_stale_siblings(target: Path) -> None:
    """Remove leftovers of crashed saves (``<name>.tmp-*`` / ``<name>.old-*``)."""
    for pattern in (f"{target.name}.tmp-*", f"{target.name}.old-*"):
        for stale in target.parent.glob(pattern):
            shutil.rmtree(stale, ignore_errors=True)


@contextmanager
def atomic_directory(target: str | Path) -> Iterator[Path]:
    """Build a directory crash-safely: stage, fsync, atomically swap.

    The block receives a fresh staging directory (``<target>.tmp-<pid>``,
    a sibling so the rename stays within one filesystem) and writes the
    full new contents into it.  On normal exit every staged file and
    directory is fsynced, then the staging directory is renamed into
    place — replacing an existing generation via a two-step swap through
    ``<target>.old-<pid>`` — and the parent directory is fsynced so the
    rename itself is durable.

    A crash (or exception) at *any* point leaves ``target`` either the
    complete old save, absent (mid-swap, with the old generation parked
    at the ``.old-<pid>`` sibling), or the complete new save — never a
    half-written directory.  Stale ``.tmp-*`` / ``.old-*`` siblings from
    crashed saves are cleared on the next save of the same target;
    loaders heal the absent-mid-swap case by restoring the parked old
    generation (:func:`recover_interrupted_swap`) before reading.

    >>> import tempfile, os
    >>> parent = tempfile.mkdtemp()
    >>> with atomic_directory(os.path.join(parent, "gen")) as staging:
    ...     _ = (staging / "data.txt").write_text("v1")
    >>> sorted(os.listdir(os.path.join(parent, "gen")))
    ['data.txt']
    """
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    _clear_stale_siblings(target)
    staging = target.parent / f"{target.name}.tmp-{os.getpid()}"
    staging.mkdir()
    try:
        yield staging
        _fsync_tree(staging)
        fault_point("save.swap", str(target))
        if target.exists():
            retired = target.parent / f"{target.name}.old-{os.getpid()}"
            os.rename(target, retired)
            fault_point("save.swap_mid", str(target))
            os.rename(staging, target)
            fault_point("save.retire", str(retired))
            shutil.rmtree(retired, ignore_errors=True)
        else:
            os.rename(staging, target)
        _fsync_path(target.parent)
        fault_point("save.committed", str(target))
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        # An exception between the two swap renames leaves the old
        # generation parked at the .old sibling: roll it back into place
        # (a hard crash there is healed by loaders never reading .old and
        # the next save clearing it — but for exceptions we can do better).
        retired = target.parent / f"{target.name}.old-{os.getpid()}"
        if retired.exists() and not target.exists():
            os.rename(retired, target)
        raise


def recover_interrupted_swap(target: str | Path) -> bool:
    """Heal a hard crash that struck between the two swap renames.

    A SIGKILL after the old generation was parked at ``.old-<pid>`` but
    before the staged one was renamed in leaves ``target`` absent — with
    the complete old generation (its ``delta.log`` included) sitting in
    the parked sibling.  Exceptions roll this back inline; a hard kill
    cannot, so every loader calls this first: when ``target`` is absent
    and exactly one parked sibling exists, it is renamed back into place
    (and the orphaned staging directory discarded — whether it was fully
    fsynced is unknowable after a kill, the old generation never is).
    Returns True when a recovery happened.
    """
    target = Path(target)
    if target.exists():
        return False
    parked = sorted(target.parent.glob(f"{target.name}.old-*"))
    if len(parked) != 1:
        return False
    os.rename(parked[0], target)
    _fsync_path(target.parent)
    for stale in target.parent.glob(f"{target.name}.tmp-*"):
        shutil.rmtree(stale, ignore_errors=True)
    return True


# -- shared low-level pieces (also used by the sharded lifecycle) ----------


def manifest_epoch(manifest: dict) -> str:
    """The deterministic generation epoch of a v4 manifest.

    A ``sha256:`` digest over the manifest's canonical JSON (the
    ``epoch`` field itself excluded, so the value is well defined).  The
    epoch names a *generation*: process-pool workers and mmap readers
    key their caches on it, so a compaction — which produces a new
    manifest and therefore a new epoch — evicts every stale rehydration.
    Mutations logged to the delta segment extend the epoch with a
    ``+<ops>`` suffix instead of changing it (see
    :class:`repro.core.delta.DeltaSegment`).
    """
    body = {key: value for key, value in manifest.items() if key != "epoch"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def engine_manifest(
    measure: str,
    backend: str,
    num_records: int,
    universe_size: int,
    verify: str,
    deleted: list[int],
) -> dict:
    """The single-engine (and per-shard) manifest dictionary (format v4)."""
    return {
        "format_version": _FORMAT_VERSION,
        "measure": measure,
        "backend": backend,
        "num_records": num_records,
        "universe_size": universe_size,
        "verify": verify,
        "deleted": deleted,
    }


def write_index_files(directory: str | Path, groups: list[list[int]], manifest: dict) -> None:
    """Write ``groups.json`` + ``manifest.json`` into ``directory``.

    Creates the directory if missing.  This is the writer shared by
    :func:`save_engine` (which adds ``dataset.txt``) and the per-shard
    subdirectories of :func:`repro.distributed.persistence.save_sharded`
    (which store the dataset once at the top level instead).  A v4
    manifest that doesn't carry its ``epoch`` key yet gets it stamped
    here, once every content field is final.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if manifest.get("format_version", 0) >= 4 and "epoch" not in manifest:
        manifest["epoch"] = manifest_epoch(manifest)
    with open(directory / "groups.json", "w") as handle:
        json.dump(groups, handle)
    with open(directory / "manifest.json", "w") as handle:
        json.dump(manifest, handle, indent=2)


def write_dataset_files(dataset: Dataset, directory: Path) -> dict:
    """Write ``dataset.txt`` + ``dataset.bin``; return their digest fields.

    The text file remains the interchange format; the binary columnar
    file (:class:`~repro.storage.columnar_file.ColumnarFileWriter`) is
    what the ``mode="mmap"`` / ``mode="lazy"`` load paths map.  Returns
    ``{"dataset_digest": ..., "dataset_bin_digest": ...}`` for the
    manifest.
    """
    from repro.storage.columnar_file import ColumnarFileWriter

    dataset.save(directory / "dataset.txt")
    ColumnarFileWriter(directory / DATASET_BIN).write(dataset)
    return {
        "dataset_digest": file_digest(directory / "dataset.txt"),
        "dataset_bin_digest": file_digest(directory / DATASET_BIN),
    }


def open_mapped_dataset(directory: Path, manifest: dict) -> Dataset:
    """Open ``dataset.bin`` as a mapped dataset, cross-checked with the manifest.

    The binary header's record and universe totals must agree with the
    manifest (a mismatch means the directory holds files from different
    saves); the mapped dataset is otherwise served lazily — see
    :meth:`~repro.core.dataset.Dataset.from_columnar_file`.
    """
    from repro.storage.columnar_file import ColumnarFileReader

    path = directory / DATASET_BIN
    if not path.is_file():
        raise PersistenceError(
            f"{directory} has no {DATASET_BIN} — it was saved before format v3; "
            "load it with mode='memory' (or re-save it to add the binary dataset)"
        )
    reader = ColumnarFileReader(path, mode="mmap")
    for field, actual in (
        ("num_records", reader.num_records),
        ("universe_size", reader.universe_size),
    ):
        if manifest.get(field) is not None and manifest[field] != actual:
            raise PersistenceError(
                f"{DATASET_BIN} header says {field}={actual}, manifest says "
                f"{manifest[field]} — index directory mixes files from different saves"
            )
    return Dataset.from_columnar_file(reader)


def read_index_json(path: str | Path, description: str) -> Any:
    """Parse one JSON file of an index directory.

    A missing file propagates :class:`FileNotFoundError` (the caller
    decides whether that means "no index here" or "corrupt index"); a
    truncated or otherwise non-JSON file raises :class:`PersistenceError`
    naming the file.
    """
    path = Path(path)
    try:
        with open(path) as handle:
            return json.load(handle)
    except json.JSONDecodeError as error:
        raise PersistenceError(
            f"{description} at {path} is not valid JSON "
            f"(truncated write or corruption): {error}"
        ) from error


def parse_manifest_state(manifest: dict, num_records: int) -> tuple[set[int], str]:
    """Validate and extract the v2 state fields: ``(deleted, verify)``.

    Applies the v1 defaults (nothing deleted, columnar verification) when
    the fields are absent; raises :class:`PersistenceError` when they are
    present but malformed.
    """
    deleted_raw = manifest.get("deleted", [])
    if not isinstance(deleted_raw, list) or not all(
        isinstance(index, int) and not isinstance(index, bool)
        and 0 <= index < num_records
        for index in deleted_raw
    ):
        raise PersistenceError(
            "manifest 'deleted' must list record indices inside the dataset"
        )
    verify = manifest.get("verify", "columnar")
    if verify not in VERIFY_MODES:
        raise PersistenceError(
            f"manifest 'verify' must be one of {VERIFY_MODES}, got {verify!r}"
        )
    return set(deleted_raw), verify


def read_groups(directory: str | Path) -> list[list[int]]:
    """Read and shape-check ``groups.json`` (content checks are separate)."""
    groups = read_index_json(Path(directory) / "groups.json", "groups file")
    if not isinstance(groups, list) or not all(
        isinstance(group, list)
        and all(isinstance(index, int) and not isinstance(index, bool) for index in group)
        for group in groups
    ):
        raise PersistenceError(
            f"groups.json in {directory} must hold lists of record indices"
        )
    return groups


def check_exact_cover(
    groups: list[list[int]], deleted: set[int], num_records: int, context: str
) -> None:
    """Groups plus tombstones must cover ``range(num_records)`` exactly once."""
    assigned = sorted(index for group in groups for index in group)
    expected = sorted(set(range(num_records)) - deleted)
    if assigned != expected:
        raise PersistenceError(
            f"{context} does not cover the dataset exactly once "
            "(manifest-deleted records excepted)"
        )


def read_index_manifest(directory: str | Path) -> dict:
    """Read a *single-engine* manifest, rejecting foreign formats clearly."""
    manifest = read_index_json(Path(directory) / "manifest.json", "index manifest")
    if not isinstance(manifest, dict):
        raise PersistenceError(f"index manifest in {directory} must be a JSON object")
    if SHARDED_MANIFEST_KEY in manifest:
        raise PersistenceError(
            f"{directory} holds a sharded index; load it with "
            "repro.distributed.load_sharded (or `repro` commands, which "
            "auto-detect it)"
        )
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported index format version {manifest.get('format_version')!r}"
        )
    return manifest


# -- the public single-engine API ------------------------------------------


def save_engine(engine: LES3, directory: str | Path) -> None:
    """Persist a built engine to ``directory`` (created if missing).

    Parameters
    ----------
    engine : LES3
        A built engine; its dataset, group structure, verify mode, and
        delete log are all captured.
    directory : str or Path
        Target directory; created if missing, atomically replaced if
        present.

    Returns
    -------
    None
        The directory holds ``manifest.json``, ``dataset.txt``,
        ``dataset.bin`` (the binary columnar dataset the mmap load path
        maps), and ``groups.json`` afterwards (format v3).

    Notes
    -----
    The save is **crash-safe**: all files are written into a
    ``<directory>.tmp-<pid>`` sibling, fsynced, and renamed into place
    (:func:`atomic_directory`).  A crash at any point leaves the target
    either the previous save, absent, or the new save — never a
    half-written directory that :func:`repro.load` would reject.

    See Also
    --------
    load_engine : the inverse operation.
    repro.distributed.persistence.save_sharded : the sharded variant.

    Examples
    --------
    >>> import tempfile, os, repro
    >>> from repro import Dataset, LES3
    >>> from repro.core import save_engine
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> engine = LES3.build(dataset, num_groups=2)
    >>> path = os.path.join(tempfile.mkdtemp(), "index")
    >>> save_engine(engine, path)
    >>> repro.load(path).knn(["a", "b"], k=1).matches
    [(0, 1.0)]
    >>> repro.load(path, mode="mmap").knn(["a", "b"], k=1).matches
    [(0, 1.0)]
    """
    # The engine's own delete log, NOT the records missing from the groups:
    # a record that is unassigned without having been removed is an orphan
    # (partitioner bug, hand-built TGM), and writing it as a tombstone
    # would silently legitimize it — the load-time coverage check must
    # keep catching that mismatch.
    from repro.core.delta import DeltaSegment

    manifest = engine_manifest(
        measure=engine.measure.name,
        backend=engine.tgm.backend,
        num_records=len(engine.dataset),
        universe_size=len(engine.dataset.universe),
        verify=engine.verify,
        deleted=sorted(engine.removed),
    )
    with atomic_directory(directory) as staging:
        manifest.update(write_dataset_files(engine.dataset, staging))
        # The staged generation carries no delta.log: a save folds every
        # pending delta op into the new base, which is what compaction is.
        write_index_files(staging, engine.tgm.group_members, manifest)
    engine._delta = DeltaSegment(directory, base_epoch=manifest["epoch"])


def load_engine(directory: str | Path, mode: str = "memory") -> LES3:
    """Deprecated alias of :func:`repro.load` for single-engine saves.

    Kept as a documented thin wrapper: it behaves exactly like
    :func:`_load_engine` always has, but new code should call
    :func:`repro.load`, which auto-detects single-engine vs sharded
    directories and accepts one uniform set of options for both.  See
    the migration note in ``docs/persistence.md``.
    """
    warnings.warn(
        "load_engine is deprecated; use repro.load(directory, mode=...) — "
        "it auto-detects single-engine and sharded saves",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_engine(directory, mode)


def _load_engine(directory: str | Path, mode: str = "memory") -> LES3:
    """Load an engine persisted by :func:`save_engine`.

    Reads the current format (v3) as well as v2 and v1 directories (v1:
    no ``deleted`` / ``verify`` fields — nothing was removed,
    verification defaults to columnar).  The groups plus the deleted
    list must cover the dataset exactly once; the loaded engine
    re-applies the deletions, so queries answer identically to the
    engine that was saved.

    Parameters
    ----------
    directory : str or Path
        An index directory written by :func:`save_engine`.
    mode : {"memory", "mmap"}, default ``"memory"``
        ``"memory"`` parses ``dataset.txt`` into Python records (any
        format version).  ``"mmap"`` maps the binary columnar
        ``dataset.bin`` (v3 saves) with ``np.memmap`` instead: queries
        read only the pages they touch and no record objects are
        materialized — answers are bit-identical either way.

    Returns
    -------
    LES3
        A rebuilt engine answering knn/range/join queries identically to
        the one that was saved, delete log and verify mode included.

    Raises
    ------
    PersistenceError
        If any file is corrupt, the format version is unknown, the
        groups don't cover the dataset exactly once, ``mode="mmap"`` is
        asked of a pre-v3 directory (no ``dataset.bin``), or the
        directory holds a *sharded* index (use
        :func:`repro.distributed.load_sharded` for those).
    FileNotFoundError
        If the directory or one of its files does not exist.
    """
    from repro.core.delta import (
        DeltaSegment,
        apply_group_ops,
        apply_insert_op,
        read_delta_ops,
    )

    if mode not in LOAD_MODES:
        raise ValueError(f"unknown load mode {mode!r}; expected one of {LOAD_MODES}")
    directory = Path(directory)
    recover_interrupted_swap(directory)
    manifest = read_index_manifest(directory)
    if mode == "mmap":
        dataset = open_mapped_dataset(directory, manifest)
    else:
        check_dataset_digest(manifest, directory)
        dataset = Dataset.load(directory / "dataset.txt")
    if len(dataset) != manifest["num_records"]:
        raise PersistenceError(
            f"dataset.txt holds {len(dataset)} records, manifest says "
            f"{manifest['num_records']} — index directory is corrupt"
        )
    deleted, verify = parse_manifest_state(manifest, len(dataset))
    groups = read_groups(directory)
    check_exact_cover(groups, deleted, len(dataset), "groups.json")
    # Replay the write-ahead delta log over the immutable base: inserts
    # re-append their records (index-checked against the log), removes
    # become tombstones, and the group lists absorb both before the TGM
    # is built — so base + delta answers bit-identically to an engine
    # rebuilt from the folded state.
    ops = read_delta_ops(directory)
    removed = set(deleted)
    for op in ops:
        if op["op"] == "insert":
            apply_insert_op(dataset, op)
        else:
            removed.add(op["index"])
    if ops:
        apply_group_ops(groups, ops)
    tgm = TokenGroupMatrix(
        dataset, groups, get_measure(manifest["measure"]), manifest["backend"]
    )
    engine = LES3(dataset, tgm, verify=verify)
    engine.removed = removed
    engine._delta = DeltaSegment(
        directory, base_epoch=manifest.get("epoch", ""), num_ops=len(ops)
    )
    return engine
