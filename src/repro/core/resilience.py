"""Resilience primitives: deadlines, retry policy, circuit breaker.

This module is dependency-free and import-cycle-neutral: it is used by
the engines (:mod:`repro.core.engine`, :mod:`repro.distributed.sharded`),
the public API (:mod:`repro.api`) and the serving layer
(:mod:`repro.serve`), none of which it imports back.

>>> from repro.core.resilience import CircuitBreaker
>>> clock = iter([0.0, 1.0, 2.0, 40.0, 41.0]).__next__
>>> breaker = CircuitBreaker(failure_threshold=2, reset_seconds=30.0, clock=clock)
>>> breaker.record_failure(); breaker.record_failure(); breaker.state
'open'
>>> breaker.allow()   # at t=1.0: still cooling down
False
>>> breaker.allow()   # t=2.0: still open
False
>>> breaker.allow()   # t=40.0: cooldown elapsed, half-open probe allowed
True
>>> breaker.state
'half_open'
>>> breaker.record_success(); breaker.state
'closed'
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from threading import Lock
from typing import Callable


class DeadlineExceeded(TimeoutError):
    """A query ran past its deadline (HTTP 504 at the serving layer)."""


class Deadline:
    """A point in monotonic time a query must not run past.

    >>> Deadline(60.0).expired()
    False
    >>> Deadline(0.0).remaining() <= 0.0
    True
    """

    __slots__ = ("expires_at",)

    def __init__(
        self, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.expires_at = clock() + float(seconds)

    @classmethod
    def from_timeout_ms(cls, timeout_ms: float | None) -> "Deadline | None":
        """Build from a request-level ``timeout_ms`` (``None`` passes through)."""
        if timeout_ms is None:
            return None
        return cls(float(timeout_ms) / 1000.0)

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            suffix = f" ({context})" if context else ""
            raise DeadlineExceeded(f"deadline exceeded{suffix}")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and jitter.

    ``attempts`` is the *total* number of tries (1 = no retry).  The
    delay before retry ``n`` (1-based) is ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, with a uniform jitter of up to ``jitter``
    of itself subtracted so herds of retries decorrelate.

    >>> policy = RetryPolicy(attempts=3, base_delay=0.1, multiplier=2.0, jitter=0.0)
    >>> [round(policy.delay(n), 3) for n in range(1, 3)]
    [0.1, 0.2]
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before the retry following failed try ``attempt`` (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and raw:
            raw -= (rng or random).uniform(0.0, self.jitter * raw)
        return raw


class CircuitBreaker:
    """Per-resource breaker: closed → open after N consecutive failures,
    then a timed half-open probe decides whether to re-close.

    All transitions happen inside :meth:`allow` / :meth:`record_success` /
    :meth:`record_failure`; nothing blocks, so callers can hold their own
    locks around it.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_seconds < 0:
            raise ValueError("reset_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May the protected call be attempted right now?

        While open, returns ``False`` until ``reset_seconds`` elapse,
        then admits exactly one half-open probe at a time.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.reset_seconds:
                    self._state = "half_open"
                    return True
                return False
            return False  # half_open: a probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self._clock()
