"""Query processing over the TGM: range search and kNN search (Section 6).

Both searches are *exact*: groups are only skipped when the TGM upper bound
proves no member can qualify, and every surviving member is verified with
the exact similarity.

kNN uses best-first group visiting: groups are scored once
(``O(n · |Q|)``), sorted by descending bound, and visited until the next
bound cannot beat the current kth similarity.  Ties on similarity are broken
by record index so results are deterministic.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity
from repro.core.tgm import TokenGroupMatrix

__all__ = ["SearchResult", "range_search", "knn_search", "prepare_query"]


class SearchResult:
    """Matches plus the cost counters of the query that produced them."""

    __slots__ = ("matches", "stats")

    def __init__(self, matches: list[tuple[int, float]], stats: QueryStats) -> None:
        self.matches = matches
        self.stats = stats

    def indices(self) -> list[int]:
        return [index for index, _ in self.matches]

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)


def prepare_query(
    query: SetRecord, universe_size: int
) -> tuple[list[int], list[int], int]:
    """Split a query into (known token ids, their multiplicities, full |Q|).

    Token ids at or beyond ``universe_size`` are unseen (Section 3.1): they
    contribute nothing to any group bound but still count towards ``|Q|``.
    Multiplicities matter for multiset queries: a group covering token ``t``
    may contain a set carrying ``t`` at full query multiplicity, so the
    bound must credit ``count_Q(t)``, not 1.
    """
    known: list[int] = []
    weights: list[int] = []
    for token, count in query.counts().items():
        if token < universe_size:
            known.append(token)
            weights.append(count)
    return known, weights, len(query)


def range_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    query: SetRecord,
    threshold: float,
    measure: Similarity | None = None,
) -> SearchResult:
    """All sets with ``Sim(Q, S) >= threshold`` (Definition 2.2)."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    measure = measure if measure is not None else tgm.measure
    known, weights, query_size = prepare_query(query, tgm.universe_size)
    bounds = tgm.upper_bounds(known, query_size, weights)

    stats = QueryStats()
    stats.groups_scored = tgm.num_groups
    stats.columns_visited = len(known) * tgm.num_groups

    matches: list[tuple[int, float]] = []
    for group_id in np.flatnonzero(bounds >= threshold):
        for record_index in tgm.group_members[group_id]:
            similarity = measure(query, dataset.records[record_index])
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            if similarity >= threshold:
                matches.append((record_index, similarity))
    stats.groups_pruned = tgm.num_groups - int((bounds >= threshold).sum())
    matches.sort(key=lambda pair: (-pair[1], pair[0]))
    stats.result_size = len(matches)
    return SearchResult(matches, stats)


def knn_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    query: SetRecord,
    k: int,
    measure: Similarity | None = None,
) -> SearchResult:
    """The ``k`` most similar sets (Definition 2.1), best-first over groups."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    measure = measure if measure is not None else tgm.measure
    known, weights, query_size = prepare_query(query, tgm.universe_size)
    bounds = tgm.upper_bounds(known, query_size, weights)

    stats = QueryStats()
    stats.groups_scored = tgm.num_groups
    stats.columns_visited = len(known) * tgm.num_groups

    order = np.argsort(-bounds, kind="stable")
    # Top-k heap of (similarity, -record_index): the root is the weakest
    # current answer; -index makes ties prefer *smaller* record indices.
    heap: list[tuple[float, int]] = []
    visited_groups = 0
    for group_id in order:
        bound = bounds[group_id]
        if len(heap) >= k and bound < heap[0][0]:
            break
        if len(heap) >= k and bound == heap[0][0] == 0.0:
            break  # remaining groups share no token with the query
        visited_groups += 1
        for record_index in tgm.group_members[int(group_id)]:
            similarity = measure(query, dataset.records[record_index])
            stats.candidates_verified += 1
            stats.similarity_computations += 1
            entry = (similarity, -record_index)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
    stats.groups_pruned = tgm.num_groups - visited_groups

    matches = [(-neg_index, similarity) for similarity, neg_index in heap]
    matches.sort(key=lambda pair: (-pair[1], pair[0]))
    stats.result_size = len(matches)
    return SearchResult(matches, stats)
