"""Query processing over the TGM: range search and kNN search (Section 6).

Both searches are *exact*: groups are only skipped when the TGM upper bound
proves no member can qualify, and every surviving member is verified with
the exact similarity.

kNN uses best-first group visiting: groups are scored once
(``O(n · |Q|)``), sorted by descending bound, and visited until the next
bound cannot beat the current kth similarity.  Ties on similarity are broken
by record index so results are deterministic.

The building blocks are exposed for reuse: :func:`query_group_bounds`
scores one TGM, :func:`knn_visit_groups` / :func:`range_collect_groups`
verify one TGM's surviving groups into a shared heap / match list, and
:func:`finalize_result` applies the canonical ``(-similarity, index)``
tie-break and stats finalization.  The batch layer and the sharded engine
(:mod:`repro.distributed`) are built from the same pieces, so all query
paths share one definition of result order.

Verification runs through the columnar kernel by default
(``verify="columnar"``, :mod:`repro.core.columnar`): surviving groups are
scored in vectorized shots over the dataset's CSR view, with bit-identical
similarities; ``verify="scalar"`` keeps the per-record walk as the escape
hatch and test oracle.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from repro.core.columnar import GroupVerifier, make_verifier
from repro.core.dataset import Dataset
from repro.core.metrics import QueryStats
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity
from repro.core.tgm import TokenGroupMatrix

__all__ = [
    "SearchResult",
    "range_search",
    "knn_search",
    "prepare_query",
    "match_sort_key",
    "finalize_result",
    "query_group_bounds",
    "knn_visit_groups",
    "pad_zero_matches",
    "knn_heap_matches",
    "range_collect_groups",
]


class SearchResult:
    """Matches plus the cost counters of the query that produced them."""

    __slots__ = ("matches", "stats")

    def __init__(self, matches: list[tuple[int, float]], stats: QueryStats) -> None:
        self.matches = matches
        self.stats = stats

    def indices(self) -> list[int]:
        return [index for index, _ in self.matches]

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(self.matches)


def match_sort_key(match: tuple[int, float]) -> tuple[float, int]:
    """Canonical result order: similarity descending, record index ascending."""
    return (-match[1], match[0])


def finalize_result(matches: list[tuple[int, float]], stats: QueryStats) -> SearchResult:
    """Sort ``matches`` canonically, record the result size, wrap them up.

    Every query path — range, kNN, batch, and the sharded merge — funnels
    through here, so tie-breaking is identical everywhere by construction.
    """
    matches.sort(key=match_sort_key)
    stats.result_size = len(matches)
    return SearchResult(matches, stats)


def prepare_query(
    query: SetRecord, universe_size: int
) -> tuple[list[int], list[int], int]:
    """Split a query into (known token ids, their multiplicities, full |Q|).

    Token ids at or beyond ``universe_size`` are unseen (Section 3.1): they
    contribute nothing to any group bound but still count towards ``|Q|``.
    Multiplicities matter for multiset queries: a group covering token ``t``
    may contain a set carrying ``t`` at full query multiplicity, so the
    bound must credit ``count_Q(t)``, not 1.
    """
    known: list[int] = []
    weights: list[int] = []
    for token, count in query.counts().items():
        if token < universe_size:
            known.append(token)
            weights.append(count)
    return known, weights, len(query)


def query_group_bounds(
    tgm: TokenGroupMatrix, query: SetRecord, stats: QueryStats | None = None
) -> np.ndarray:
    """Score one TGM for a query: the per-group similarity upper bounds.

    When ``stats`` is given, the scoring cost (groups scored, TGM columns
    visited) is accumulated into it.
    """
    known, weights, query_size = prepare_query(query, tgm.universe_size)
    bounds = tgm.upper_bounds(known, query_size, weights)
    if stats is not None:
        stats.groups_scored += tgm.num_groups
        stats.columns_visited += len(known) * tgm.num_groups
    return bounds


def _verified_similarities(
    dataset: Dataset,
    query: SetRecord,
    members: list[int],
    measure: Similarity,
    verifier: GroupVerifier | None,
    stats: QueryStats,
) -> zip:
    """Exact similarities of one group's members, as (index, sim) pairs.

    The vectorized kernel scores the whole group in one shot; the scalar
    fallback walks one record at a time.  Either way every member counts
    once towards ``candidates_verified`` / ``similarity_computations`` and
    the similarities are bit-identical.
    """
    stats.candidates_verified += len(members)
    stats.similarity_computations += len(members)
    if verifier is not None:
        return zip(members, verifier(members).tolist())
    return zip(members, [measure(query, dataset.records[index]) for index in members])


def knn_visit_groups(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    query: SetRecord,
    k: int,
    bounds: np.ndarray,
    heap: list[tuple[float, int]],
    stats: QueryStats,
    measure: Similarity | None = None,
    zero_candidates: list[list[int]] | None = None,
    verifier: GroupVerifier | None = None,
) -> None:
    """Best-first visit of one TGM's groups, feeding a shared top-k heap.

    ``heap`` holds ``(similarity, -record_index)`` entries: the root is the
    weakest current answer; ``-index`` makes ties prefer *smaller* record
    indices.  The heap may already carry answers from other TGMs (the
    sharded scatter-gather) — pruning against it stays exact because a
    group is only skipped when its bound is *strictly* below the current
    kth similarity.

    With a ``verifier`` (the columnar kernel), each surviving group's
    members are scored in one vectorized shot; heap maintenance stays
    scalar but consumes the precomputed similarity vector.  Without one,
    each member is verified with the scalar ``measure(query, record)``
    walk.  Both paths produce bit-identical heaps and stats.

    Groups whose bound is exactly 0 share no token with the query: their
    members are provably at similarity 0 and are never verified.  Their
    member lists are appended to ``zero_candidates`` (when given) so
    :func:`pad_zero_matches` can pad an underfull result canonically.
    """
    measure = measure if measure is not None else tgm.measure
    order = np.argsort(-bounds, kind="stable")
    visited_groups = 0
    for position, group_id in enumerate(order):
        bound = bounds[group_id]
        if bound <= 0.0:
            # Bounds are sorted: this and all remaining groups are at 0.
            if zero_candidates is not None:
                for zero_group in order[position:]:
                    zero_candidates.append(tgm.group_members[int(zero_group)])
            break
        if len(heap) >= k and bound < heap[0][0]:
            break
        visited_groups += 1
        members = tgm.group_members[int(group_id)]
        scored = _verified_similarities(dataset, query, members, measure, verifier, stats)
        for record_index, similarity in scored:
            entry = (similarity, -record_index)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
    stats.groups_pruned += tgm.num_groups - visited_groups


def pad_zero_matches(
    heap: list[tuple[float, int]],
    k: int,
    zero_candidates: list[list[int]],
) -> None:
    """Pad an underfull top-k heap with zero-similarity records, canonically.

    Members of zero-bound groups are at similarity exactly 0 without
    verification.  When the result has fewer than ``k`` entries with
    positive similarity, the remaining slots go to the *smallest record
    indices* among all zero-similarity candidates — a canonical choice
    that does not depend on the partitioning or sharding, which is what
    makes single-engine and sharded results bit-identical.
    """
    if len(heap) >= k and heap[0][0] > 0.0:
        return
    positives = [entry for entry in heap if entry[0] > 0.0]
    zeros = {-neg_index for similarity, neg_index in heap if similarity == 0.0}
    for members in zero_candidates:
        zeros.update(members)
    slots = k - len(positives)
    heap[:] = positives + [(0.0, -index) for index in sorted(zeros)[:slots]]


def knn_heap_matches(heap: list[tuple[float, int]]) -> list[tuple[int, float]]:
    """Convert a top-k heap of ``(similarity, -index)`` into match pairs."""
    return [(-neg_index, similarity) for similarity, neg_index in heap]


def range_collect_groups(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    query: SetRecord,
    threshold: float,
    bounds: np.ndarray,
    matches: list[tuple[int, float]],
    stats: QueryStats,
    measure: Similarity | None = None,
    verifier: GroupVerifier | None = None,
) -> None:
    """Verify one TGM's surviving groups into a shared match list.

    With a ``verifier`` each surviving group is scored by the columnar
    kernel in one shot; the threshold filter then consumes the similarity
    vector.  Results and stats match the scalar path bit for bit.
    """
    measure = measure if measure is not None else tgm.measure
    surviving = np.flatnonzero(bounds >= threshold)
    # Range search verifies every member of every surviving group, so the
    # whole TGM's candidates can go through the kernel in one shot — one
    # gather/reduce instead of one per group.  Candidate order (groups in
    # id order, members in list order) matches the scalar walk, so the
    # match list comes out identical.
    candidates = [
        index for group_id in surviving for index in tgm.group_members[int(group_id)]
    ]
    scored = _verified_similarities(dataset, query, candidates, measure, verifier, stats)
    for record_index, similarity in scored:
        if similarity >= threshold:
            matches.append((record_index, similarity))
    stats.groups_pruned += tgm.num_groups - len(surviving)


def range_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    query: SetRecord,
    threshold: float,
    measure: Similarity | None = None,
    verify: str = "columnar",
) -> SearchResult:
    """All sets with ``Sim(Q, S) >= threshold`` (Definition 2.2).

    ``verify`` picks the verification path: ``"columnar"`` (the
    vectorized kernel, default) or ``"scalar"`` (the per-record walk).
    Results are bit-identical either way.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    measure = measure if measure is not None else tgm.measure
    stats = QueryStats()
    bounds = query_group_bounds(tgm, query, stats)
    matches: list[tuple[int, float]] = []
    verifier = make_verifier(dataset, query, measure, verify)
    range_collect_groups(
        dataset, tgm, query, threshold, bounds, matches, stats, measure, verifier
    )
    return finalize_result(matches, stats)


def knn_search(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    query: SetRecord,
    k: int,
    measure: Similarity | None = None,
    verify: str = "columnar",
) -> SearchResult:
    """The ``k`` most similar sets (Definition 2.1), best-first over groups.

    ``verify`` picks the verification path (``"columnar"`` kernel or
    ``"scalar"`` walk); results are bit-identical either way.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    measure = measure if measure is not None else tgm.measure
    stats = QueryStats()
    bounds = query_group_bounds(tgm, query, stats)
    heap: list[tuple[float, int]] = []
    zero_candidates: list[list[int]] = []
    verifier = make_verifier(dataset, query, measure, verify)
    knn_visit_groups(
        dataset, tgm, query, k, bounds, heap, stats, measure, zero_candidates, verifier
    )
    pad_zero_matches(heap, k, zero_candidates)
    return finalize_result(knn_heap_matches(heap), stats)
