"""Set records: the unit of storage in the database.

The paper supports both sets and multisets (Section 2).  A
:class:`SetRecord` stores token ids as a sorted integer tuple (multiset
semantics: duplicates preserved) together with the distinct-token frozenset
used for fast intersection.  Most of the evaluation uses plain sets; the
multiset paths are exercised by dedicated tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

__all__ = ["SetRecord", "overlap", "distinct_overlap"]


class SetRecord:
    """An immutable (multi)set of integer token ids.

    Parameters
    ----------
    tokens:
        Iterable of integer token ids.  Duplicates are preserved (multiset
        semantics).
    """

    __slots__ = ("_tokens", "_distinct", "_counts")

    def __init__(self, tokens: Iterable[int]) -> None:
        ordered = tuple(sorted(tokens))
        if not ordered:
            raise ValueError("a set record must contain at least one token")
        self._tokens: tuple[int, ...] = ordered
        self._distinct: frozenset[int] = frozenset(ordered)
        self._counts: Counter[int] | None = None
        if len(self._distinct) != len(ordered):
            self._counts = Counter(ordered)

    @property
    def tokens(self) -> tuple[int, ...]:
        """All token ids in sorted order (with duplicates)."""
        return self._tokens

    @property
    def distinct(self) -> frozenset[int]:
        """The distinct token ids."""
        return self._distinct

    @property
    def is_multiset(self) -> bool:
        """True when the record contains duplicate tokens."""
        return self._counts is not None

    def counts(self) -> Counter[int]:
        """Multiplicity of each token (computed lazily for plain sets)."""
        if self._counts is None:
            return Counter(self._tokens)
        return self._counts

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[int]:
        return iter(self._tokens)

    def __contains__(self, token_id: int) -> bool:
        return token_id in self._distinct

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetRecord):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self) -> int:
        return hash(self._tokens)

    def __repr__(self) -> str:
        body = ", ".join(str(t) for t in self._tokens[:8])
        suffix = ", ..." if len(self._tokens) > 8 else ""
        return f"SetRecord({{{body}{suffix}}})"

    def min_token(self) -> int:
        """Smallest token id; used by the min-token initial partitioner."""
        return self._tokens[0]


def distinct_overlap(a: SetRecord, b: SetRecord) -> int:
    """Number of *distinct* tokens shared by ``a`` and ``b``."""
    small, large = (a.distinct, b.distinct) if len(a.distinct) <= len(b.distinct) else (b.distinct, a.distinct)
    return sum(1 for token in small if token in large)


def overlap(a: SetRecord, b: SetRecord) -> int:
    """Multiset overlap: ``Σ_t min(count_a(t), count_b(t))``.

    Falls back to the distinct overlap when neither record is a multiset
    (the common case), avoiding Counter construction.
    """
    if not a.is_multiset and not b.is_multiset:
        return distinct_overlap(a, b)
    counts_a, counts_b = a.counts(), b.counts()
    if len(counts_a) > len(counts_b):
        counts_a, counts_b = counts_b, counts_a
    return sum(min(count, counts_b[token]) for token, count in counts_a.items() if token in counts_b)
