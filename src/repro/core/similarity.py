"""Set similarity measures and their TGM group upper bounds.

Theorem 3.1 (the *TGM Applicability Property*) says the TGM can serve a
measure ``Sim`` whenever, for ``R = Q ∩ S``:

1. ``Sim(Q, R) >= Sim(Q, S)``, and
2. ``Sim(Q, R) >= Sim(Q, R')`` for every ``R' ⊂ R``.

For such measures the group bound is ``Sim(Q, R*)`` where
``R* = Q ∩ GS_g`` is the portion of the query covered by the group's
vocabulary.  Because ``R* ⊆ Q``, the bound only depends on ``|R*|`` and
``|Q|``; each measure implements it as :meth:`Similarity.group_upper_bound`.

All measures work on multisets too: ``overlap`` is the multiset overlap
``Σ_t min(count_Q(t), count_S(t))`` and sizes count duplicates.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.sets import SetRecord, overlap

__all__ = [
    "Similarity",
    "JaccardSimilarity",
    "DiceSimilarity",
    "CosineSimilarity",
    "OverlapCoefficient",
    "ContainmentSimilarity",
    "get_measure",
    "MEASURES",
]


class Similarity(ABC):
    """A set similarity measure usable with the TGM.

    Subclasses implement :meth:`from_overlap` (similarity given the overlap
    and the two set sizes) and :meth:`group_upper_bound` (the Theorem 3.1
    bound).  ``__call__`` computes the exact similarity of two records.
    For hot-path speed, concrete measures additionally override the
    vectorized variants (:meth:`from_overlaps`, :meth:`bounds_from_counts`)
    with closed-form array expressions that apply the *same* float64
    operations as their scalar counterparts — results stay bit-identical.

    Attributes
    ----------
    name : str
        Registry key (``get_measure(name)``) and manifest identifier.
    symmetric : bool
        Whether ``Sim(A, B) == Sim(B, A)``; asymmetric measures (e.g.
        containment) set this False so order-sensitive consumers orient
        arguments canonically.

    Examples
    --------
    >>> from repro.core import SetRecord, get_measure
    >>> measure = get_measure("jaccard")
    >>> measure(SetRecord([1, 2, 3]), SetRecord([2, 3, 4]))
    0.5
    >>> measure.from_overlap(2, 3, 3)           # same pair, from counts
    0.5
    >>> measure.group_upper_bound(covered=2, query_size=3)
    0.6666666666666666
    >>> measure.bounds_from_counts([0, 1, 3], query_size=3)
    array([0.        , 0.33333333, 1.        ])
    """

    name: str = "abstract"
    #: Whether ``Sim(A, B) == Sim(B, A)``.  Asymmetric measures (e.g.
    #: containment) must set this False so order-sensitive consumers — the
    #: self-join reports ``Sim(S_x, S_y)`` with ``x < y`` — orient the
    #: arguments canonically instead of by iteration order.
    symmetric: bool = True

    def __call__(self, a: SetRecord, b: SetRecord) -> float:
        return self.from_overlap(overlap(a, b), len(a), len(b))

    @abstractmethod
    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        """Similarity of two sets given their overlap and sizes."""

    def from_overlaps(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        """Vectorized :meth:`from_overlap`; arguments broadcast like numpy.

        The verification kernel (:mod:`repro.core.columnar`) calls this
        with one scalar query size and a vector of record sizes to score a
        whole group at once.  Every built-in measure overrides it with a
        closed-form array expression applying the *same* float64
        operations as its scalar ``from_overlap``, so the results are
        bit-identical; this base fallback loops the scalar method (slow
        but always correct for third-party measures).
        """
        shared, sizes_a, sizes_b = _broadcast_int64(shared, sizes_a, sizes_b)
        return np.array(
            [
                self.from_overlap(int(o), int(a), int(b))
                for o, a, b in zip(shared.ravel(), sizes_a.ravel(), sizes_b.ravel())
            ],
            dtype=np.float64,
        ).reshape(shared.shape)

    def from_overlap_matrix(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        """Pairwise similarity matrix from an overlap matrix and two size vectors.

        ``shared`` is the ``(len(sizes_a), len(sizes_b))`` integer overlap
        matrix of two record blocks (row record × column record);
        ``sizes_a`` / ``sizes_b`` are the blocks' multiset sizes.  The
        result applies :meth:`from_overlaps` under outer broadcasting, so
        every cell goes through the measure's own vectorized formula — the
        *same* float64 operations as the scalar ``from_overlap``, making
        the matrix bit-identical to the per-pair walk.  This is the kernel
        entry point of the columnar self-join (:mod:`repro.core.join`).
        """
        sizes_a = np.asarray(sizes_a, dtype=np.int64)
        sizes_b = np.asarray(sizes_b, dtype=np.int64)
        return self.from_overlaps(shared, sizes_a[:, None], sizes_b[None, :])

    @abstractmethod
    def group_upper_bound(self, covered: int, query_size: int) -> float:
        """Upper bound on ``Sim(Q, S)`` for any ``S`` in a group.

        Parameters
        ----------
        covered:
            ``|Q ∩ GS_g|`` — how many query tokens the group's vocabulary
            covers.
        query_size:
            ``|Q|``.
        """

    def bounds_from_counts(
        self, counts: ArrayLike, query_size: int
    ) -> NDArray[np.float64]:
        """Vector of group upper bounds from a vector of covered counts.

        ``counts[g] = |Q ∩ GS_g|`` (multiplicity-weighted); the result is
        ``group_upper_bound`` applied elementwise, as a float64 array.  The
        bound is monotone in the covered count for every measure, which is
        what makes coarser vocabularies (a shard's union of group
        vocabularies) sound upper bounds too.

        Group scoring is on the hot path, so **every concrete measure must
        override this** with a closed-form array expression that matches
        its scalar :meth:`group_upper_bound` exactly (a test enforces the
        match for every registered measure).  This base fallback loops the
        scalar method — correct for third-party measures, but slow.
        """
        return np.array(
            [self.group_upper_bound(int(c), query_size) for c in counts],
            dtype=np.float64,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _broadcast_int64(
    shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
) -> tuple[NDArray[np.int64], NDArray[np.int64], NDArray[np.int64]]:
    """Broadcast the three ``from_overlaps`` arguments to common-shape int64."""
    arrays = np.broadcast_arrays(
        np.asarray(shared, dtype=np.int64),
        np.asarray(sizes_a, dtype=np.int64),
        np.asarray(sizes_b, dtype=np.int64),
    )
    return arrays[0], arrays[1], arrays[2]


class JaccardSimilarity(Similarity):
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` (Equation 2 bound)."""

    name = "jaccard"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        union = size_a + size_b - shared
        if union <= 0:
            return 0.0
        return shared / union

    def from_overlaps(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        shared, sizes_a, sizes_b = _broadcast_int64(shared, sizes_a, sizes_b)
        union = sizes_a + sizes_b - shared
        result = np.zeros(shared.shape, dtype=np.float64)
        np.divide(shared, union, out=result, where=union > 0)
        return result

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0:
            return 0.0
        # Best possible S is R itself: Jaccard(Q, R) = |R| / |Q| for R ⊆ Q.
        return covered / query_size

    def bounds_from_counts(
        self, counts: ArrayLike, query_size: int
    ) -> NDArray[np.float64]:
        if query_size <= 0:
            return np.zeros(len(counts), dtype=np.float64)
        return np.asarray(counts, dtype=np.float64) / query_size


class DiceSimilarity(Similarity):
    """Dice coefficient ``2|A ∩ B| / (|A| + |B|)``."""

    name = "dice"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        total = size_a + size_b
        if total <= 0:
            return 0.0
        return 2.0 * shared / total

    def from_overlaps(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        shared, sizes_a, sizes_b = _broadcast_int64(shared, sizes_a, sizes_b)
        total = sizes_a + sizes_b
        result = np.zeros(shared.shape, dtype=np.float64)
        np.divide(2.0 * shared, total, out=result, where=total > 0)
        return result

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0 or covered <= 0:
            return 0.0
        # Dice(Q, R) = 2|R| / (|Q| + |R|) for R ⊆ Q, increasing in |R|.
        return 2.0 * covered / (query_size + covered)

    def bounds_from_counts(
        self, counts: ArrayLike, query_size: int
    ) -> NDArray[np.float64]:
        counts = np.asarray(counts, dtype=np.float64)
        if query_size <= 0:
            return np.zeros(len(counts), dtype=np.float64)
        return np.where(counts > 0, 2.0 * counts / (query_size + counts), 0.0)


class CosineSimilarity(Similarity):
    """Cosine similarity ``|A ∩ B| / sqrt(|A| * |B|)``.

    Does not satisfy the triangle inequality, but satisfies the TGM
    Applicability Property (the example in Section 3.2: bound is
    ``sqrt(|R| / |Q|)``).
    """

    name = "cosine"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        if size_a <= 0 or size_b <= 0:
            return 0.0
        return shared / math.sqrt(size_a * size_b)

    def from_overlaps(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        shared, sizes_a, sizes_b = _broadcast_int64(shared, sizes_a, sizes_b)
        result = np.zeros(shared.shape, dtype=np.float64)
        np.divide(
            shared,
            np.sqrt(sizes_a * sizes_b),
            out=result,
            where=(sizes_a > 0) & (sizes_b > 0),
        )
        return result

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0 or covered <= 0:
            return 0.0
        # Cosine(Q, R) = |R| / sqrt(|Q||R|) = sqrt(|R| / |Q|) for R ⊆ Q.
        return math.sqrt(covered / query_size)

    def bounds_from_counts(
        self, counts: ArrayLike, query_size: int
    ) -> NDArray[np.float64]:
        counts = np.asarray(counts, dtype=np.float64)
        if query_size <= 0:
            return np.zeros(len(counts), dtype=np.float64)
        return np.sqrt(np.maximum(counts, 0.0) / query_size)


class OverlapCoefficient(Similarity):
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)``.

    Satisfies the applicability property, but its group bound is the
    trivial 1.0 whenever a single query token is covered
    (``Sim(Q, R) = |R| / min(|Q|, |R|) = 1``), so TGM pruning is weak.
    Included deliberately: it demonstrates that applicability does not
    imply *effective* pruning.
    """

    name = "overlap"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        smallest = min(size_a, size_b)
        if smallest <= 0:
            return 0.0
        return shared / smallest

    def from_overlaps(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        shared, sizes_a, sizes_b = _broadcast_int64(shared, sizes_a, sizes_b)
        smallest = np.minimum(sizes_a, sizes_b)
        result = np.zeros(shared.shape, dtype=np.float64)
        np.divide(shared, smallest, out=result, where=smallest > 0)
        return result

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0 or covered <= 0:
            return 0.0
        return 1.0

    def bounds_from_counts(
        self, counts: ArrayLike, query_size: int
    ) -> NDArray[np.float64]:
        counts = np.asarray(counts, dtype=np.float64)
        if query_size <= 0:
            return np.zeros(len(counts), dtype=np.float64)
        return (counts > 0).astype(np.float64)


class ContainmentSimilarity(Similarity):
    """Query containment ``|Q ∩ S| / |Q|`` (asymmetric).

    The measure behind containment search ("find sets covering most of my
    query").  Satisfies the applicability property with the same bound as
    Jaccard: for ``R ⊆ Q``, ``C(Q, R) = |R| / |Q|``.
    """

    name = "containment"
    symmetric = False

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        if size_a <= 0:
            return 0.0
        return shared / size_a

    def from_overlaps(
        self, shared: ArrayLike, sizes_a: ArrayLike, sizes_b: ArrayLike
    ) -> NDArray[np.float64]:
        shared, sizes_a, sizes_b = _broadcast_int64(shared, sizes_a, sizes_b)
        result = np.zeros(shared.shape, dtype=np.float64)
        np.divide(shared, sizes_a, out=result, where=sizes_a > 0)
        return result

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0:
            return 0.0
        return covered / query_size

    def bounds_from_counts(
        self, counts: ArrayLike, query_size: int
    ) -> NDArray[np.float64]:
        if query_size <= 0:
            return np.zeros(len(counts), dtype=np.float64)
        return np.asarray(counts, dtype=np.float64) / query_size


MEASURES: dict[str, Similarity] = {
    measure.name: measure
    for measure in (
        JaccardSimilarity(),
        DiceSimilarity(),
        CosineSimilarity(),
        OverlapCoefficient(),
        ContainmentSimilarity(),
    )
}


def get_measure(name: str | Similarity) -> Similarity:
    """Resolve a measure by name (or pass a measure through unchanged)."""
    if isinstance(name, Similarity):
        return name
    try:
        return MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(MEASURES))
        raise ValueError(f"unknown similarity measure {name!r}; known: {known}") from None
