"""Set similarity measures and their TGM group upper bounds.

Theorem 3.1 (the *TGM Applicability Property*) says the TGM can serve a
measure ``Sim`` whenever, for ``R = Q ∩ S``:

1. ``Sim(Q, R) >= Sim(Q, S)``, and
2. ``Sim(Q, R) >= Sim(Q, R')`` for every ``R' ⊂ R``.

For such measures the group bound is ``Sim(Q, R*)`` where
``R* = Q ∩ GS_g`` is the portion of the query covered by the group's
vocabulary.  Because ``R* ⊆ Q``, the bound only depends on ``|R*|`` and
``|Q|``; each measure implements it as :meth:`Similarity.group_upper_bound`.

All measures work on multisets too: ``overlap`` is the multiset overlap
``Σ_t min(count_Q(t), count_S(t))`` and sizes count duplicates.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.sets import SetRecord, overlap

__all__ = [
    "Similarity",
    "JaccardSimilarity",
    "DiceSimilarity",
    "CosineSimilarity",
    "OverlapCoefficient",
    "ContainmentSimilarity",
    "get_measure",
    "MEASURES",
]


class Similarity(ABC):
    """A set similarity measure usable with the TGM.

    Subclasses implement :meth:`from_overlap` (similarity given the overlap
    and the two set sizes) and :meth:`group_upper_bound` (the Theorem 3.1
    bound).  ``__call__`` computes the exact similarity of two records.
    """

    name: str = "abstract"

    def __call__(self, a: SetRecord, b: SetRecord) -> float:
        return self.from_overlap(overlap(a, b), len(a), len(b))

    @abstractmethod
    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        """Similarity of two sets given their overlap and sizes."""

    @abstractmethod
    def group_upper_bound(self, covered: int, query_size: int) -> float:
        """Upper bound on ``Sim(Q, S)`` for any ``S`` in a group.

        Parameters
        ----------
        covered:
            ``|Q ∩ GS_g|`` — how many query tokens the group's vocabulary
            covers.
        query_size:
            ``|Q|``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class JaccardSimilarity(Similarity):
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` (Equation 2 bound)."""

    name = "jaccard"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        union = size_a + size_b - shared
        if union <= 0:
            return 0.0
        return shared / union

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0:
            return 0.0
        # Best possible S is R itself: Jaccard(Q, R) = |R| / |Q| for R ⊆ Q.
        return covered / query_size


class DiceSimilarity(Similarity):
    """Dice coefficient ``2|A ∩ B| / (|A| + |B|)``."""

    name = "dice"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        total = size_a + size_b
        if total <= 0:
            return 0.0
        return 2.0 * shared / total

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0 or covered <= 0:
            return 0.0
        # Dice(Q, R) = 2|R| / (|Q| + |R|) for R ⊆ Q, increasing in |R|.
        return 2.0 * covered / (query_size + covered)


class CosineSimilarity(Similarity):
    """Cosine similarity ``|A ∩ B| / sqrt(|A| * |B|)``.

    Does not satisfy the triangle inequality, but satisfies the TGM
    Applicability Property (the example in Section 3.2: bound is
    ``sqrt(|R| / |Q|)``).
    """

    name = "cosine"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        if size_a <= 0 or size_b <= 0:
            return 0.0
        return shared / math.sqrt(size_a * size_b)

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0 or covered <= 0:
            return 0.0
        # Cosine(Q, R) = |R| / sqrt(|Q||R|) = sqrt(|R| / |Q|) for R ⊆ Q.
        return math.sqrt(covered / query_size)


class OverlapCoefficient(Similarity):
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)``.

    Satisfies the applicability property, but its group bound is the
    trivial 1.0 whenever a single query token is covered
    (``Sim(Q, R) = |R| / min(|Q|, |R|) = 1``), so TGM pruning is weak.
    Included deliberately: it demonstrates that applicability does not
    imply *effective* pruning.
    """

    name = "overlap"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        smallest = min(size_a, size_b)
        if smallest <= 0:
            return 0.0
        return shared / smallest

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0 or covered <= 0:
            return 0.0
        return 1.0


class ContainmentSimilarity(Similarity):
    """Query containment ``|Q ∩ S| / |Q|`` (asymmetric).

    The measure behind containment search ("find sets covering most of my
    query").  Satisfies the applicability property with the same bound as
    Jaccard: for ``R ⊆ Q``, ``C(Q, R) = |R| / |Q|``.
    """

    name = "containment"

    def from_overlap(self, shared: int, size_a: int, size_b: int) -> float:
        if size_a <= 0:
            return 0.0
        return shared / size_a

    def group_upper_bound(self, covered: int, query_size: int) -> float:
        if query_size <= 0:
            return 0.0
        return covered / query_size


MEASURES: dict[str, Similarity] = {
    measure.name: measure
    for measure in (
        JaccardSimilarity(),
        DiceSimilarity(),
        CosineSimilarity(),
        OverlapCoefficient(),
        ContainmentSimilarity(),
    )
}


def get_measure(name: str | Similarity) -> Similarity:
    """Resolve a measure by name (or pass a measure through unchanged)."""
    if isinstance(name, Similarity):
        return name
    try:
        return MEASURES[name]
    except KeyError:
        known = ", ".join(sorted(MEASURES))
        raise ValueError(f"unknown similarity measure {name!r}; known: {known}") from None
