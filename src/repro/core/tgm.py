"""TGM — the token-group matrix index (Section 3).

``M[g, t] = 1`` iff some set in group ``g`` contains token ``t``
(Equation 1).  Given a query, the group bound is derived from the number of
query tokens covered by each group's vocabulary (Equation 2, generalised to
any measure satisfying the TGM Applicability Property via
:meth:`repro.core.similarity.Similarity.group_upper_bound`).

Two storage backends are provided:

* ``dense`` — a ``numpy`` boolean matrix; bound computation for all groups is
  one column-gather + row-sum, the fastest option in pure Python.
* ``roaring`` — one :class:`repro.bitmap.RoaringBitmap` per group, matching
  the paper's Roaring-compressed deployment; used for the index-size
  experiment (Figure 11) and large sparse universes.

Both backends support growth: new sets set bits in an existing row, and new
tokens extend the universe (Section 6).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bitmap.roaring import RoaringBitmap
from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure

__all__ = ["TokenGroupMatrix"]


class TokenGroupMatrix:
    """Bitmap index recording which tokens appear in which group.

    Parameters
    ----------
    dataset:
        The database the index is built over.
    groups:
        Record-index lists, one per group (typically ``Partition.groups``).
    measure:
        Similarity measure (name or instance); defines the group bound.
    backend:
        ``"dense"`` (numpy bool matrix) or ``"roaring"``.
    """

    def __init__(
        self,
        dataset: Dataset,
        groups: Sequence[Sequence[int]],
        measure: str | Similarity = "jaccard",
        backend: str = "dense",
    ) -> None:
        if backend not in ("dense", "roaring"):
            raise ValueError(f"unknown TGM backend {backend!r}")
        self.measure = get_measure(measure)
        self.backend = backend
        self.group_members: list[list[int]] = [list(group) for group in groups]
        self._group_of: dict[int, int] = {
            record_index: group_id
            for group_id, members in enumerate(self.group_members)
            for record_index in members
        }
        self._universe_size = len(dataset.universe)
        if backend == "dense":
            self._matrix = np.zeros((len(self.group_members), self._universe_size), dtype=bool)
            self._bitmaps: list[RoaringBitmap] | None = None
        else:
            self._matrix = None
            self._bitmaps = [RoaringBitmap() for _ in self.group_members]
        self._build_bits(dataset)

    # -- construction helpers -------------------------------------------------

    def _build_bits(self, dataset: Dataset) -> None:
        """Flip every group's token bits from its current membership.

        When the dataset already carries a columnar view (always true for
        mapped datasets, and for any dataset that has answered a columnar
        query), the tokens come from one vectorized CSR gather per group —
        no Python record is materialized, which is what keeps
        ``mode="mmap"`` index rebuilds out-of-core.  Otherwise the
        original record walk runs; both paths set the identical bits.
        """
        view = dataset._columnar
        if view is not None:
            view.sync()
            for group_id, members in enumerate(self.group_members):
                if members:
                    tokens = view.tokens_of_records(members)
                    if self._matrix is not None:
                        self._matrix[group_id, tokens] = True
                    else:
                        self._bitmaps[group_id].update(tokens.tolist())
        else:
            for group_id, members in enumerate(self.group_members):
                for record_index in members:
                    self._set_bits(group_id, dataset.records[record_index].distinct)

    def _set_bits(self, group_id: int, token_ids: Iterable[int]) -> None:
        if self._matrix is not None:
            self._matrix[group_id, list(token_ids)] = True
        else:
            self._bitmaps[group_id].update(token_ids)

    @property
    def num_groups(self) -> int:
        return len(self.group_members)

    @property
    def universe_size(self) -> int:
        return self._universe_size

    def contains(self, group_id: int, token_id: int) -> bool:
        """``M[g, t]`` as a boolean."""
        if token_id >= self._universe_size:
            return False
        if self._matrix is not None:
            return bool(self._matrix[group_id, token_id])
        return token_id in self._bitmaps[group_id]

    def group_vocabulary_size(self, group_id: int) -> int:
        """``|GS_g|`` — number of distinct tokens present in group ``g``."""
        if self._matrix is not None:
            return int(self._matrix[group_id].sum())
        return len(self._bitmaps[group_id])

    # -- bound computation ------------------------------------------------------

    def covered_counts(
        self, token_ids: Sequence[int], weights: Sequence[int] | None = None
    ) -> np.ndarray:
        """``|Q ∩ GS_g|`` for every group, given the query's known token ids.

        ``weights`` are the query-side multiplicities (multiset queries): a
        group whose vocabulary contains token ``t`` may hold a set carrying
        ``t`` with any multiplicity, so the best-case overlap contributes
        the *full* query count of ``t`` (Theorem 3.1's tightness argument).
        Omitting ``weights`` treats the query as a plain set.
        """
        if self._matrix is not None:
            if not token_ids:
                return np.zeros(self.num_groups, dtype=np.int64)
            present = self._matrix[:, token_ids]
            if weights is None:
                return present.sum(axis=1, dtype=np.int64)
            return present @ np.asarray(weights, dtype=np.int64)
        if not token_ids:
            return np.zeros(self.num_groups, dtype=np.int64)
        query_bitmap = RoaringBitmap(token_ids)
        if weights is None:
            return np.array(
                [bitmap.intersection_cardinality(query_bitmap) for bitmap in self._bitmaps],
                dtype=np.int64,
            )
        # Weighted: intersect each group once with the query bitmap, then
        # sum the weights of the covered tokens via a boolean mask — no
        # per-token Python membership loop.
        tokens = np.asarray(token_ids, dtype=np.int64)
        token_weights = np.asarray(weights, dtype=np.int64)
        counts = np.zeros(self.num_groups, dtype=np.int64)
        for group_id, bitmap in enumerate(self._bitmaps):
            covered = bitmap.intersection(query_bitmap)
            if len(covered):
                hits = np.fromiter(covered, dtype=np.int64)
                counts[group_id] = token_weights[np.isin(tokens, hits)].sum()
        return counts

    def upper_bounds(
        self,
        token_ids: Sequence[int],
        query_size: int,
        weights: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Similarity upper bound between the query and every group.

        ``token_ids`` are the query tokens known to the universe;
        ``query_size`` is the full ``|Q|`` (duplicates and unseen tokens
        included — Section 3.1's handling of out-of-universe tokens);
        ``weights`` are per-token query multiplicities for multiset queries.
        """
        counts = self.covered_counts(token_ids, weights)
        return self.measure.bounds_from_counts(counts, query_size)

    # -- updates (Section 6) -----------------------------------------------------

    def extend_universe(self, new_size: int) -> None:
        """Grow the token dimension to ``new_size`` (new columns all zero)."""
        if new_size < self._universe_size:
            raise ValueError("the token universe can only grow")
        if new_size == self._universe_size:
            return
        if self._matrix is not None:
            extra = np.zeros((self.num_groups, new_size - self._universe_size), dtype=bool)
            self._matrix = np.concatenate([self._matrix, extra], axis=1)
        self._universe_size = new_size

    def register(self, group_id: int, record_index: int, record: SetRecord) -> None:
        """Insert a new record into a group and flip its token bits."""
        max_token = record.tokens[-1]
        if max_token >= self._universe_size:
            self.extend_universe(max_token + 1)
        self.group_members[group_id].append(record_index)
        self._group_of[record_index] = group_id
        self._set_bits(group_id, record.distinct)

    def unregister(self, record_index: int) -> int:
        """Remove a record from its group; returns the group id.

        The record→group map makes finding the group O(1); removing the
        record from its membership list is O(group size).  Token bits are
        *not* cleared (other members may share them, and a spurious bit
        only weakens pruning, never correctness).  Heavily-deleted groups
        can be refreshed by rebuilding the TGM from the surviving
        membership.
        """
        group_id = self._group_of.pop(record_index, None)
        if group_id is None:
            raise KeyError(f"record {record_index} is not registered in any group")
        self.group_members[group_id].remove(record_index)
        return group_id

    def rebuild_bits(self, dataset: Dataset) -> None:
        """Recompute every group's bits from its current membership.

        After deletions the matrix can carry bits no surviving member
        needs; they are sound but loosen the bounds.  A rebuild restores
        tightness in ``O(Σ |S|)`` without touching the partitioning.
        """
        if self._matrix is not None:
            self._matrix[:, :] = False
        else:
            self._bitmaps = [RoaringBitmap() for _ in self.group_members]
        self._build_bits(dataset)

    # -- size accounting -----------------------------------------------------------

    def byte_size(self) -> int:
        """Approximate index size in bytes.

        Dense: one bit per matrix cell.  Roaring: the sum of compressed
        container sizes.  Group membership lists are part of the data layout,
        not the filter, and are excluded (consistent across all methods in
        the Figure 11 comparison).
        """
        if self._matrix is not None:
            return (self._matrix.size + 7) // 8
        return sum(bitmap.byte_size() for bitmap in self._bitmaps)

    def run_optimize(self) -> None:
        """Run-compress the roaring backend (no-op for dense)."""
        if self._bitmaps is not None:
            for bitmap in self._bitmaps:
                bitmap.run_optimize()

    def __repr__(self) -> str:
        return (
            f"TokenGroupMatrix(groups={self.num_groups}, tokens={self._universe_size}, "
            f"backend={self.backend!r}, measure={self.measure.name!r})"
        )
