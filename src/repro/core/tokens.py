"""Token universe management.

A *token* is the atomic element of a set.  Externally tokens may be arbitrary
hashable values (strings, integers, ...); internally every token is interned
to a dense integer id so that sets can be stored as sorted integer arrays and
the TGM can be a plain matrix indexed by token id.

The :class:`TokenUniverse` is *growable*: Section 6 of the paper explicitly
supports an open universe where previously unseen tokens appear after the
index is built.  Interning a new token simply appends a new id.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

__all__ = ["TokenUniverse"]


class TokenUniverse:
    """Bidirectional mapping between external tokens and dense integer ids.

    Ids are assigned in first-seen order, starting at 0, and are never
    recycled.  The universe only grows (tokens are never removed), matching
    the paper's update model where new tokens extend the TGM with new rows.
    """

    def __init__(self, tokens: Iterable[Hashable] = ()) -> None:
        self._token_to_id: dict[Hashable, int] = {}
        self._id_to_token: list[Hashable] = []
        for token in tokens:
            self.intern(token)

    @classmethod
    def from_id_order(cls, tokens: list[Hashable]) -> "TokenUniverse":
        """Build a universe whose ids are exactly the list positions.

        The bulk counterpart of interning one token at a time — used by
        the binary columnar loader, where the stored token order *is* the
        id assignment, so the whole mapping is two bulk constructions
        instead of one ``intern`` call per token.

        Raises
        ------
        ValueError
            If ``tokens`` contains duplicates (positions would not be a
            bijective id assignment).
        """
        universe = cls()
        universe._id_to_token = list(tokens)
        universe._token_to_id = {
            token: token_id for token_id, token in enumerate(universe._id_to_token)
        }
        if len(universe._token_to_id) != len(universe._id_to_token):
            raise ValueError("duplicate tokens cannot form a universe in id order")
        return universe

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: Hashable) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._id_to_token)

    def intern(self, token: Hashable) -> int:
        """Return the id of ``token``, assigning a fresh id if unseen."""
        token_id = self._token_to_id.get(token)
        if token_id is None:
            token_id = len(self._id_to_token)
            self._token_to_id[token] = token_id
            self._id_to_token.append(token)
        return token_id

    def intern_all(self, tokens: Iterable[Hashable]) -> list[int]:
        """Intern every token in ``tokens`` and return their ids in order."""
        return [self.intern(token) for token in tokens]

    def id_of(self, token: Hashable) -> int:
        """Return the id of a known token; raise ``KeyError`` if unseen."""
        return self._token_to_id[token]

    def get_id(self, token: Hashable) -> int | None:
        """Return the id of ``token`` or ``None`` if unseen (no interning)."""
        return self._token_to_id.get(token)

    def token_of(self, token_id: int) -> Hashable:
        """Return the external token for a given id."""
        return self._id_to_token[token_id]

    def ids_of_known(self, tokens: Iterable[Hashable]) -> list[int]:
        """Map tokens to ids, silently dropping unseen tokens.

        Used for query sets: per Section 3.1 a query token outside the
        universe contributes 0 to every group's bound, so it can simply be
        ignored during bound computation (but still counts towards |Q|; the
        caller is responsible for tracking the original query size).
        """
        result = []
        for token in tokens:
            token_id = self._token_to_id.get(token)
            if token_id is not None:
                result.append(token_id)
        return result

    def copy(self) -> "TokenUniverse":
        """Return an independent copy of this universe."""
        clone = TokenUniverse()
        clone._token_to_id = dict(self._token_to_id)
        clone._id_to_token = list(self._id_to_token)
        return clone
