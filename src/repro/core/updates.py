"""Insertion of new sets and new tokens (Section 6).

Closed universe: a new set goes to the group with the highest similarity
upper bound, breaking ties towards the smallest group (matching the balance
property of Section 4).  Open universe: unseen tokens are interned first,
the target group is chosen from the previously-seen portion ``PS = S ∩ T``
(smallest group when ``PS`` is empty), then the TGM grows new columns and
all the set's bits are flipped.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tgm import TokenGroupMatrix

__all__ = ["choose_group", "insert_set", "remove_set"]


def choose_group(tgm: TokenGroupMatrix, known_ids: Sequence[int], set_size: int) -> int:
    """Pick the insertion group for a set whose known token ids are given.

    Highest upper bound wins; among equal bounds the group with the fewest
    members wins (Section 6).  With no known tokens the smallest group wins.
    """
    sizes = np.array([len(members) for members in tgm.group_members], dtype=np.int64)
    if not known_ids:
        return int(sizes.argmin())
    bounds = tgm.upper_bounds(known_ids, set_size)
    best_bound = bounds.max()
    tied = np.flatnonzero(bounds == best_bound)
    return int(tied[sizes[tied].argmin()])


def insert_set(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    tokens: Sequence[Hashable],
    intern: bool = True,
) -> tuple[int, int]:
    """Insert a new set given by raw tokens; return ``(record_index, group_id)``.

    With ``intern=True`` unseen tokens extend the universe (open-universe
    insertion); with ``intern=False`` unseen tokens raise ``KeyError``
    (strictly closed universe).
    """
    if not tokens:
        raise ValueError("cannot insert an empty set")
    # Sorted so the candidate-id order never inherits set hash order:
    # downstream consumers are order-insensitive today, but bit-identity
    # across processes must not depend on that staying true.
    previously_seen = sorted(
        token_id
        for token in set(tokens)
        if (token_id := dataset.universe.get_id(token)) is not None
        and token_id < tgm.universe_size
    )
    group_id = choose_group(tgm, previously_seen, len(tokens))

    if intern:
        token_ids = dataset.universe.intern_all(tokens)
    else:
        token_ids = [dataset.universe.id_of(token) for token in tokens]
    record = SetRecord(token_ids)
    record_index = dataset.append(record)
    tgm.register(group_id, record_index, record)
    return record_index, group_id


def remove_set(tgm: TokenGroupMatrix, record_index: int) -> int:
    """Logically delete a set: searches no longer return it.

    The record stays in the dataset (indices are stable) but leaves its
    group's membership; its token bits remain until a rebuild, which keeps
    the TGM sound (bounds can only be looser).  Returns the group id the
    record left.
    """
    return tgm.unregister(record_index)
