"""Index integrity validation.

An index whose bits drifted from its data silently returns *wrong answers*
(the bound stops being an upper bound), which for an exact method is the
worst possible failure.  ``validate_tgm`` checks the three invariants that
make the TGM sound and reports every violation found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dataset import Dataset
from repro.core.tgm import TokenGroupMatrix

__all__ = ["ValidationReport", "validate_tgm"]


@dataclass
class ValidationReport:
    """Outcome of an integrity check; ``ok`` iff no violations."""

    missing_bits: list[tuple[int, int]] = field(default_factory=list)
    orphan_records: list[int] = field(default_factory=list)
    duplicate_records: list[int] = field(default_factory=list)
    out_of_range_members: list[tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.missing_bits
            or self.orphan_records
            or self.duplicate_records
            or self.out_of_range_members
        )

    def summary(self) -> str:
        if self.ok:
            return "index OK"
        parts = []
        if self.missing_bits:
            parts.append(f"{len(self.missing_bits)} missing token bits")
        if self.orphan_records:
            parts.append(f"{len(self.orphan_records)} records in no group")
        if self.duplicate_records:
            parts.append(f"{len(self.duplicate_records)} records in multiple groups")
        if self.out_of_range_members:
            parts.append(f"{len(self.out_of_range_members)} out-of-range member ids")
        return "index CORRUPT: " + ", ".join(parts)


def validate_tgm(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    removed: frozenset[int] | set[int] = frozenset(),
) -> ValidationReport:
    """Check soundness invariants of a TGM against its dataset.

    1. **Completeness** — every token of every member has its bit set
       (a missing bit breaks the upper-bound property → wrong answers).
    2. **Coverage** — every record belongs to exactly one group, except
       those in ``removed`` (logical deletions), which must belong to none.
    3. **Range** — member ids reference existing records.

    False *extra* bits are not flagged: they only weaken pruning, never
    correctness, and legitimately arise after deletions or re-grouping.
    """
    report = ValidationReport()
    seen: dict[int, int] = {}
    for group_id, members in enumerate(tgm.group_members):
        for record_index in members:
            if not 0 <= record_index < len(dataset):
                report.out_of_range_members.append((group_id, record_index))
                continue
            if record_index in seen:
                report.duplicate_records.append(record_index)
            seen[record_index] = group_id
            for token in dataset.records[record_index].distinct:
                if not tgm.contains(group_id, token):
                    report.missing_bits.append((group_id, token))
    for record_index in range(len(dataset)):
        if record_index not in seen and record_index not in removed:
            report.orphan_records.append(record_index)
    for record_index in removed:
        if record_index in seen:
            report.duplicate_records.append(record_index)
    return report
