"""Dataset generators: synthetic models and Table 2 calibrated stand-ins."""

from repro.datasets.real_like import TABLE2_SPECS, DatasetSpec, dataset_names, make_dataset
from repro.datasets.synthetic import (
    powerlaw_similarity_dataset,
    uniform_dataset,
    zipf_dataset,
)

__all__ = [
    "TABLE2_SPECS",
    "DatasetSpec",
    "dataset_names",
    "make_dataset",
    "powerlaw_similarity_dataset",
    "uniform_dataset",
    "zipf_dataset",
]
