"""Calibrated stand-ins for the paper's real datasets (Table 2).

The real corpora (KOSARAK, LIVEJ, DBLP, AOL, Friendster, PMC) are not
shippable here, so each is replaced by a synthetic generator calibrated to
its Table 2 statistics: number of sets, set-size minimum / maximum / mean,
and vocabulary size — all scaled down by a common factor so experiments run
at laptop scale.  Token frequencies are Zipfian (exponent fit per dataset
family), which is the dominant shape of all six corpora.

Set sizes are drawn from a shifted geometric distribution (mean matched to
the Table 2 average, support clipped to [min, max]), giving the long right
tail the real datasets show.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse

__all__ = ["DatasetSpec", "TABLE2_SPECS", "make_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Table 2 row plus the Zipf exponent used for the stand-in."""

    name: str
    num_sets: int
    max_size: int
    min_size: int
    avg_size: float
    universe_size: int
    zipf_exponent: float = 1.05


TABLE2_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("KOSARAK", 990_002, 2_498, 1, 8.1, 41_270, 1.15),
        DatasetSpec("LIVEJ", 3_201_202, 300, 1, 35.1, 7_489_073, 1.0),
        DatasetSpec("DBLP", 5_875_251, 462, 2, 8.7, 3_720_067, 1.0),
        DatasetSpec("AOL", 10_154_742, 245, 1, 3.0, 3_849_555, 1.05),
        DatasetSpec("FS", 65_608_366, 3_615, 1, 27.5, 65_608_366, 0.9),
        DatasetSpec("PMC", 787_220_474, 2_597, 1, 8.8, 22_923_401, 1.1),
    )
}


def dataset_names() -> list[str]:
    """The six dataset names, in Table 2 order."""
    return list(TABLE2_SPECS)


def _scaled_counts(spec: DatasetSpec, scale: float) -> tuple[int, int, int]:
    """(num_sets, num_tokens, max_size) after scaling, with sane floors.

    The vocabulary shrinks with the *square root* of the scale: a uniform
    subsample of a corpus with a long-tailed token distribution retains far
    more distinct tokens than a proportional share, and √scale matches the
    empirical shrinkage of heavy-tailed vocabularies well.
    """
    num_sets = max(int(spec.num_sets * scale), 200)
    num_tokens = max(int(spec.universe_size * min(scale**0.5, 1.0)), 100)
    # Set sizes cannot exceed the scaled vocabulary; cap the max accordingly.
    max_size = min(spec.max_size, max(num_tokens // 4, spec.min_size + 1))
    return num_sets, num_tokens, max_size


def make_dataset(name: str, scale: float = 0.001, seed: int = 0) -> Dataset:
    """Generate the calibrated stand-in for a Table 2 dataset.

    ``scale`` multiplies both ``|D|`` and ``|T|``; the set-size distribution
    is *not* scaled (sets keep their natural sizes), matching how a uniform
    sample of the real corpus would look.
    """
    spec = TABLE2_SPECS.get(name.upper())
    if spec is None:
        known = ", ".join(TABLE2_SPECS)
        raise ValueError(f"unknown dataset {name!r}; known: {known}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    num_sets, num_tokens, max_size = _scaled_counts(spec, scale)

    mean_extra = max(spec.avg_size - spec.min_size, 0.05)
    geometric_p = 1.0 / (mean_extra + 1.0)
    # Precomputed cumulative weights make each draw O(log |T|), not O(|T|).
    cumulative = list(_accumulate_zipf(num_tokens, spec.zipf_exponent))
    population = range(num_tokens)

    records = []
    for _ in range(num_sets):
        extra = 0
        # Shifted geometric: P(extra = j) = p (1-p)^j.
        while rng.random() > geometric_p and extra < max_size - spec.min_size:
            extra += 1
        size = min(spec.min_size + extra, max_size)
        chosen: set[int] = set()
        while len(chosen) < size:
            chosen.update(
                rng.choices(population, cum_weights=cumulative, k=size - len(chosen))
            )
        records.append(SetRecord(chosen))
    return Dataset(records, TokenUniverse(range(num_tokens)))


def _accumulate_zipf(num_tokens: int, exponent: float):
    total = 0.0
    for rank in range(1, num_tokens + 1):
        total += 1.0 / (rank**exponent)
        yield total
