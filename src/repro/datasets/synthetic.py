"""Synthetic dataset generators.

Three families:

* :func:`uniform_dataset` — the Section 4.1 model: every token equally and
  independently likely.  Used to test the balance/coherence theory.
* :func:`zipf_dataset` — Zipf-distributed token frequencies, the shape real
  set-similarity benchmarks exhibit.
* :func:`powerlaw_similarity_dataset` — the Section 7.7 generator: a
  database whose pairwise-similarity distribution has tail
  ``P[sim = v] ∼ v^−α``.  Implemented as a planted-template model: sets are
  noisy copies of cluster templates, with the copy fidelity drawn so larger
  α yields overwhelmingly dissimilar pairs (see DESIGN.md §5).
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse

__all__ = [
    "uniform_dataset",
    "zipf_dataset",
    "powerlaw_similarity_dataset",
]


def _universe(num_tokens: int) -> TokenUniverse:
    return TokenUniverse(range(num_tokens))


def uniform_dataset(
    num_sets: int,
    num_tokens: int,
    set_size: int | tuple[int, int],
    seed: int = 0,
) -> Dataset:
    """Sets drawn uniformly without replacement from the token universe.

    ``set_size`` may be a fixed int or an inclusive ``(low, high)`` range.
    """
    if num_sets <= 0 or num_tokens <= 0:
        raise ValueError("num_sets and num_tokens must be positive")
    rng = random.Random(seed)
    low, high = (set_size, set_size) if isinstance(set_size, int) else set_size
    if low < 1 or high > num_tokens or low > high:
        raise ValueError(f"invalid set size range ({low}, {high}) for {num_tokens} tokens")
    records = []
    for _ in range(num_sets):
        size = rng.randint(low, high)
        records.append(SetRecord(rng.sample(range(num_tokens), size)))
    return Dataset(records, _universe(num_tokens))


def _zipf_weights(num_tokens: int, exponent: float) -> list[float]:
    return [1.0 / (rank**exponent) for rank in range(1, num_tokens + 1)]


def zipf_dataset(
    num_sets: int,
    num_tokens: int,
    set_size: int | tuple[int, int],
    exponent: float = 1.0,
    seed: int = 0,
) -> Dataset:
    """Sets whose tokens follow a Zipf distribution (id 0 most frequent).

    Token ids are assigned in frequency order, which makes the min-token
    initial partitioner meaningful, matching the common preprocessing of
    the public set-similarity benchmarks.
    """
    if num_sets <= 0 or num_tokens <= 0:
        raise ValueError("num_sets and num_tokens must be positive")
    rng = random.Random(seed)
    low, high = (set_size, set_size) if isinstance(set_size, int) else set_size
    # Cumulative weights make each draw O(log |T|) instead of O(|T|).
    cumulative = []
    total = 0.0
    for weight in _zipf_weights(num_tokens, exponent):
        total += weight
        cumulative.append(total)
    population = range(num_tokens)
    records = []
    for _ in range(num_sets):
        size = rng.randint(low, high)
        chosen: set[int] = set()
        # Rejection loop: weighted sampling without replacement.
        while len(chosen) < size:
            chosen.update(
                rng.choices(population, cum_weights=cumulative, k=size - len(chosen))
            )
        records.append(SetRecord(chosen))
    return Dataset(records, _universe(num_tokens))


def powerlaw_similarity_dataset(
    num_sets: int = 20_000,
    num_tokens: int = 20_000,
    set_size: int = 12,
    alpha: float = 2.0,
    num_templates: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Database whose pairwise similarity tail follows ``P[sim=v] ∼ v^−α``.

    Planted-template construction: ``num_templates`` disjoint template sets
    are drawn; each record copies a template, keeping each template token
    with probability ``f`` and replacing the rest with random background
    tokens.  The fidelity ``f`` is sampled per record from the density
    ``∝ f^{−α}`` on ``[f_min, 1]``: within a cluster the typical pairwise
    similarity scales with ``f², so large α concentrates fidelity near
    ``f_min`` and almost all pairs become dissimilar — the exact regime
    sweep of Figure 14.
    """
    if alpha < 1.0:
        raise ValueError("alpha must be >= 1 (paper sweeps alpha in [1, inf))")
    rng = random.Random(seed)
    if num_templates is None:
        num_templates = max(num_sets // 100, 1)
    template_pool = list(range(num_tokens))
    rng.shuffle(template_pool)
    templates: list[list[int]] = []
    cursor = 0
    for _ in range(num_templates):
        if cursor + set_size > num_tokens:
            cursor = 0
        templates.append(template_pool[cursor : cursor + set_size])
        cursor += set_size

    f_min = 0.05
    records = []
    for _ in range(num_sets):
        template = templates[rng.randrange(num_templates)]
        # Inverse-CDF sample of density ∝ f^-α on [f_min, 1].
        u = rng.random()
        if abs(alpha - 1.0) < 1e-9:
            fidelity = f_min ** (1.0 - u)
        else:
            a = 1.0 - alpha
            fidelity = (f_min**a + u * (1.0 - f_min**a)) ** (1.0 / a)
        kept = [t for t in template if rng.random() < fidelity]
        needed = set_size - len(kept)
        chosen = set(kept)
        while needed > 0:
            token = rng.randrange(num_tokens)
            if token not in chosen:
                chosen.add(token)
                needed -= 1
        records.append(SetRecord(chosen))
    return Dataset(records, _universe(num_tokens))
