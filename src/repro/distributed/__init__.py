"""Sharded, parallel query layer: scale-out beyond one monolithic engine.

Section 7.2 of the paper leaves parallel/distributed deployment as future
work; this package supplies the scatter-gather layer: deterministic shard
placement (:mod:`repro.distributed.sharding`) and the exact sharded engine
(:class:`ShardedLES3`) with hierarchical shard → group → record bounds.
"""

from repro.distributed.sharded import ShardedLES3
from repro.distributed.sharding import SHARD_STRATEGIES, assign_shards, record_shard_hash

__all__ = ["ShardedLES3", "assign_shards", "record_shard_hash", "SHARD_STRATEGIES"]
