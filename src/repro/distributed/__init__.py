"""Sharded, parallel query layer: scale-out beyond one monolithic engine.

Section 7.2 of the paper leaves parallel/distributed deployment as future
work; this package supplies the scatter-gather layer: deterministic shard
placement (:mod:`repro.distributed.sharding`), the exact sharded engine
(:class:`ShardedLES3`) with hierarchical shard → group → record bounds
and three execution modes (``parallel="serial"|"thread"|"process"``),
and the sharded persistence lifecycle
(:mod:`repro.distributed.persistence`: :func:`save_sharded` /
:func:`load_sharded`, which also arm the process-pool workers).
"""

from repro.distributed.persistence import SHARDED_LOAD_MODES, load_sharded, save_sharded
from repro.distributed.sharded import PARALLEL_MODES, LazyShardTGMs, ShardedLES3
from repro.distributed.sharding import SHARD_STRATEGIES, assign_shards, record_shard_hash

__all__ = [
    "ShardedLES3",
    "LazyShardTGMs",
    "save_sharded",
    "load_sharded",
    "assign_shards",
    "record_shard_hash",
    "SHARD_STRATEGIES",
    "PARALLEL_MODES",
    "SHARDED_LOAD_MODES",
]
