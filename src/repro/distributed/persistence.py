"""Sharded engine lifecycle: durable saves, parallel loads, process workers.

A :class:`~repro.distributed.sharded.ShardedLES3` persists as one
directory holding the dataset *once* plus one subdirectory per shard:

    <dir>/
      manifest.json      # sharded manifest v1: placement policy, shard
                         # count, measure, verify, per-shard digests
      dataset.txt        # the global dataset, one set per line
      dataset.bin        # the global binary columnar dataset (the
                         # np.memmap target of mode="mmap"/"lazy" loads)
      shard-0000/
        manifest.json    # the single-engine manifest (deleted, verify)
        groups.json      # the shard's groups, *global* record indices
      shard-0001/
        ...

Each shard subdirectory reuses the single-engine v2 writer
(:func:`repro.core.persistence.write_index_files`), so the v2 invariants
— the ``deleted`` tombstone log and the ``verify`` mode — carry over
unchanged; only the dataset and the coverage check move up a level
(shard groups cover the dataset *jointly*, checked globally at load).
The top-level manifest records a SHA-256 digest of every shard's files,
so a truncated or tampered shard fails loudly instead of loading a
wrong-answer engine.  All integrity failures raise
:class:`~repro.core.persistence.PersistenceError`.

This module also hosts the **process-mode worker**: the ``"process"``
execution mode of :class:`~repro.distributed.sharded.ShardedLES3` ships
picklable task descriptors (not closures) to a ``ProcessPoolExecutor``
whose workers call :func:`run_shard_task` — rehydrating their shard from
the saved directory on first use and caching it for the rest of the
pool's life.  Queries travel as external-token payloads
(:func:`query_payload`) so a worker's independently re-interned token
universe answers bit-identically to the parent's.

See ``docs/persistence.md`` for the full on-disk format reference.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Callable

from repro.core.cache import LRUCache
from repro.core.columnar import VERIFY_MODES
from repro.core.dataset import Dataset
from repro.core.delta import (
    DeltaSegment,
    apply_group_ops,
    apply_insert_op,
    read_delta_ops,
)
from repro.core.persistence import (
    DATASET_BIN,
    SHARDED_MANIFEST_KEY,
    PersistenceError,
    atomic_directory,
    check_dataset_digest,
    check_exact_cover,
    engine_manifest,
    manifest_epoch,
    open_mapped_dataset,
    parse_manifest_state,
    read_groups,
    read_index_json,
    recover_interrupted_swap,
    write_dataset_files,
    write_index_files,
)
from repro.core.sets import SetRecord
from repro.core.similarity import get_measure
from repro.core.tgm import TokenGroupMatrix
from repro.testing.faults import fault_point
from repro.distributed.sharded import (
    LazyShardTGMs,
    ShardedLES3,
    _build_concurrently,
    _shard_knn_batch,
    _shard_range_batch,
)

__all__ = [
    "save_sharded",
    "load_sharded",
    "is_sharded_index",
    "query_payload",
    "run_shard_task",
    "SHARDED_FORMAT_VERSION",
    "SHARDED_LOAD_MODES",
]

SHARDED_FORMAT_VERSION = 1

#: Load modes of :func:`load_sharded` — the single-engine modes plus
#: ``"lazy"`` (mmap-backed dataset *and* on-demand shard TGMs).
SHARDED_LOAD_MODES = ("memory", "mmap", "lazy")

#: LRU capacity for lazily built shard TGMs (``mode="lazy"``) when the
#: caller doesn't pick one.
DEFAULT_RESIDENT_SHARDS = 4

#: Per-worker LRU capacities for the process-pool caches: rehydrated
#: shard TGMs and join profiles are bounded per worker instead of
#: accumulating one entry per shard ever touched.
_WORKER_CACHE_CAPACITY = 8

_SHARD_FILES = ("manifest.json", "groups.json")


def is_sharded_index(directory: str | Path) -> bool:
    """True when ``directory`` holds a *sharded* save (vs single-engine).

    The discriminator is the presence of
    :data:`~repro.core.persistence.SHARDED_MANIFEST_KEY` in the top-level
    ``manifest.json``.  Unreadable or non-JSON manifests answer False —
    this is a cheap router (the CLI's auto-detection); the actual loaders
    do the integrity checking.
    """
    manifest = Path(directory) / "manifest.json"
    if not manifest.is_file():
        return False
    try:
        data = json.loads(manifest.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(data, dict) and SHARDED_MANIFEST_KEY in data


def shard_dir_name(shard_id: int) -> str:
    """Canonical subdirectory name of shard ``shard_id`` (``shard-0042``)."""
    return f"shard-{shard_id:04d}"


def _shard_digest(shard_dir: Path) -> str:
    """SHA-256 over the shard's files, in fixed order."""
    digest = hashlib.sha256()
    for name in _SHARD_FILES:
        try:
            digest.update((shard_dir / name).read_bytes())
        except FileNotFoundError as error:
            raise PersistenceError(
                f"shard directory {shard_dir} is missing {name}"
            ) from error
    return "sha256:" + digest.hexdigest()


# -- save ------------------------------------------------------------------


def save_sharded(engine: ShardedLES3, directory: str | Path) -> None:
    """Persist a built sharded engine to ``directory`` (created if missing).

    The global dataset is written once; every shard gets a subdirectory
    with the standard single-engine v2 ``manifest.json`` (carrying that
    shard's ``deleted`` tombstones and the engine's ``verify`` mode) and
    ``groups.json`` (global record indices).  The top-level manifest
    records the placement policy, the shard count, and a digest of every
    shard's files.

    The save is **crash-safe**: the whole directory is staged as a
    ``<directory>.tmp-<pid>`` sibling, fsynced, and atomically renamed
    into place (:func:`repro.core.persistence.atomic_directory`) — a
    crash leaves the target either the previous save, absent, or the new
    save, never a half-written generation.  Because each save is a fresh
    staged directory, stale ``shard-NNNN`` subdirectories from a
    previous save with more shards can never survive a re-save.

    On success the engine's :attr:`~repro.distributed.sharded.ShardedLES3.source_dir`
    is set to ``directory``, which is what arms the ``"process"``
    execution mode (workers rehydrate from there).

    Parameters
    ----------
    engine : ShardedLES3
        The engine to persist; dataset, shard groups, placement policy,
        verify mode, and delete log are all captured.
    directory : str or Path
        Target directory; created if missing, atomically replaced if
        present.

    See Also
    --------
    load_sharded : the inverse operation.
    repro.core.persistence.save_engine : the single-engine variant.
    """
    directory = Path(directory)
    deleted_of_shard: dict[int, list[int]] = {}
    for record_index, shard_id in engine.removed.items():
        deleted_of_shard.setdefault(shard_id, []).append(record_index)
    with atomic_directory(directory) as staging:
        dataset_digests = write_dataset_files(engine.dataset, staging)
        entries = []
        for shard_id, tgm in enumerate(engine.tgms):
            shard_dir = staging / shard_dir_name(shard_id)
            manifest = engine_manifest(
                measure=engine.measure.name,
                backend=tgm.backend,
                num_records=len(engine.dataset),
                universe_size=len(engine.dataset.universe),
                verify=engine.verify,
                deleted=sorted(deleted_of_shard.get(shard_id, [])),
            )
            write_index_files(shard_dir, tgm.group_members, manifest)
            entries.append(
                {"directory": shard_dir_name(shard_id), "digest": _shard_digest(shard_dir)}
            )
        top = {
            "sharded_format_version": SHARDED_FORMAT_VERSION,
            "num_shards": engine.num_shards,
            "placement": engine.placement,
            "measure": engine.measure.name,
            "verify": engine.verify,
            "num_records": len(engine.dataset),
            "universe_size": len(engine.dataset.universe),
            **dataset_digests,
            "shards": entries,
        }
        top["epoch"] = manifest_epoch(top)
        payload = json.dumps(top, indent=2) + "\n"
        (staging / "manifest.json").write_text(payload)
        # The staged generation carries no delta.log: saving folds every
        # pending delta op into the new base (this is what `repro
        # compact` relies on).
    engine._source_dir = str(directory)
    engine._source_epoch = top["epoch"]
    engine._delta = DeltaSegment(directory, base_epoch=top["epoch"])


# -- load ------------------------------------------------------------------


def _read_sharded_manifest(directory: Path) -> dict:
    manifest = read_index_json(directory / "manifest.json", "sharded manifest")
    if not isinstance(manifest, dict):
        raise PersistenceError(f"sharded manifest in {directory} must be a JSON object")
    if SHARDED_MANIFEST_KEY not in manifest:
        raise PersistenceError(
            f"{directory} holds a single-engine index (no {SHARDED_MANIFEST_KEY!r}); "
            "load it with repro.core.load_engine"
        )
    if manifest[SHARDED_MANIFEST_KEY] != SHARDED_FORMAT_VERSION:
        raise PersistenceError(
            "unsupported sharded index format version "
            f"{manifest[SHARDED_MANIFEST_KEY]!r}"
        )
    return manifest


def _shard_entries(manifest: dict, directory: Path) -> list[Path]:
    num_shards = manifest.get("num_shards")
    entries = manifest.get("shards")
    if not isinstance(num_shards, int) or num_shards < 1:
        raise PersistenceError(
            f"sharded manifest 'num_shards' must be a positive integer, got {num_shards!r}"
        )
    if not isinstance(entries, list):
        raise PersistenceError("sharded manifest 'shards' must be a list")
    if len(entries) != num_shards:
        raise PersistenceError(
            f"shard count mismatch: manifest declares {num_shards} shard(s) "
            f"but lists {len(entries)} shard entr{'y' if len(entries) == 1 else 'ies'}"
        )
    shard_dirs = []
    for shard_id, entry in enumerate(entries):
        expected_name = shard_dir_name(shard_id)
        if not isinstance(entry, dict) or entry.get("directory") != expected_name:
            raise PersistenceError(
                f"shard entry {shard_id} must reference subdirectory "
                f"{expected_name!r}, got {entry!r}"
            )
        shard_dir = directory / expected_name
        if not shard_dir.is_dir():
            raise PersistenceError(
                f"missing shard subdirectory {expected_name!r} in {directory}"
            )
        digest = entry.get("digest")
        actual = _shard_digest(shard_dir)
        if digest != actual:
            raise PersistenceError(
                f"shard {expected_name!r} digest mismatch (manifest {digest!r}, "
                f"files {actual!r}) — truncated write or tampering; refusing to load"
            )
        shard_dirs.append(shard_dir)
    return shard_dirs


def _read_shard(
    shard_dir: Path, num_records: int, measure_name: str
) -> tuple[list[list[int]], str, set[int], str]:
    """Read one shard subdirectory: ``(groups, backend, deleted, verify)``."""
    manifest = read_index_json(shard_dir / "manifest.json", "shard manifest")
    if not isinstance(manifest, dict):
        raise PersistenceError(f"shard manifest in {shard_dir} must be a JSON object")
    if manifest.get("format_version") not in (2, 3, 4):
        raise PersistenceError(
            f"shard manifest in {shard_dir} has unsupported format version "
            f"{manifest.get('format_version')!r} (sharded saves write v2/v3/v4)"
        )
    if manifest.get("measure") != measure_name:
        raise PersistenceError(
            f"shard manifest in {shard_dir} is for measure "
            f"{manifest.get('measure')!r}, top-level manifest says {measure_name!r}"
        )
    if manifest.get("num_records") != num_records:
        raise PersistenceError(
            f"shard manifest in {shard_dir} says {manifest.get('num_records')!r} "
            f"records, dataset holds {num_records}"
        )
    deleted, verify = parse_manifest_state(manifest, num_records)
    return read_groups(shard_dir), manifest["backend"], deleted, verify


def load_sharded(
    directory: str | Path,
    parallel: str | None = None,
    workers: int | None = None,
    mode: str = "memory",
    max_resident_shards: int | None = None,
) -> ShardedLES3:
    """Deprecated alias of :func:`repro.load` for sharded saves.

    Kept as a documented thin wrapper: it behaves exactly like
    :func:`_load_sharded` always has, but new code should call
    :func:`repro.load`, which auto-detects single-engine vs sharded
    directories and accepts one uniform set of options for both.  See
    the migration note in ``docs/persistence.md``.
    """
    warnings.warn(
        "load_sharded is deprecated; use repro.load(directory, mode=...) — "
        "it auto-detects single-engine and sharded saves",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_sharded(directory, parallel, workers, mode, max_resident_shards)


def _load_sharded(
    directory: str | Path,
    parallel: str | None = None,
    workers: int | None = None,
    mode: str = "memory",
    max_resident_shards: int | None = None,
) -> ShardedLES3:
    """Load a sharded engine persisted by :func:`save_sharded`.

    Every shard's digest is verified and the shard groups plus
    tombstones must cover the dataset exactly once *globally*.  The
    loaded engine answers knn/range/join queries bit-identically to the
    engine that was saved — deletes included, in every ``mode`` and
    every ``parallel`` execution mode — and is immediately eligible for
    ``parallel="process"`` execution (its
    :attr:`~repro.distributed.sharded.ShardedLES3.source_dir` points at
    ``directory``).

    Parameters
    ----------
    directory : str or Path
        A directory written by :func:`save_sharded`.
    parallel : {"serial", "thread", "process"}, optional
        Default execution mode of the returned engine (``"serial"`` when
        omitted).
    workers : int, optional
        Threads for the concurrent TGM rebuilds (eager modes only).
    mode : {"memory", "mmap", "lazy"}, default ``"memory"``
        How the dataset and the shard indexes come up:

        * ``"memory"`` — parse ``dataset.txt`` into Python records and
          rebuild every shard TGM concurrently (the original behavior).
        * ``"mmap"`` — map the binary columnar ``dataset.bin`` with
          ``np.memmap`` (no record objects); TGMs are still built
          eagerly, from vectorized CSR gathers.
        * ``"lazy"`` — mapped dataset *and* on-demand shard TGMs: a
          shard's index is built on its first visit and at most
          ``max_resident_shards`` stay resident (LRU).  Lazy engines are
          read-only (``insert``/``remove`` raise).
    max_resident_shards : int, optional
        LRU capacity for ``mode="lazy"`` (default 4).

    Returns
    -------
    ShardedLES3

    Raises
    ------
    PersistenceError
        On any integrity failure: unknown format version, shard-count
        mismatch, missing shard subdirectory, digest mismatch, truncated
        JSON, measure/record-count inconsistencies, a coverage
        violation, or an mmap-backed mode asked of a pre-v3 save (no
        ``dataset.bin``).
    FileNotFoundError
        If ``directory`` (or its top-level manifest/dataset) is absent.

    Examples
    --------
    >>> import tempfile, os, repro
    >>> from repro import Dataset, ShardedLES3
    >>> from repro.distributed import save_sharded
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> engine = ShardedLES3.build(dataset, num_shards=2, num_groups=2)
    >>> path = os.path.join(tempfile.mkdtemp(), "sharded-index")
    >>> save_sharded(engine, path)
    >>> repro.load(path).knn(["a", "b"], k=1).matches
    [(0, 1.0)]
    >>> repro.load(path, mode="lazy").knn(["a", "b"], k=1).matches
    [(0, 1.0)]
    """
    if mode not in SHARDED_LOAD_MODES:
        raise ValueError(
            f"unknown load mode {mode!r}; expected one of {SHARDED_LOAD_MODES}"
        )
    directory = Path(directory)
    recover_interrupted_swap(directory)
    top = _read_sharded_manifest(directory)
    shard_dirs = _shard_entries(top, directory)
    if mode == "memory":
        check_dataset_digest(top, directory)
        dataset = Dataset.load(directory / "dataset.txt")
    else:
        dataset = open_mapped_dataset(directory, top)
    if len(dataset) != top.get("num_records"):
        raise PersistenceError(
            f"dataset.txt holds {len(dataset)} records, sharded manifest says "
            f"{top.get('num_records')!r} — index directory is corrupt"
        )
    measure_name = top.get("measure")
    measure = get_measure(measure_name)
    verify = top.get("verify", "columnar")
    if verify not in VERIFY_MODES:
        raise PersistenceError(
            f"sharded manifest 'verify' must be one of {VERIFY_MODES}, got {verify!r}"
        )
    all_groups: list[list[list[int]]] = []
    backends: list[str] = []
    removed: dict[int, int] = {}
    for shard_id, shard_dir in enumerate(shard_dirs):
        groups, backend, deleted, shard_verify = _read_shard(
            shard_dir, len(dataset), measure_name
        )
        if shard_verify != verify:
            raise PersistenceError(
                f"shard manifest in {shard_dir} has verify {shard_verify!r}, "
                f"top-level manifest says {verify!r}"
            )
        all_groups.append(groups)
        backends.append(backend)
        for record_index in deleted:
            if record_index in removed:
                raise PersistenceError(
                    f"record {record_index} is tombstoned by more than one shard"
                )
            removed[record_index] = shard_id
    check_exact_cover(
        [group for groups in all_groups for group in groups],
        set(removed),
        len(dataset),
        "the union of the shard groups",
    )
    # Replay the generation's write-ahead delta log over the immutable
    # base: inserts re-append their records (index-checked), removes
    # become tombstones, and every shard's group lists absorb its ops
    # before any TGM is built — eager and lazy builds alike, so an
    # evicted lazy shard rebuilds to the same folded state.
    ops = read_delta_ops(directory)
    for op in ops:
        shard_id = op.get("shard")
        if shard_id is None or shard_id >= len(all_groups):
            raise PersistenceError(
                f"delta log op references shard {shard_id!r} outside the saved "
                f"{len(all_groups)} shard(s) — log and base generation mismatch"
            )
        if op["op"] == "insert":
            apply_insert_op(dataset, op)
        else:
            removed[op["index"]] = shard_id
    for shard_id, groups in enumerate(all_groups):
        apply_group_ops(groups, ops, shard=shard_id)

    def shard_builder(
        groups: list[list[int]], backend: str
    ) -> Callable[[], TokenGroupMatrix]:
        def build() -> TokenGroupMatrix:
            return TokenGroupMatrix(dataset, groups, measure, backend)

        return build

    builders = [
        shard_builder(groups, backend) for groups, backend in zip(all_groups, backends)
    ]
    if mode == "lazy":
        capacity = (
            max_resident_shards if max_resident_shards is not None
            else DEFAULT_RESIDENT_SHARDS
        )
        tgms: object = LazyShardTGMs(builders, capacity)
        shard_groups = all_groups
    else:
        tgms = _build_concurrently(builders, workers)
        shard_groups = None
    engine = ShardedLES3(
        dataset,
        tgms,
        measure,
        verify=verify,
        parallel=parallel if parallel is not None else "serial",
        shard_groups=shard_groups,
    )
    engine.removed = removed
    engine.placement = top.get("placement", "custom")
    engine._source_dir = str(directory)
    base_epoch = top.get("epoch") or (
        "sha256:"
        + hashlib.sha256((directory / "manifest.json").read_bytes()).hexdigest()
    )
    engine._delta = DeltaSegment(directory, base_epoch=base_epoch, num_ops=len(ops))
    engine._source_epoch = engine._delta.epoch()
    return engine


# -- query payloads (parent process -> worker process) ---------------------


def query_payload(dataset: Dataset, query: SetRecord) -> tuple:
    """Encode a query record as a picklable, universe-independent payload.

    A worker process re-interns the saved ``dataset.txt``, so its token
    *ids* need not match the parent's — but the saved file stores
    ``str(token)`` forms, which is exactly the normal form this payload
    uses.  Known tokens travel as ``(str_form, multiplicity)`` pairs;
    tokens outside the parent's universe (phantoms — they count towards
    ``|Q|`` but match nothing) travel as bare multiplicities.  Overlaps,
    sizes, and therefore similarities are integer/float64-identical on
    both sides.
    """
    universe = dataset.universe
    universe_size = len(universe)
    known: list[tuple[str, int]] = []
    phantom: list[int] = []
    for token_id, count in sorted(query.counts().items()):
        if token_id < universe_size:
            known.append((str(universe.token_of(token_id)), count))
        else:
            phantom.append(count)
    return (known, phantom)


def payload_record(dataset: Dataset, payload: tuple) -> SetRecord:
    """Decode :func:`query_payload` against this process's universe."""
    known, phantom = payload
    universe = dataset.universe
    next_phantom = len(universe)
    token_ids: list[int] = []
    for token, count in known:
        token_id = universe.get_id(token)
        if token_id is None:
            token_id = next_phantom
            next_phantom += 1
        token_ids.extend([token_id] * count)
    for count in phantom:
        token_ids.extend([next_phantom] * count)
        next_phantom += 1
    return SetRecord(token_ids)


# -- the process-pool worker ----------------------------------------------
#
# One cache per worker process, keyed by (directory, epoch): the first
# task against a saved index opens the dataset (once per directory) and
# the touched shards; every later task reuses them.  A re-save bumps the
# epoch (the digest of the top-level manifest), which drops the stale
# entries.  Workers rehydrate *lazily* and stay bounded: the dataset is
# the mmap-backed binary columnar file when the save carries one (a v3
# save always does) — no per-record Python objects, pages faulted in on
# demand — and the shard TGM / join-profile caches are small LRUs
# (``_WORKER_CACHE_CAPACITY``) instead of one entry per shard ever
# touched, so a worker serving many shards of a large index holds a few
# resident indexes, not all of them.

_worker_datasets: dict[tuple[str, str], Dataset] = {}
_worker_delta_ops: dict[tuple[str, str], list[dict]] = {}
_worker_tgms = LRUCache(_WORKER_CACHE_CAPACITY)
_worker_profiles = LRUCache(_WORKER_CACHE_CAPACITY)


def _epoch_delta_count(epoch: str) -> int:
    """How many delta ops an epoch string advertises (its ``+N`` suffix)."""
    _base, sep, suffix = epoch.rpartition("+")
    if sep and suffix.isdigit():
        return int(suffix)
    return 0


def _evict_stale(directory: str, epoch: str) -> None:
    for table in (_worker_datasets, _worker_delta_ops):
        for key in [k for k in table if k[0] == directory and k[1] != epoch]:
            del table[key]
    for cache in (_worker_tgms, _worker_profiles):
        cache.drop_matching(lambda k: k[0] == directory and k[1] != epoch)


def _worker_dataset(directory: str, epoch: str) -> Dataset:
    key = (directory, epoch)
    if key not in _worker_datasets:
        _evict_stale(directory, epoch)
        path = Path(directory)
        if (path / DATASET_BIN).is_file():
            # Same entry point as the parent's mmap load, so the binary
            # header is cross-checked against the manifest — a stale or
            # mixed-save dataset.bin fails here too instead of letting a
            # worker answer from different records than the parent.
            manifest = read_index_json(path / "manifest.json", "index manifest")
            dataset = open_mapped_dataset(
                path, manifest if isinstance(manifest, dict) else {}
            )
        else:
            # Pre-v3 save: fall back to the full text rehydration.
            dataset = Dataset.load(path / "dataset.txt")
        # An epoch with a ``+N`` suffix means the parent committed N delta
        # ops on top of this generation: replay exactly those, in order,
        # so the worker answers from the same records as the parent.
        count = _epoch_delta_count(epoch)
        ops: list[dict] = []
        if count:
            ops = read_delta_ops(path)
            if len(ops) < count:
                raise PersistenceError(
                    f"epoch {epoch!r} advertises {count} delta op(s) but "
                    f"{path} holds {len(ops)} — delta log out of sync"
                )
            ops = ops[:count]
            for op in ops:
                if op["op"] == "insert":
                    apply_insert_op(dataset, op)
        _worker_delta_ops[key] = ops
        _worker_datasets[key] = dataset
    return _worker_datasets[key]


def _worker_tgm(directory: str, epoch: str, shard_id: int) -> TokenGroupMatrix:
    def build() -> TokenGroupMatrix:
        dataset = _worker_dataset(directory, epoch)
        shard_dir = Path(directory) / shard_dir_name(shard_id)
        manifest = read_index_json(shard_dir / "manifest.json", "shard manifest")
        groups = read_groups(shard_dir)
        apply_group_ops(groups, _worker_delta_ops[(directory, epoch)], shard=shard_id)
        return TokenGroupMatrix(
            dataset, groups, get_measure(manifest["measure"]), manifest["backend"]
        )

    return _worker_tgms.get_or_build((directory, epoch, shard_id), build)


def _worker_profile(directory: str, epoch: str, shard_id: int) -> tuple:
    def build() -> tuple:
        from repro.core.join import group_join_profiles

        dataset = _worker_dataset(directory, epoch)
        tgm = _worker_tgm(directory, epoch, shard_id)
        return group_join_profiles(dataset, tgm.group_members)

    return _worker_profiles.get_or_build((directory, epoch, shard_id), build)


def run_shard_task(directory: str, task: tuple, epoch: str = "") -> object:
    """Execute one picklable shard task inside a worker process.

    Task descriptors (dispatched by the ``"process"`` execution mode of
    :class:`~repro.distributed.sharded.ShardedLES3`):

    * ``("knn", shard_id, [(query_id, payload), ...], k, verify)``
    * ``("range", shard_id, [(query_id, payload), ...], threshold, verify)``
    * ``("join_self", shard_id, threshold, verify)``
    * ``("join_between", shard_a, shard_b, threshold, verify)``

    The query kinds return ``[(query_id, matches, stats), ...]``; the
    join kinds return ``(pairs, stats)``.  All record indices are global
    (shard groups are stored with global indices), so partials merge
    without translation.
    """
    kind = task[0]
    fault_point("shard.task", f"{kind}:shard={task[1]}")
    dataset = _worker_dataset(directory, epoch)
    if kind == "knn":
        _, shard_id, items, k, verify = task
        tgm = _worker_tgm(directory, epoch, shard_id)
        batch = [(qid, payload_record(dataset, payload)) for qid, payload in items]
        return _shard_knn_batch(dataset, tgm, batch, k, tgm.measure, verify)
    if kind == "range":
        _, shard_id, items, threshold, verify = task
        tgm = _worker_tgm(directory, epoch, shard_id)
        batch = [(qid, payload_record(dataset, payload)) for qid, payload in items]
        return _shard_range_batch(dataset, tgm, batch, threshold, tgm.measure, verify)
    if kind == "join_self":
        from repro.core.join import similarity_self_join

        _, shard_id, threshold, verify = task
        tgm = _worker_tgm(directory, epoch, shard_id)
        result = similarity_self_join(
            dataset, tgm, threshold, verify=verify,
            profiles=_worker_profile(directory, epoch, shard_id),
        )
        return (result.pairs, result.stats)
    if kind == "join_between":
        from repro.core.join import similarity_join_between

        _, shard_a, shard_b, threshold, verify = task
        result = similarity_join_between(
            dataset,
            _worker_tgm(directory, epoch, shard_a),
            _worker_tgm(directory, epoch, shard_b),
            threshold,
            verify=verify,
            profiles_a=_worker_profile(directory, epoch, shard_a),
            profiles_b=_worker_profile(directory, epoch, shard_b),
        )
        return (result.pairs, result.stats)
    raise ValueError(f"unknown shard task kind {kind!r}")
