"""ShardedLES3 — scatter-gather set similarity search over S shards.

The dataset is split across shards (:mod:`repro.distributed.sharding`),
each shard gets its own TGM built concurrently with a
``ThreadPoolExecutor`` (the same pattern the L2P cascade uses for models
of one level), and queries are answered by scatter-gather:

1. **Shard scoring.**  Every shard maintains a *shard vocabulary* — the
   union of its groups' token sets.  Because every measure's group bound
   is monotone in the covered-token count, the bound computed from the
   shard vocabulary upper-bounds every group bound inside the shard, and
   therefore every member's similarity.  Scoring all shards costs
   ``O(S · |Q|)`` — one row of bits per shard instead of ``n`` rows.
2. **Shard pruning.**  Shards are visited in descending bound order; once
   the running global kth similarity (kNN) or the threshold (range)
   strictly exceeds a shard's bound, that shard — and every shard after
   it — is skipped *before its per-group bounds are even computed*.
3. **Gather.**  Surviving shards are searched with the exact same group
   visit used by the single engine (:func:`repro.core.search`), and the
   merge applies the canonical ``(-similarity, index)`` tie-break.

Results are therefore *bit-identical* to a single :class:`repro.core.LES3`
over the same data — same records, same similarities, same order — for
any shard count, any placement strategy, and any per-shard partitioner.
Sharding is purely a throughput/scale knob, never a correctness one.

**Execution modes.**  Shard work can run three ways (``parallel=``):

* ``"serial"`` — one thread, shards visited in descending bound order
  into a shared top-k heap with cross-shard early termination; the
  lowest-latency mode on one core.
* ``"thread"`` — surviving shards are searched concurrently in a thread
  pool over the in-memory TGMs.  Helps when verification is
  numpy-heavy (the kernel releases the GIL inside BLAS/ufuncs).
* ``"process"`` — surviving shards are dispatched to a
  ``ProcessPoolExecutor`` as *picklable task descriptors*; each worker
  process rehydrates its shard from the engine's saved directory
  (:func:`repro.distributed.persistence.load_sharded` /
  :func:`~repro.distributed.persistence.save_sharded`) and caches it
  across tasks, sidestepping the GIL entirely.

All three modes return bit-identical matches; only the cost counters
differ (the parallel modes cannot early-terminate across shards, so they
may verify more candidates than ``"serial"``).  See
``docs/architecture.md`` for the data-flow picture.
"""

from __future__ import annotations

import heapq
import os
import random
import time
from collections.abc import Sequence as SequenceABC
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from types import TracebackType
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

import numpy as np

from repro.core.batch import batch_covered_counts
from repro.core.cache import LRUCache
from repro.core.columnar import make_verifier
from repro.core.dataset import Dataset
from repro.core.engine import (
    DEGRADED_MODES,
    LES3,
    PARALLEL_MODES,
    as_query_record,
    suggest_num_groups,
)
from repro.core.join import (
    JoinResult,
    best_feasible_pair_bound,
    group_join_profiles,
    similarity_join_between,
    similarity_self_join,
)
from repro.core.metrics import QueryStats
from repro.core.persistence import PersistenceError
from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.core.search import (
    SearchResult,
    finalize_result,
    knn_heap_matches,
    knn_visit_groups,
    match_sort_key,
    pad_zero_matches,
    prepare_query,
    query_group_bounds,
    range_collect_groups,
)
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure
from repro.core.tgm import TokenGroupMatrix
from repro.core.updates import insert_set
from repro.distributed.sharding import assign_shards, lpt_balance
from repro.testing.faults import fault_point

if TYPE_CHECKING:
    from repro.partitioning.base import Partitioner

# PARALLEL_MODES is re-exported here (its canonical home is
# repro.core.engine, shared by both engine classes) for back-compat.
__all__ = ["ShardedLES3", "LazyShardTGMs", "PARALLEL_MODES"]

# Errors shard supervision must never retry, fall back on, or degrade:
# an integrity refusal or an expired deadline is not a shard fault.
_FATAL_ERRORS = (PersistenceError, DeadlineExceeded)


def _build_concurrently(
    builders: Sequence[Callable[[], TokenGroupMatrix]], workers: int | None
) -> list[TokenGroupMatrix]:
    """Run shard-build thunks, in a thread pool when it can help."""
    if workers is None:
        workers = min(len(builders), os.cpu_count() or 1)
    if workers <= 1 or len(builders) <= 1:
        return [build() for build in builders]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(build) for build in builders]
        return [future.result() for future in futures]


class LazyShardTGMs(SequenceABC):
    """Shard TGMs built on first visit and evicted through a small LRU.

    The out-of-core counterpart of the eager TGM list: ``tgms[shard_id]``
    runs the shard's build thunk on a cache miss and keeps at most
    ``capacity`` built TGMs resident, evicting the least recently visited
    one beyond that.  Pruned shards therefore never pay their index
    build, and resident index memory is bounded by the capacity rather
    than the shard count — which is what ``load_sharded(..., mode="lazy")``
    hands to :class:`ShardedLES3`.  The cache is a thread-safe
    :class:`~repro.core.cache.LRUCache` because ``parallel="thread"``
    hands the same sequence to concurrent pool tasks (two tasks racing on
    one shard may both build it; the first publish wins — TGM builds are
    deterministic and immutable afterwards, so that is only spent time).

    Iterating the sequence builds every shard (it is how ``repro
    validate`` walks a lazy engine); queries only ever index it.
    """

    __slots__ = ("_builders", "_cache")

    def __init__(self, builders: Sequence, capacity: int) -> None:
        self._builders = list(builders)
        self._cache = LRUCache(capacity)

    def __len__(self) -> int:
        return len(self._builders)

    @property
    def capacity(self) -> int:
        """Maximum number of TGMs kept resident."""
        return self._cache.capacity

    def __getitem__(self, shard_id: int) -> TokenGroupMatrix:
        if isinstance(shard_id, slice):
            raise TypeError("lazy shard lists do not support slicing")
        if shard_id < 0:
            shard_id += len(self._builders)
        return self._cache.get_or_build(shard_id, self._builders[shard_id])

    def resident(self) -> list[TokenGroupMatrix]:
        """The TGMs currently held by the LRU (for size accounting)."""
        return self._cache.resident()


# -- per-shard partial searches -------------------------------------------
#
# Module-level (hence picklable) building blocks of the parallel execution
# modes: each computes one shard's *complete local answer* for a batch of
# queries, so partials from different shards can be merged with the
# canonical (-similarity, index) tie-break without any shared state.  The
# thread mode calls them directly over the in-memory TGMs; the process
# mode calls them inside workers that rehydrated the shard from disk
# (:func:`repro.distributed.persistence.run_shard_task`).


def _shard_knn_batch(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    items: list[tuple[int, SetRecord]],
    k: int,
    measure: Similarity,
    verify: str,
) -> list[tuple[int, list[tuple[int, float]], QueryStats]]:
    """Shard-local exact top-k (zero-padded) for ``(query_id, query)`` items.

    Every global top-k answer is inside its own shard's local top-k, and
    the local zero padding keeps the shard's smallest-index zero-similarity
    members available, so merging the per-shard partials and keeping the
    global k best under the canonical order reproduces the single-engine
    answer exactly.
    """
    results = []
    for query_id, query in items:
        stats = QueryStats()
        bounds = query_group_bounds(tgm, query, stats)
        heap: list[tuple[float, int]] = []
        zero_candidates: list[list[int]] = []
        verifier = make_verifier(dataset, query, measure, verify)
        knn_visit_groups(
            dataset, tgm, query, k, bounds, heap, stats,
            measure, zero_candidates, verifier,
        )
        pad_zero_matches(heap, k, zero_candidates)
        results.append((query_id, knn_heap_matches(heap), stats))
    return results


def _shard_range_batch(
    dataset: Dataset,
    tgm: TokenGroupMatrix,
    items: list[tuple[int, SetRecord]],
    threshold: float,
    measure: Similarity,
    verify: str,
) -> list[tuple[int, list[tuple[int, float]], QueryStats]]:
    """Shard-local range matches for ``(query_id, query)`` items."""
    results = []
    for query_id, query in items:
        stats = QueryStats()
        bounds = query_group_bounds(tgm, query, stats)
        matches: list[tuple[int, float]] = []
        verifier = make_verifier(dataset, query, measure, verify)
        range_collect_groups(
            dataset, tgm, query, threshold, bounds, matches, stats, measure, verifier
        )
        results.append((query_id, matches, stats))
    return results


class ShardedLES3:
    """Sharded, exact set similarity search over one logical dataset.

    All shards share the global :class:`~repro.core.dataset.Dataset`
    (records and token universe); each shard's TGM owns a disjoint subset
    of the record indices.  Construct via :meth:`build` (partition from
    scratch) or :meth:`from_engine` (re-shard an existing single-node
    engine); persist with
    :func:`repro.distributed.persistence.save_sharded` and restore with
    :func:`~repro.distributed.persistence.load_sharded`.

    Parameters
    ----------
    dataset : Dataset
        The shared database of sets (possibly mmap-backed — see
        :meth:`repro.core.dataset.Dataset.from_columnar_file`).
    tgms : sequence of TokenGroupMatrix
        One TGM per shard, over disjoint record subsets of ``dataset``.
        May be a :class:`LazyShardTGMs` (``load_sharded(..., mode="lazy")``),
        in which case ``shard_groups`` must carry the per-shard group
        membership so construction doesn't force every build; lazy
        engines are read-only.
    measure : str or Similarity, default ``"jaccard"``
        The similarity measure; must match every shard TGM's measure.
    verify : {"columnar", "scalar"}, default ``"columnar"``
        Default candidate-verification path (per-query override on every
        query method); results are bit-identical either way.
    parallel : {"serial", "thread", "process"}, default ``"serial"``
        Default execution mode for shard work (per-query override on
        every query method); results are bit-identical in every mode.

    Attributes
    ----------
    placement : str
        The record-placement policy this engine was built with
        (``"hash"``/``"size"``/``"range"`` from :meth:`build`, ``"lpt"``
        from :meth:`from_engine`, ``"custom"`` for hand-built shards);
        recorded in the sharded manifest on save.
    removed : dict[int, int]
        Logically deleted record index → the shard it was removed from
        (the persistence tombstone log).
    query_workers : int or None
        Pool size for the thread/process execution modes; defaults to
        ``min(num_shards, cpu_count)``.
    retry_policy : repro.core.resilience.RetryPolicy
        Supervision of ``"process"``-mode shard tasks: each task gets
        ``retry_policy.attempts`` tries with exponential backoff +
        jitter before the engine falls back to in-process execution.
    breaker_threshold, breaker_reset_seconds : int, float
        Per-shard circuit breaker knobs: after ``breaker_threshold``
        consecutive process-task failures a shard's breaker opens and
        its work runs in-process until a half-open probe (after
        ``breaker_reset_seconds``) succeeds.  See ``docs/operations.md``.

    Examples
    --------
    >>> from repro import Dataset, ShardedLES3
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["x", "y"]])
    >>> sharded = ShardedLES3.build(dataset, num_shards=2, num_groups=2)
    >>> sharded.knn(["a", "b"], k=1).matches
    [(0, 1.0)]
    >>> sharded.range(["x", "y"], threshold=0.5).matches
    [(2, 1.0)]
    """

    def __init__(
        self,
        dataset: Dataset,
        tgms: Sequence[TokenGroupMatrix],
        measure: str | Similarity = "jaccard",
        verify: str = "columnar",
        parallel: str = "serial",
        *,
        shard_groups: list[list[list[int]]] | None = None,
    ) -> None:
        if not len(tgms):
            raise ValueError("a sharded engine needs at least one shard")
        if parallel not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {parallel!r}; expected one of {PARALLEL_MODES}"
            )
        self.dataset = dataset
        # ``tgms`` may be a LazyShardTGMs (mode="lazy" loads): indexing it
        # builds the shard on demand, so the constructor must not iterate
        # it — the caller passes ``shard_groups`` instead.
        lazy = isinstance(tgms, LazyShardTGMs)
        self.tgms: Sequence[TokenGroupMatrix] = tgms if lazy else list(tgms)
        self.measure = get_measure(measure)
        self.verify = verify
        self.parallel = parallel
        self.placement = "custom"
        # Logically deleted record index -> shard it was removed from.
        # Queries never consult this (liveness is group membership); it is
        # the tombstone log the sharded manifests persist.
        self.removed: dict[int, int] = {}
        self.query_workers: int | None = None
        # Process-mode supervision knobs (see docs/operations.md).
        self.retry_policy = RetryPolicy()
        self.breaker_threshold = 5
        self.breaker_reset_seconds = 30.0
        self._breaker_clock = time.monotonic  # injectable for tests
        self._breakers: dict[int, CircuitBreaker] = {}
        self._source_dir: str | None = None
        self._source_epoch: str | None = None
        # Write-ahead delta segment of the saved generation (attached by
        # save_sharded/load_sharded); None for in-memory builds.
        self._delta = None
        self._thread_executor: ThreadPoolExecutor | None = None
        self._process_executor: ProcessPoolExecutor | None = None
        self._shard_of: dict[int, int] = {}
        self._shard_loads: list[int] = [0] * len(self.tgms)
        if shard_groups is None:
            if lazy:
                raise ValueError(
                    "lazily built shards need shard_groups (group membership "
                    "per shard) — reading it off the TGMs would force every build"
                )
            for shard_id, tgm in enumerate(self.tgms):
                if tgm.measure.name != self.measure.name:
                    raise ValueError(
                        f"shard {shard_id} is built for measure {tgm.measure.name!r}, "
                        f"engine uses {self.measure.name!r} — bounds would be unsound"
                    )
            # Share the TGMs' own membership lists so in-memory updates
            # (insert/remove mutate them in place) stay visible here.
            shard_groups = [tgm.group_members for tgm in self.tgms]
        self._shard_groups = shard_groups
        for shard_id, groups in enumerate(shard_groups):
            for members in groups:
                for record_index in members:
                    if record_index in self._shard_of:
                        raise ValueError(
                            f"record {record_index} assigned to more than one shard"
                        )
                    self._shard_of[record_index] = shard_id
                self._shard_loads[shard_id] += len(members)
        self._vocab = np.zeros((len(self.tgms), len(dataset.universe)), dtype=bool)
        view = dataset._columnar
        if view is not None:
            # Vectorized: one CSR gather per shard (a mapped dataset never
            # materializes a record here); bits are identical to the walk.
            view.sync()
            for shard_id, groups in enumerate(shard_groups):
                members = [index for group in groups for index in group]
                if members:
                    self._vocab[shard_id, view.tokens_of_records(members)] = True
        else:
            for record_index, shard_id in self._shard_of.items():
                record = dataset.records[record_index]
                self._vocab[shard_id, list(record.distinct)] = True

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        num_shards: int,
        num_groups: int | None = None,
        partitioner_factory: Callable[[int], Partitioner] | None = None,
        measure: str | Similarity = "jaccard",
        backend: str = "dense",
        strategy: str = "hash",
        seed: int = 0,
        workers: int | None = None,
        verify: str = "columnar",
        parallel: str = "serial",
    ) -> "ShardedLES3":
        """Shard the dataset and build one TGM per shard, concurrently.

        Parameters
        ----------
        dataset : Dataset
            The database of sets (shared, not copied, across shards).
        num_shards : int
            Target shard count ``S``; clipped to the dataset size.
        num_groups : int, optional
            *Total* group budget, split across shards proportionally to
            shard size; defaults to the paper's per-shard rule of thumb.
        partitioner_factory : callable, optional
            ``shard_id -> Partitioner``; each shard needs its own instance
            because partitioners carry training state.  Defaults to the
            L2P cascade seeded per shard.
        measure, backend, seed :
            As in :meth:`repro.core.LES3.build`.
        strategy : {"hash", "size", "range"}, default ``"hash"``
            Record placement (see :mod:`repro.distributed.sharding`);
            recorded as :attr:`placement`.
        workers : int, optional
            Threads for the concurrent shard builds; defaults to
            ``min(num_shards, cpu_count)``.
        verify, parallel :
            Default verification path and execution mode of the engine.

        Returns
        -------
        ShardedLES3
            A built engine answering queries bit-identically to a single
            :class:`~repro.core.engine.LES3` over the same data.
        """
        measure = get_measure(measure)
        assignments = assign_shards(dataset, num_shards, strategy)
        if not assignments:
            engine = cls(
                dataset, [TokenGroupMatrix(dataset, [], measure, backend)],
                measure, verify, parallel,
            )
            engine.placement = strategy
            return engine
        if partitioner_factory is None:
            from repro.learn.cascade import L2PPartitioner

            def partitioner_factory(shard_id: int) -> Partitioner:
                return L2PPartitioner(measure=measure, seed=seed + shard_id)

        total = len(dataset)

        def shard_builder(
            shard_id: int, indices: list[int]
        ) -> Callable[[], TokenGroupMatrix]:
            def build() -> TokenGroupMatrix:
                if num_groups is None:
                    target = suggest_num_groups(len(indices))
                else:
                    target = max(1, round(num_groups * len(indices) / total))
                target = min(target, len(indices))
                view = Dataset([dataset.records[i] for i in indices], dataset.universe)
                partition = partitioner_factory(shard_id).partition(view, target)
                groups = [[indices[local] for local in group] for group in partition.groups]
                return TokenGroupMatrix(dataset, groups, measure, backend)

            return build

        builders = [
            shard_builder(shard_id, indices)
            for shard_id, indices in enumerate(assignments)
        ]
        engine = cls(
            dataset, _build_concurrently(builders, workers), measure, verify, parallel
        )
        engine.placement = strategy
        return engine

    @classmethod
    def from_engine(
        cls,
        engine: LES3,
        num_shards: int,
        workers: int | None = None,
        parallel: str = "serial",
    ) -> "ShardedLES3":
        """Re-shard a built single-node engine without re-partitioning.

        The engine's existing groups are balanced across shards (largest
        groups first, each to the lightest shard), preserving the learned
        partitioning — only per-shard TGMs are rebuilt, concurrently.
        The engine's delete log carries over (tombstones are attributed
        to shard 0: they belong to no group, so the choice is pure
        bookkeeping for persistence).
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        groups = [list(members) for members in engine.tgm.group_members]
        num_shards = min(num_shards, len(groups)) or 1
        bins = lpt_balance([len(group) for group in groups], num_shards)
        shard_groups = [[groups[group_id] for group_id in bin_] for bin_ in bins]

        def shard_builder(assigned: list[list[int]]) -> Callable[[], TokenGroupMatrix]:
            def build() -> TokenGroupMatrix:
                return TokenGroupMatrix(
                    engine.dataset, assigned, engine.measure, engine.tgm.backend
                )

            return build

        builders = [shard_builder(assigned) for assigned in shard_groups]
        sharded = cls(
            engine.dataset, _build_concurrently(builders, workers), engine.measure,
            verify=engine.verify, parallel=parallel,
        )
        sharded.placement = "lpt"
        sharded.removed = {record_index: 0 for record_index in engine.removed}
        return sharded

    # -- lifecycle ---------------------------------------------------------

    @property
    def source_dir(self) -> str | None:
        """Directory this engine is persisted in and in sync with, if any.

        Set by :func:`~repro.distributed.persistence.save_sharded` and
        :func:`~repro.distributed.persistence.load_sharded`.  Mutations
        of a saved/loaded engine are appended to the generation's
        write-ahead ``delta.log``, so the directory *stays* in sync (the
        epoch gains a ``+<ops>`` suffix that tells process workers how
        many delta ops to replay).  Only mutating an engine that was
        never saved — no delta log to append to — clears this.  The
        ``"process"`` execution mode rehydrates its workers from here.
        """
        return self._source_dir

    def _require_mutable(self, operation: str) -> None:
        """Lazily loaded engines are read-only.

        A mutation would live only in whichever TGMs happen to be LRU
        resident — eviction and rebuild from disk would silently undo it,
        turning an exact engine into a wrong-answer one.  Refusing is the
        only safe behavior.
        """
        if self.is_lazy:
            from repro.core.persistence import PersistenceError

            raise PersistenceError(
                f"cannot {operation} on a lazily loaded engine (mode='lazy'): "
                "shard indexes are rebuilt from disk on demand, so in-memory "
                "mutations would be lost on eviction — reload with "
                "mode='mmap' or mode='memory' to mutate"
            )

    def _require_source_dir(self) -> str:
        if self._source_dir is None:
            raise ValueError(
                'parallel="process" rehydrates shard workers from disk, but this '
                "engine has no saved directory in sync with its state — persist it "
                "with save_sharded(engine, directory) or load it with "
                "load_sharded(directory) first (inserts/removes invalidate the save)"
            )
        return self._source_dir

    def _threads(self) -> ThreadPoolExecutor:
        if self._thread_executor is None:
            workers = self.query_workers or min(self.num_shards, os.cpu_count() or 1)
            self._thread_executor = ThreadPoolExecutor(max_workers=max(workers, 1))
        return self._thread_executor

    def _processes(self) -> ProcessPoolExecutor:
        if self._process_executor is None:
            workers = self.query_workers or min(self.num_shards, os.cpu_count() or 1)
            self._process_executor = ProcessPoolExecutor(max_workers=max(workers, 1))
        return self._process_executor

    def close(self) -> None:
        """Shut down the lazily created thread/process pools (idempotent)."""
        for attribute in ("_thread_executor", "_process_executor"):
            pool = getattr(self, attribute)
            if pool is not None:
                pool.shutdown(wait=True)
                setattr(self, attribute, None)

    def __enter__(self) -> "ShardedLES3":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self.close()
        return False

    # -- introspection -----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.tgms)

    @property
    def num_groups(self) -> int:
        """Total group count across all shards."""
        return sum(len(groups) for groups in self._shard_groups)

    def _group_members_of(self, shard_id: int) -> list[list[int]]:
        """A shard's group membership without forcing a lazy TGM build."""
        return self._shard_groups[shard_id]

    def _num_groups_of(self, shard_id: int) -> int:
        return len(self._shard_groups[shard_id])

    @property
    def is_lazy(self) -> bool:
        """True when shard TGMs are built on demand (``mode="lazy"`` loads)."""
        return isinstance(self.tgms, LazyShardTGMs)

    def shard_sizes(self) -> list[int]:
        """Live record count per shard (maintained across inserts/removes)."""
        return list(self._shard_loads)

    def index_bytes(self) -> int:
        """Summed TGM sizes plus the shard-vocabulary index.

        On a lazy engine only the *resident* TGMs (the LRU's current
        contents) are counted — the evicted ones hold no memory, which is
        the point of the mode.
        """
        tgms = self.tgms.resident() if self.is_lazy else self.tgms
        return sum(tgm.byte_size() for tgm in tgms) + (self._vocab.size + 7) // 8

    def tokens_of(self, record_index: int) -> list[Hashable]:
        """External tokens of a stored record (for presenting results)."""
        record = self.dataset.records[record_index]
        return [self.dataset.universe.token_of(token_id) for token_id in record.tokens]

    # -- shard-level bounds ------------------------------------------------

    def _shard_covered(self, query: SetRecord) -> np.ndarray:
        """``|Q ∩ vocab(shard)|`` (multiplicity-weighted) for every shard."""
        known, weights, _ = prepare_query(query, self._vocab.shape[1])
        if not known:
            return np.zeros(self.num_shards, dtype=np.int64)
        return self._vocab[:, known] @ np.asarray(weights, dtype=np.int64)

    def shard_bounds(self, query: SetRecord) -> np.ndarray:
        """Similarity upper bound of every shard for ``query``.

        The bound from a shard's vocabulary dominates every group bound
        inside the shard (vocabularies only grow when groups merge and
        every measure's bound is monotone in the covered count), so a
        shard whose bound cannot beat the running kth similarity or the
        range threshold is skipped wholesale.
        """
        return self.measure.bounds_from_counts(self._shard_covered(query), len(query))

    def _batch_shard_covered(self, queries: Sequence[SetRecord]) -> np.ndarray:
        """Covered counts for a batch, shape ``(len(queries), S)``.

        Only the union of the batch's known tokens is gathered — the
        shard-scoring product is ``(B × |union|) @ (|union| × S)``, far
        smaller than the full universe width.
        """
        if not queries:
            return np.zeros((0, self.num_shards), dtype=np.int64)
        width = self._vocab.shape[1]
        per_query = [prepare_query(query, width) for query in queries]
        union = sorted({token for known, _, _ in per_query for token in known})
        if not union:
            return np.zeros((len(queries), self.num_shards), dtype=np.int64)
        column_of = {token: column for column, token in enumerate(union)}
        weighted = np.zeros((len(queries), len(union)), dtype=np.int64)
        for i, (known, weights, _) in enumerate(per_query):
            for token, weight in zip(known, weights):
                weighted[i, column_of[token]] = weight
        return weighted @ self._vocab[:, union].T.astype(np.int64)

    def _batch_shard_bound_rows(self, queries: Sequence[SetRecord]) -> list[np.ndarray]:
        covered = self._batch_shard_covered(queries)
        return [
            self.measure.bounds_from_counts(covered[i], len(query))
            for i, query in enumerate(queries)
        ]

    # -- mode resolution ---------------------------------------------------

    def _verify_mode(self, verify: str | None) -> str:
        return self.verify if verify is None else verify

    def _resolve_parallel(self, parallel: str | None) -> str:
        mode = self.parallel if parallel is None else parallel
        if mode not in PARALLEL_MODES:
            raise ValueError(
                f"unknown parallel mode {mode!r}; expected one of {PARALLEL_MODES}"
            )
        return mode

    def _resolve_degraded(self, degraded: str | None) -> str:
        mode = "strict" if degraded is None else degraded
        if mode not in DEGRADED_MODES:
            raise ValueError(
                f"unknown degraded mode {mode!r}; expected one of {DEGRADED_MODES}"
            )
        return mode

    # -- shard execution supervision ---------------------------------------

    def _breaker(self, shard_id: int) -> CircuitBreaker:
        breaker = self._breakers.get(shard_id)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_threshold,
                self.breaker_reset_seconds,
                clock=self._breaker_clock,
            )
            self._breakers[shard_id] = breaker
        return breaker

    def _discard_broken_pool(self, pool: ProcessPoolExecutor) -> None:
        """Retire a poisoned process pool so the next submit gets a fresh one."""
        if self._process_executor is pool:
            self._process_executor = None
        pool.shutdown(wait=False)

    @staticmethod
    def _remaining(deadline: Deadline | None) -> float | None:
        if deadline is None:
            return None
        return max(deadline.remaining(), 0.0)

    def _run_supervised(
        self,
        entries: list[tuple[int, tuple, object]],
        deadline: Deadline | None,
        degraded: str,
    ) -> tuple[dict[int, object], list[int]]:
        """Run process-mode shard tasks under full supervision.

        ``entries`` is a list of ``(shard_id, descriptor, local_thunk)``.
        Each descriptor is dispatched to the process pool with:

        * bounded retry (``retry_policy``: exponential backoff + jitter);
        * pool resurrection — on :class:`BrokenProcessPool` (a worker
          died) the pool is rebuilt **once per call** and only the tasks
          that actually failed are replayed; completed results are kept;
        * a per-shard :class:`~repro.core.resilience.CircuitBreaker` —
          after ``breaker_threshold`` consecutive failures the shard's
          work runs via ``local_thunk`` (in-process serial execution)
          until a timed half-open probe closes the breaker again;
        * deadline-bounded waits — :class:`DeadlineExceeded` is raised as
          soon as the deadline passes while results are outstanding.

        Returns ``(results keyed by entry index, failed shard ids)``.
        In ``"strict"`` mode a shard that fails even its in-process
        fallback re-raises; in ``"partial"`` mode it is recorded in the
        failed list and the caller answers from the healthy shards.
        """
        from repro.distributed.persistence import run_shard_task

        directory = self._require_source_dir()
        epoch = self._source_epoch or ""
        policy = self.retry_policy
        rng = random.Random()
        results: dict[int, object] = {}
        failed: list[int] = []
        rebuilt = False

        def submit(descriptor: tuple) -> tuple[Future, ProcessPoolExecutor]:
            fault_point("shard.submit", f"{descriptor[0]}:shard={descriptor[1]}")
            pool = self._processes()
            return pool.submit(run_shard_task, directory, descriptor, epoch), pool

        def run_local(index: int) -> bool:
            """In-process fallback; False means the shard failed for good."""
            shard_id, _descriptor, local_thunk = entries[index]
            if deadline is not None:
                deadline.check("shard fallback")
            try:
                results[index] = local_thunk()
                return True
            except _FATAL_ERRORS:
                raise
            except Exception:
                if degraded == "partial":
                    failed.append(shard_id)
                    return False
                raise

        inflight: list[tuple[int, object, object]] = []
        for index, (shard_id, descriptor, _local) in enumerate(entries):
            if self._breaker(shard_id).allow():
                future, pool = submit(descriptor)
                inflight.append((index, future, pool))
            else:
                # Breaker open: don't even touch the pool for this shard.
                run_local(index)

        for index, future, pool in inflight:
            shard_id, descriptor, _local = entries[index]
            breaker = self._breaker(shard_id)
            attempt = 1
            while True:
                try:
                    results[index] = future.result(timeout=self._remaining(deadline))
                    breaker.record_success()
                    break
                except FuturesTimeoutError:
                    raise DeadlineExceeded(
                        f"deadline exceeded awaiting shard {shard_id}"
                    ) from None
                except BrokenProcessPool:
                    # A worker died and poisoned the whole pool.  Rebuild
                    # it once per call and replay only the failed tasks —
                    # futures that completed before the break keep their
                    # results.  A pool another slot already replaced just
                    # resubmits without consuming the rebuild budget.
                    if pool is self._process_executor:
                        self._discard_broken_pool(pool)
                        if rebuilt:
                            # The rebuilt pool broke too: stop trusting
                            # process execution for this task.
                            breaker.record_failure()
                            run_local(index)
                            break
                        rebuilt = True
                    future, pool = submit(descriptor)
                except _FATAL_ERRORS:
                    raise
                except Exception:
                    breaker.record_failure()
                    if not self._retry_or_fallback(breaker, attempt, deadline, rng):
                        run_local(index)
                        break
                    attempt += 1
                    future, pool = submit(descriptor)
        return results, sorted(set(failed))

    def _retry_or_fallback(
        self,
        breaker: CircuitBreaker,
        attempt: int,
        deadline: Deadline | None,
        rng: random.Random,
    ) -> bool:
        """True to retry on the pool (after backoff), False to go local."""
        if attempt >= self.retry_policy.attempts or breaker.state == "open":
            return False
        delay = self.retry_policy.delay(attempt, rng)
        if deadline is not None:
            delay = min(delay, max(deadline.remaining(), 0.0))
        if delay > 0:
            time.sleep(delay)
        return True

    # -- parallel scatter-gather (thread / process) ------------------------

    def _presync_columnar(self, verify: str, mode: str) -> None:
        """Sync the shared CSR view *before* a thread-pool fan-out.

        ``ColumnarView.sync`` mutates the view in place when records were
        appended since the last sync; letting pool tasks trigger that
        concurrently would corrupt it under its readers.  Synced here, on
        the dispatching thread, the tasks only ever read it.
        """
        if mode == "thread" and verify == "columnar":
            self.dataset.columnar()

    def _scatter_batches(
        self,
        shard_items: list[list[int]],
        queries: Sequence[SetRecord],
        mode: str,
        make_task: Callable[[int, list[tuple[int, object]]], tuple[object, ...]],
        run_local: Callable[[int, list[tuple[int, SetRecord]]], object],
        deadline: Deadline | None = None,
        degraded: str = "strict",
    ) -> tuple[list, list[int]]:
        """Dispatch per-shard query batches; return ``(partials, failed_shards)``.

        ``shard_items[shard_id]`` lists the query positions the shard must
        answer.  Thread mode runs ``run_local(shard_id, items)`` over the
        in-memory TGMs; process mode ships ``make_task(shard_id, payloads)``
        descriptors to workers rehydrated from :attr:`source_dir`, under
        the full supervision of :meth:`_run_supervised` (retry + backoff,
        pool resurrection, per-shard circuit breaker with in-process
        fallback).  Shard futures are awaited against ``deadline``; in
        ``degraded="partial"`` mode a shard whose execution fails for good
        lands in ``failed_shards`` instead of raising.
        """
        partials: list = []
        failed: list[int] = []
        if mode == "thread":
            pool = self._threads()
            submitted = []
            for shard_id, items in enumerate(shard_items):
                if items:
                    batch = [(i, queries[i]) for i in items]
                    fault_point("shard.submit", f"batch:shard={shard_id}")
                    submitted.append((shard_id, pool.submit(run_local, shard_id, batch)))
            for shard_id, future in submitted:
                try:
                    partials.extend(future.result(timeout=self._remaining(deadline)))
                except FuturesTimeoutError:
                    raise DeadlineExceeded(
                        f"deadline exceeded awaiting shard {shard_id}"
                    ) from None
                except _FATAL_ERRORS:
                    raise
                except Exception:
                    if degraded != "partial":
                        raise
                    failed.append(shard_id)
            return partials, failed

        from repro.distributed.persistence import query_payload

        # A query surviving the bound in several shards is encoded once.
        payload_cache: dict[int, tuple] = {}

        def payload_of(i: int) -> tuple:
            if i not in payload_cache:
                payload_cache[i] = query_payload(self.dataset, queries[i])
            return payload_cache[i]

        entries = []
        for shard_id, items in enumerate(shard_items):
            if items:
                payloads = [(i, payload_of(i)) for i in items]

                def local(shard_id: int = shard_id, items: list[int] = items) -> object:
                    return run_local(shard_id, [(i, queries[i]) for i in items])

                entries.append((shard_id, make_task(shard_id, payloads), local))
        results, failed = self._run_supervised(entries, deadline, degraded)
        for index in sorted(results):
            partials.extend(results[index])
        return partials, failed

    @staticmethod
    def _note_failed_shards(
        stats: list[QueryStats],
        shard_items: list[list[int]],
        failed_shards: list[int],
    ) -> None:
        """Record, per query, which dispatched shards failed (partial mode)."""
        for shard_id in failed_shards:
            for i in shard_items[shard_id]:
                noted = stats[i].extra.setdefault("failed_shards", [])
                if shard_id not in noted:
                    noted.append(shard_id)
        for query_stats in stats:
            if "failed_shards" in query_stats.extra:
                query_stats.extra["failed_shards"].sort()

    def _parallel_knn(
        self,
        queries: Sequence[SetRecord],
        k: int,
        verify: str,
        mode: str,
        deadline: Deadline | None = None,
        degraded: str = "strict",
    ) -> list[SearchResult]:
        """kNN for a batch with per-shard partials merged canonically.

        Shards whose bound is 0 for a query are never dispatched: their
        members are provably at similarity 0, so the parent contributes
        the shard's ``k`` smallest member indices as zero-padding
        candidates directly, exactly like the serial path's
        :func:`~repro.core.search.pad_zero_matches` would.
        """
        self._presync_columnar(verify, mode)
        bound_rows = self._batch_shard_bound_rows(queries)
        merged: list[list[tuple[int, float]]] = [[] for _ in queries]
        stats: list[QueryStats] = [QueryStats() for _ in queries]
        shard_items: list[list[int]] = [[] for _ in range(self.num_shards)]
        zero_pads: dict[int, list[tuple[int, float]]] = {}
        for i in range(len(queries)):
            for shard_id in range(self.num_shards):
                if bound_rows[i][shard_id] > 0.0:
                    shard_items[shard_id].append(i)
                    continue
                if shard_id not in zero_pads:
                    groups = self._group_members_of(shard_id)
                    zero_pads[shard_id] = [
                        (index, 0.0)
                        for index in heapq.nsmallest(
                            k, (m for members in groups for m in members)
                        )
                    ]
                merged[i].extend(zero_pads[shard_id])
                stats[i].groups_pruned += self._num_groups_of(shard_id)

        def run_local(
            shard_id: int, batch: list[tuple[int, SetRecord]]
        ) -> list[tuple[int, list[tuple[int, float]], QueryStats]]:
            fault_point("shard.exec", f"knn:shard={shard_id}")
            return _shard_knn_batch(
                self.dataset, self.tgms[shard_id], batch, k, self.measure, verify
            )

        def make_task(
            shard_id: int, payloads: list[tuple[int, object]]
        ) -> tuple[object, ...]:
            return ("knn", shard_id, payloads, k, verify)

        partials, failed_shards = self._scatter_batches(
            shard_items, queries, mode, make_task, run_local, deadline, degraded
        )
        for query_id, matches, partial_stats in partials:
            merged[query_id].extend(matches)
            stats[query_id].merge(partial_stats)
        self._note_failed_shards(stats, shard_items, failed_shards)
        return [
            finalize_result(sorted(merged[i], key=match_sort_key)[:k], stats[i])
            for i in range(len(queries))
        ]

    def _parallel_range(
        self,
        queries: Sequence[SetRecord],
        threshold: float,
        verify: str,
        mode: str,
        deadline: Deadline | None = None,
        degraded: str = "strict",
    ) -> list[SearchResult]:
        """Range search for a batch with per-shard partials concatenated."""
        self._presync_columnar(verify, mode)
        bound_rows = self._batch_shard_bound_rows(queries)
        merged: list[list[tuple[int, float]]] = [[] for _ in queries]
        stats: list[QueryStats] = [QueryStats() for _ in queries]
        shard_items: list[list[int]] = [[] for _ in range(self.num_shards)]
        for i in range(len(queries)):
            for shard_id in range(self.num_shards):
                if bound_rows[i][shard_id] >= threshold:
                    shard_items[shard_id].append(i)
                else:
                    stats[i].groups_pruned += self._num_groups_of(shard_id)

        def run_local(
            shard_id: int, batch: list[tuple[int, SetRecord]]
        ) -> list[tuple[int, list[tuple[int, float]], QueryStats]]:
            fault_point("shard.exec", f"range:shard={shard_id}")
            return _shard_range_batch(
                self.dataset, self.tgms[shard_id], batch, threshold, self.measure, verify
            )

        def make_task(
            shard_id: int, payloads: list[tuple[int, object]]
        ) -> tuple[object, ...]:
            return ("range", shard_id, payloads, threshold, verify)

        partials, failed_shards = self._scatter_batches(
            shard_items, queries, mode, make_task, run_local, deadline, degraded
        )
        for query_id, matches, partial_stats in partials:
            merged[query_id].extend(matches)
            stats[query_id].merge(partial_stats)
        self._note_failed_shards(stats, shard_items, failed_shards)
        return [
            finalize_result(merged[i], stats[i]) for i in range(len(queries))
        ]

    # -- kNN ---------------------------------------------------------------

    def _gather_knn(
        self,
        query: SetRecord,
        k: int,
        bounds: np.ndarray,
        verify: str,
        deadline: Deadline | None = None,
        degraded: str = "strict",
    ) -> SearchResult:
        """Serial scatter-gather kNN given precomputed shard bounds (exact).

        The verification kernel (its per-query token scatter) is built
        once and shared by every surviving shard's group visit.  The
        deadline is checked at every shard boundary; ``degraded="partial"``
        skips a shard whose execution fails (recorded in
        ``stats.extra["failed_shards"]``) instead of raising.
        """
        stats = QueryStats()
        order = sorted(range(self.num_shards), key=lambda s: (-bounds[s], s))
        heap: list[tuple[float, int]] = []
        zero_candidates: list[list[int]] = []
        verifier = make_verifier(self.dataset, query, self.measure, verify)
        for position, shard_id in enumerate(order):
            if deadline is not None:
                deadline.check(f"scatter-gather at shard {shard_id}")
            bound = bounds[shard_id]
            if bound <= 0.0:
                # Sorted order: this and all remaining shards share no
                # token with the query — members are at similarity 0.
                for rest in order[position:]:
                    stats.groups_pruned += self._num_groups_of(rest)
                    zero_candidates.extend(self._group_members_of(rest))
                break
            if len(heap) >= k and bound < heap[0][0]:
                # No member of the remaining shards can displace the kth.
                for rest in order[position:]:
                    stats.groups_pruned += self._num_groups_of(rest)
                break
            try:
                fault_point("shard.exec", f"knn:shard={shard_id}")
                tgm = self.tgms[shard_id]
                group_bounds = query_group_bounds(tgm, query, stats)
                knn_visit_groups(
                    self.dataset, tgm, query, k, group_bounds, heap, stats,
                    self.measure, zero_candidates, verifier,
                )
            except _FATAL_ERRORS:
                raise
            except Exception:
                if degraded != "partial":
                    raise
                stats.extra.setdefault("failed_shards", []).append(shard_id)
        failed = stats.extra.get("failed_shards")
        if failed:
            failed.sort()
        pad_zero_matches(heap, k, zero_candidates)
        return finalize_result(knn_heap_matches(heap), stats)

    def knn_record(
        self,
        query: SetRecord,
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """kNN search with a pre-interned query record."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        mode = self._resolve_parallel(parallel)
        degraded_mode = self._resolve_degraded(degraded)
        if deadline is not None:
            deadline.check("before query execution")
        if mode == "serial":
            return self._gather_knn(
                query, k, self.shard_bounds(query), self._verify_mode(verify),
                deadline, degraded_mode,
            )
        return self._parallel_knn(
            [query], k, self._verify_mode(verify), mode, deadline, degraded_mode
        )[0]

    def knn(
        self,
        query_tokens: Sequence[Hashable],
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """kNN search over external tokens."""
        return self.knn_record(
            as_query_record(self.dataset, query_tokens), k, verify, parallel,
            deadline, degraded,
        )

    def batch_knn_record(
        self,
        queries: Sequence[SetRecord],
        k: int,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> list[SearchResult]:
        """kNN for every query; shard scoring is one matrix product."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        mode = self._resolve_parallel(parallel)
        degraded_mode = self._resolve_degraded(degraded)
        if deadline is not None:
            deadline.check("before query execution")
        if mode != "serial":
            return self._parallel_knn(
                queries, k, self._verify_mode(verify), mode, deadline, degraded_mode
            )
        bound_rows = self._batch_shard_bound_rows(queries)
        verify = self._verify_mode(verify)
        return [
            self._gather_knn(query, k, bound_rows[i], verify, deadline, degraded_mode)
            for i, query in enumerate(queries)
        ]

    # -- range -------------------------------------------------------------

    def _gather_range(
        self,
        query: SetRecord,
        threshold: float,
        bounds: np.ndarray,
        verify: str,
        precomputed: dict[int, np.ndarray] | None = None,
        deadline: Deadline | None = None,
        degraded: str = "strict",
    ) -> SearchResult:
        """Serial scatter-gather range search given precomputed shard bounds.

        The deadline is checked at every shard boundary;
        ``degraded="partial"`` records a failing shard in
        ``stats.extra["failed_shards"]`` instead of raising.
        """
        stats = QueryStats()
        matches: list[tuple[int, float]] = []
        verifier = make_verifier(self.dataset, query, self.measure, verify)
        for shard_id in range(self.num_shards):
            if deadline is not None:
                deadline.check(f"scatter-gather at shard {shard_id}")
            if bounds[shard_id] < threshold:
                stats.groups_pruned += self._num_groups_of(shard_id)
                continue
            try:
                fault_point("shard.exec", f"range:shard={shard_id}")
                tgm = self.tgms[shard_id]
                if precomputed is not None and shard_id in precomputed:
                    group_bounds = precomputed[shard_id]
                    stats.groups_scored += tgm.num_groups
                else:
                    group_bounds = query_group_bounds(tgm, query, stats)
                range_collect_groups(
                    self.dataset, tgm, query, threshold, group_bounds,
                    matches, stats, self.measure, verifier,
                )
            except _FATAL_ERRORS:
                raise
            except Exception:
                if degraded != "partial":
                    raise
                stats.extra.setdefault("failed_shards", []).append(shard_id)
        failed = stats.extra.get("failed_shards")
        if failed:
            failed.sort()
        return finalize_result(matches, stats)

    def range_record(
        self,
        query: SetRecord,
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """Range search with a pre-interned query record."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        mode = self._resolve_parallel(parallel)
        degraded_mode = self._resolve_degraded(degraded)
        if deadline is not None:
            deadline.check("before query execution")
        if mode == "serial":
            return self._gather_range(
                query, threshold, self.shard_bounds(query), self._verify_mode(verify),
                None, deadline, degraded_mode,
            )
        return self._parallel_range(
            [query], threshold, self._verify_mode(verify), mode, deadline, degraded_mode
        )[0]

    def range(
        self,
        query_tokens: Sequence[Hashable],
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> SearchResult:
        """Range search over external tokens."""
        return self.range_record(
            as_query_record(self.dataset, query_tokens), threshold, verify, parallel,
            deadline, degraded,
        )

    def batch_range_record(
        self,
        queries: Sequence[SetRecord],
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> list[SearchResult]:
        """Range search for every query.

        Shard scoring is one matrix product for the whole batch.  In the
        serial mode each shard's per-group scoring then runs only for the
        queries the shard-level bound could not prune — on the dense
        backend as one (sub-batch × tokens) product per shard; the
        thread/process modes dispatch the same sub-batches to the pool
        and merge the partial match lists canonically.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        mode = self._resolve_parallel(parallel)
        degraded_mode = self._resolve_degraded(degraded)
        if deadline is not None:
            deadline.check("before query execution")
        if mode != "serial":
            return self._parallel_range(
                queries, threshold, self._verify_mode(verify), mode, deadline,
                degraded_mode,
            )
        bound_rows = self._batch_shard_bound_rows(queries)
        # Per shard: batch-score the surviving sub-batch of queries.
        per_query_bounds: list[dict[int, np.ndarray]] = [{} for _ in queries]
        for shard_id in range(self.num_shards):
            survivors = [
                i for i in range(len(queries))
                if bound_rows[i][shard_id] >= threshold
            ]
            if not survivors:
                continue
            counts = batch_covered_counts(self.tgms[shard_id], [queries[i] for i in survivors])
            for row, i in enumerate(survivors):
                per_query_bounds[i][shard_id] = self.measure.bounds_from_counts(
                    counts[row], len(queries[i])
                )
        verify = self._verify_mode(verify)
        return [
            self._gather_range(
                query, threshold, bound_rows[i], verify, per_query_bounds[i],
                deadline, degraded_mode,
            )
            for i, query in enumerate(queries)
        ]

    # -- self-join ---------------------------------------------------------

    def join(
        self,
        threshold: float,
        verify: str | None = None,
        parallel: str | None = None,
        deadline: Deadline | None = None,
        degraded: str | None = None,
    ) -> JoinResult:
        """Exact similarity self-join over all shards (scatter-gather).

        Within-shard pairs come from each shard's own
        :func:`~repro.core.join.similarity_self_join`; cross-shard pairs
        from pairwise :func:`~repro.core.join.similarity_join_between`
        calls.  A shard *pair* is skipped wholesale when its vocabulary
        bound — ``best_feasible_pair_bound`` over ``|vocab_s ∩ vocab_t|``
        and the shards' minimum live record sizes — cannot reach the
        threshold: shard vocabularies contain every group vocabulary and
        the bound is monotone in the cap and antitone in the minimum
        sizes, so the shard-pair bound dominates every group-pair bound
        it covers.  Shards tile the record pairs exactly once, so the
        sorted result is bit-identical to a single-engine join for any
        shard count, placement, or per-shard partitioner — and for any
        execution mode: the thread/process modes dispatch the same
        within-shard and shard-pair tasks to a pool instead of running
        them inline.
        """
        mode = self._verify_mode(verify)
        execution = self._resolve_parallel(parallel)
        degraded_mode = self._resolve_degraded(degraded)
        if deadline is not None:
            deadline.check("before query execution")
        stats = QueryStats()
        pairs: list[tuple[int, int, float]] = []
        # One group profile per shard, shared by the within-shard joins and
        # every cross-shard call — not rebuilt once per shard pair.  The
        # shard-level vocabulary and minimum size fall out of the profile
        # (live members only, tighter than the lingering self._vocab bits):
        # the profile's token columns *are* the shard's live vocabulary.
        profiles = [
            group_join_profiles(self.dataset, self._group_members_of(shard_id))
            for shard_id in range(self.num_shards)
        ]
        shard_vocab = [columns for _, _, columns in profiles]
        min_sizes = []
        live_groups = []
        for _, group_mins, _ in profiles:
            live = group_mins[group_mins > 0]  # empty groups profile as 0
            min_sizes.append(int(live.min()) if live.size else 0)
            live_groups.append(int(live.size))
        self_tasks = [
            shard_id for shard_id in range(self.num_shards) if min_sizes[shard_id] > 0
        ]
        pair_tasks: list[tuple[int, int]] = []
        for s in self_tasks:
            for t in range(s + 1, self.num_shards):
                if min_sizes[t] == 0:
                    continue
                cap = len(
                    np.intersect1d(shard_vocab[s], shard_vocab[t], assume_unique=True)
                )
                bound = best_feasible_pair_bound(
                    self.measure, cap, min_sizes[s], min_sizes[t]
                )
                if bound < threshold:
                    # Every live group pair the shard pair covers is pruned
                    # in one stroke, without computing its cap or bound
                    # (empty groups are never scored on the unpruned path
                    # either, so the counters stay comparable).
                    covered = live_groups[s] * live_groups[t]
                    stats.groups_scored += covered
                    stats.groups_pruned += covered
                    continue
                pair_tasks.append((s, t))
        def run_self(s: int) -> JoinResult:
            fault_point("shard.exec", f"join_self:shard={s}")
            return similarity_self_join(
                self.dataset, self.tgms[s], threshold, verify=mode,
                profiles=profiles[s],
            )

        def run_between(s: int, t: int) -> JoinResult:
            fault_point("shard.exec", f"join_between:shard={s}")
            return similarity_join_between(
                self.dataset, self.tgms[s], self.tgms[t], threshold, verify=mode,
                profiles_a=profiles[s], profiles_b=profiles[t],
            )

        runners = [
            (lambda s=s: run_self(s)) for s in self_tasks
        ] + [
            (lambda s=s, t=t: run_between(s, t)) for s, t in pair_tasks
        ]
        # A failed within-shard task loses pairs of one shard; a failed
        # cross-shard task loses pairs touching both of its shards.
        task_shards = [{s} for s in self_tasks] + [{s, t} for s, t in pair_tasks]
        failed_shards: set[int] = set()
        results: list[JoinResult] = []
        if execution == "serial":
            for index, runner in enumerate(runners):
                if deadline is not None:
                    deadline.check("join task")
                try:
                    results.append(runner())
                except _FATAL_ERRORS:
                    raise
                except Exception:
                    if degraded_mode != "partial":
                        raise
                    failed_shards.update(task_shards[index])
        elif execution == "thread":
            self._presync_columnar(mode, execution)
            pool = self._threads()
            futures = [pool.submit(runner) for runner in runners]
            for index, future in enumerate(futures):
                try:
                    results.append(future.result(timeout=self._remaining(deadline)))
                except FuturesTimeoutError:
                    raise DeadlineExceeded(
                        "deadline exceeded awaiting join task"
                    ) from None
                except _FATAL_ERRORS:
                    raise
                except Exception:
                    if degraded_mode != "partial":
                        raise
                    failed_shards.update(task_shards[index])
        else:
            descriptors = [
                ("join_self", s, threshold, mode) for s in self_tasks
            ] + [
                ("join_between", s, t, threshold, mode) for s, t in pair_tasks
            ]

            def as_worker(
                runner: Callable[[], JoinResult],
            ) -> Callable[[], tuple[list[tuple[int, int, float]], QueryStats]]:
                # The in-process fallback must return the worker's shape.
                def thunk() -> tuple[list[tuple[int, int, float]], QueryStats]:
                    result = runner()
                    return result.pairs, result.stats

                return thunk

            entries = [
                (descriptor[1], descriptor, as_worker(runner))
                for descriptor, runner in zip(descriptors, runners)
            ]
            supervised, _ = self._run_supervised(entries, deadline, degraded_mode)
            for index in sorted(supervised):
                task_pairs, task_stats = supervised[index]
                results.append(JoinResult(task_pairs, task_stats))
            for index in sorted(set(range(len(entries))) - set(supervised)):
                failed_shards.update(task_shards[index])
        for result in results:
            pairs.extend(result.pairs)
            stats.merge(result.stats)
        if failed_shards:
            stats.extra["failed_shards"] = sorted(failed_shards)
        pairs.sort()
        stats.result_size = len(pairs)
        return JoinResult(pairs, stats)

    # -- updates -----------------------------------------------------------

    def insert(self, tokens: Sequence[Hashable]) -> tuple[int, int, int]:
        """Insert a new set, routed to the lightest shard (open universe).

        Returns ``(record_index, shard_id, group_id)``.  Within the target
        shard the group is chosen exactly like the single engine's
        insertion (highest bound, ties to the smallest group).  On an
        engine attached to a saved generation the routing outcome is also
        appended to the generation's write-ahead ``delta.log`` —
        :attr:`source_dir` stays armed (process workers replay the log)
        and a reload reproduces exactly this state.  An engine that was
        never saved has no log to append to, so mutating it invalidates
        nothing (its source fields are already unset).
        """
        self._require_mutable("insert")
        loads = self._shard_loads
        shard_id = min(range(self.num_shards), key=lambda s: (loads[s], s))
        record_index, group_id = insert_set(self.dataset, self.tgms[shard_id], tokens)
        self._shard_of[record_index] = shard_id
        self._shard_loads[shard_id] += 1
        record = self.dataset.records[record_index]
        max_token = record.tokens[-1]
        if max_token >= self._vocab.shape[1]:
            width = max(len(self.dataset.universe), max_token + 1)
            extra = np.zeros((self.num_shards, width - self._vocab.shape[1]), dtype=bool)
            self._vocab = np.concatenate([self._vocab, extra], axis=1)
        self._vocab[shard_id, list(record.distinct)] = True
        self._log_mutation(
            "insert", tokens=tokens, index=record_index, group=group_id, shard=shard_id
        )
        return record_index, shard_id, group_id

    def remove(self, record_index: int) -> tuple[int, int]:
        """Logically delete a set; returns ``(shard_id, group_id)`` it left.

        Like the single engine, vocabulary bits linger until a rebuild —
        sound (bounds only loosen), and a shard rebuild restores tightness.
        The tombstone is logged in :attr:`removed`; on an engine attached
        to a saved generation it is also appended to ``delta.log``, so
        the save stays in sync (see :meth:`insert`).
        """
        self._require_mutable("remove")
        shard_id = self._shard_of.get(record_index)
        if shard_id is None:
            raise KeyError(f"record {record_index} is not registered in any shard")
        group_id = self.tgms[shard_id].unregister(record_index)
        del self._shard_of[record_index]
        self._shard_loads[shard_id] -= 1
        self.removed[record_index] = shard_id
        self._log_mutation("remove", index=record_index, group=group_id, shard=shard_id)
        return shard_id, group_id

    def _log_mutation(
        self,
        op: str,
        index: int,
        group: int,
        shard: int,
        tokens: Sequence[Hashable] | None = None,
    ) -> None:
        """Append a committed mutation to the generation's delta log.

        With a delta segment attached (the engine went through
        ``save_sharded``/``load_sharded``) the op is made durable and the
        source epoch advances to ``<base>+<ops>`` — process workers
        replay exactly that many ops, and their per-epoch caches evict
        the stale rehydrations.  Without one (an in-memory build) the
        source fields are cleared, preserving the old contract that an
        unsaved mutation disarms process mode.
        """
        if self._delta is not None:
            try:
                if op == "insert":
                    assert tokens is not None
                    self._delta.log_insert(tokens, index, group, shard=shard)
                else:
                    self._delta.log_remove(index, group, shard=shard)
            except FileNotFoundError:
                # The backing generation was deleted out from under us:
                # durability is moot, so degrade to a never-saved engine
                # (the mutation itself is applied and stays applied).
                self._delta = None
                self._source_dir = None
                self._source_epoch = None
                return
            self._source_epoch = self._delta.epoch()
        else:
            self._source_dir = None
            self._source_epoch = None

    def __repr__(self) -> str:
        return (
            f"ShardedLES3(|D|={len(self.dataset)}, shards={self.num_shards}, "
            f"groups={self.num_groups}, measure={self.measure.name!r})"
        )
