"""Shard assignment: how records of one database spread across S shards.

Three deterministic strategies, each returning disjoint record-index lists
covering the dataset exactly once:

* ``"hash"`` — records are ordered by a stable content hash and chopped
  into equal consecutive chunks.  Shards are balanced in record count and
  statistically identical in content; the safe default when nothing is
  known about the workload.
* ``"size"`` — longest-processing-time greedy: records sorted by set size
  (descending) go to the shard with the smallest summed token mass.
  Balances *verification cost* when set sizes are heavily skewed.
* ``"range"`` — records sorted by minimum token id, chopped into equal
  consecutive chunks (the shard-level analogue of the min-token
  partitioner).  Shards become vocabulary-coherent, which is what makes
  the shard-level bound of :class:`repro.distributed.ShardedLES3` prune
  whole shards; the right choice when token ids are frequency- or
  domain-ordered.

Exactness never depends on the strategy — a query is answered identically
for any placement — so the choice is purely a performance knob.
"""

from __future__ import annotations

import zlib

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.partitioning.simple import chunk_evenly

__all__ = ["assign_shards", "SHARD_STRATEGIES", "record_shard_hash", "lpt_balance"]

SHARD_STRATEGIES = ("hash", "size", "range")


def lpt_balance(sizes: list[int], num_bins: int) -> list[list[int]]:
    """Longest-processing-time greedy: spread weighted items over bins.

    Items (given by their ``sizes``) are placed largest-first into the bin
    with the smallest summed load, ties to the lowest bin id.  Returns the
    item indices per bin.  This single definition of the balance policy is
    shared by the ``"size"`` record placement and the group re-balancing
    of ``ShardedLES3.from_engine``.

    Examples
    --------
    >>> lpt_balance([5, 3, 3, 2], num_bins=2)   # loads: [5, 3+3] then 2 -> bin 0
    [[0, 3], [1, 2]]
    """
    bins: list[list[int]] = [[] for _ in range(num_bins)]
    loads = [0] * num_bins
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    for index in order:
        target = min(range(num_bins), key=lambda b: (loads[b], b))
        bins[target].append(index)
        loads[target] += sizes[index]
    return bins


def record_shard_hash(record: SetRecord) -> int:
    """Stable 32-bit content hash of a record (independent of PYTHONHASHSEED)."""
    data = ",".join(str(token) for token in record.tokens).encode()
    return zlib.crc32(data)


def _assign_hash(dataset: Dataset, num_shards: int) -> list[list[int]]:
    order = sorted(
        range(len(dataset)),
        key=lambda i: (record_shard_hash(dataset.records[i]), i),
    )
    return chunk_evenly(order, num_shards)


def _assign_size(dataset: Dataset, num_shards: int) -> list[list[int]]:
    shards = lpt_balance([len(record) for record in dataset.records], num_shards)
    for shard in shards:
        shard.sort()
    return [shard for shard in shards if shard]


def _assign_range(dataset: Dataset, num_shards: int) -> list[list[int]]:
    order = sorted(
        range(len(dataset)),
        key=lambda i: (dataset.records[i].min_token(), i),
    )
    return chunk_evenly(order, num_shards)


_STRATEGIES = {
    "hash": _assign_hash,
    "size": _assign_size,
    "range": _assign_range,
}


def assign_shards(
    dataset: Dataset, num_shards: int, strategy: str = "hash"
) -> list[list[int]]:
    """Split the dataset's record indices into at most ``num_shards`` shards.

    Every record lands in exactly one shard; empty shards are dropped (a
    dataset smaller than ``num_shards`` yields fewer shards).

    Parameters
    ----------
    dataset : Dataset
        The database to place.
    num_shards : int
        Target shard count (positive).
    strategy : {"hash", "size", "range"}, default ``"hash"``
        Placement policy; exactness never depends on it.

    Returns
    -------
    list of list of int
        Disjoint record-index lists covering the dataset exactly once.

    Examples
    --------
    >>> from repro import Dataset
    >>> dataset = Dataset.from_token_lists([["a"], ["b"], ["a", "b"], ["c"]])
    >>> assign_shards(dataset, 2, strategy="range")  # by minimum token id
    [[0, 2], [1, 3]]
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if strategy not in _STRATEGIES:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(f"unknown shard strategy {strategy!r}; known: {known}")
    if not len(dataset):
        return []
    return _STRATEGIES[strategy](dataset, num_shards)
