"""Set representations: PTR (the paper's) and the Section 7.3 baselines."""

from repro.embedding.base import Embedding
from repro.embedding.binary import BinaryEncodingEmbedding
from repro.embedding.mds import MDSEmbedding, distance_matrix
from repro.embedding.pca import PCAEmbedding, nhot_matrix
from repro.embedding.ptr import PTREmbedding, PTRHalfEmbedding, build_path_table

__all__ = [
    "Embedding",
    "BinaryEncodingEmbedding",
    "MDSEmbedding",
    "distance_matrix",
    "PCAEmbedding",
    "nhot_matrix",
    "PTREmbedding",
    "PTRHalfEmbedding",
    "build_path_table",
]
