"""Embedding interface: sets → fixed-dimension vectors for the Siamese nets."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord

__all__ = ["Embedding"]


class Embedding(ABC):
    """Transforms set records into real vectors.

    ``fit`` learns whatever global state the embedding needs (the token
    tree for PTR, principal axes for PCA, ...); ``transform`` maps a single
    record and ``transform_all`` a whole dataset (vectorised when possible).
    """

    name: str = "abstract"

    @abstractmethod
    def fit(self, dataset: Dataset) -> "Embedding":
        """Learn embedding parameters from the dataset; returns self."""

    @abstractmethod
    def transform(self, record: SetRecord) -> np.ndarray:
        """Embed one record as a 1-D float vector."""

    @property
    @abstractmethod
    def dim(self) -> int:
        """Output dimensionality (valid after ``fit``)."""

    def transform_all(self, dataset: Dataset) -> np.ndarray:
        """Embed every record; default loops over :meth:`transform`."""
        out = np.empty((len(dataset), self.dim), dtype=np.float64)
        for i, record in enumerate(dataset.records):
            out[i] = self.transform(record)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
