"""Binary Encoding baseline (Section 7.3, [28]).

Assigns each *distinct set* a unique id and represents it as the id's binary
expansion — representations are unique but carry no information about token
composition, so no Set Separation-Friendly Property holds.  Unseen records
are mapped through a hash, preserving determinism.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.embedding.base import Embedding

__all__ = ["BinaryEncodingEmbedding"]


class BinaryEncodingEmbedding(Embedding):
    """Set-id binary expansion; content-blind by construction."""

    name = "binary"

    def __init__(self) -> None:
        self._ids: dict[SetRecord, int] = {}
        self._bits: int = 0

    def fit(self, dataset: Dataset) -> "BinaryEncodingEmbedding":
        self._ids = {}
        for record in dataset.records:
            if record not in self._ids:
                self._ids[record] = len(self._ids)
        self._bits = max(int(np.ceil(np.log2(max(len(self._ids), 2)))), 1)
        return self

    @property
    def dim(self) -> int:
        if not self._bits:
            raise RuntimeError("fit() must be called first")
        return self._bits

    def transform(self, record: SetRecord) -> np.ndarray:
        if not self._bits:
            raise RuntimeError("fit() must be called first")
        set_id = self._ids.get(record)
        if set_id is None:
            set_id = hash(record) % (1 << self._bits)
        shifts = np.arange(self._bits - 1, -1, -1)
        return ((set_id >> shifts) & 1).astype(np.float64)
