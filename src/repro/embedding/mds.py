"""Classical (Torgerson) MDS embedding baseline (Section 7.3, [12]).

Builds the full pairwise distance matrix ``D[x, y] = 1 − Sim(S_x, S_y)``,
double-centres it, and keeps the top-``d`` eigenvectors.  Cost is
``Θ(|D|²)`` similarity computations plus a dense eigendecomposition — the
quadratic blow-up that makes MDS inapplicable beyond small samples, which is
precisely the Figure 8 story.

Out-of-sample records are embedded by landmark triangulation against the
fitted records (De Silva & Tenenbaum's landmark MDS extension).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.similarity import Similarity, get_measure
from repro.embedding.base import Embedding

__all__ = ["MDSEmbedding", "distance_matrix"]


def distance_matrix(dataset: Dataset, measure: Similarity) -> np.ndarray:
    """Dense pairwise distance matrix ``1 − Sim`` (symmetric, zero diagonal)."""
    n = len(dataset)
    distances = np.zeros((n, n))
    records = dataset.records
    for i in range(n):
        record_i = records[i]
        for j in range(i + 1, n):
            d = 1.0 - measure(record_i, records[j])
            distances[i, j] = d
            distances[j, i] = d
    return distances


class MDSEmbedding(Embedding):
    """Classical MDS on the ``1 − Sim`` distance matrix."""

    name = "mds"

    def __init__(self, dim: int = 16, measure: str | Similarity = "jaccard") -> None:
        self._requested_dim = dim
        self.measure = get_measure(measure)
        self._coords: np.ndarray | None = None
        self._fit_records: list[SetRecord] | None = None
        self._mean_sq_dist: np.ndarray | None = None
        self._pinv: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "MDSEmbedding":
        if len(dataset) < 2:
            raise ValueError("MDS needs at least two records")
        distances = distance_matrix(dataset, self.measure)
        squared = distances**2
        n = len(dataset)
        centering = np.eye(n) - np.full((n, n), 1.0 / n)
        gram = -0.5 * centering @ squared @ centering
        d = max(min(self._requested_dim, n - 1), 1)
        eigenvalues, eigenvectors = eigh(gram, subset_by_index=(n - d, n - 1))
        eigenvalues = np.clip(eigenvalues[::-1], 0.0, None)
        eigenvectors = eigenvectors[:, ::-1]
        self._coords = eigenvectors * np.sqrt(eigenvalues)[None, :]
        self._fit_records = list(dataset.records)
        self._mean_sq_dist = squared.mean(axis=0)
        self._pinv = np.linalg.pinv(self._coords)
        return self

    @property
    def dim(self) -> int:
        if self._coords is None:
            raise RuntimeError("fit() must be called first")
        return self._coords.shape[1]

    def transform(self, record: SetRecord) -> np.ndarray:
        if self._coords is None:
            raise RuntimeError("fit() must be called first")
        for index, fitted in enumerate(self._fit_records):
            if fitted == record:
                return self._coords[index].copy()
        # Landmark extension: triangulate from distances to fitted records.
        squared = np.array(
            [(1.0 - self.measure(record, fitted)) ** 2 for fitted in self._fit_records]
        )
        return -0.5 * (self._pinv @ (squared - self._mean_sq_dist))

    def transform_all(self, dataset: Dataset) -> np.ndarray:
        if self._coords is not None and self._fit_records is not None:
            if len(dataset) == len(self._fit_records) and all(
                a == b for a, b in zip(dataset.records, self._fit_records)
            ):
                return self._coords.copy()
        return super().transform_all(dataset)
