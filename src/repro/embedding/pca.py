"""PCA embedding baseline (Section 7.3, [32]).

Sets are n-hot encoded over the token universe; the embedding projects onto
the top-``d`` principal axes.  The n-hot matrix is kept sparse
(scipy.sparse) and the axes come from a truncated SVD of the centred data
(centring is folded into the projection rather than densifying the matrix).

This is the classic heavyweight general-purpose embedding the paper
contrasts PTR against: construction is orders of magnitude slower because
it factorises an ``|D| × |T|`` matrix.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.embedding.base import Embedding

__all__ = ["PCAEmbedding", "nhot_matrix"]


def nhot_matrix(dataset: Dataset) -> sparse.csr_matrix:
    """Sparse ``|D| × |T|`` n-hot (multiplicity-counting) matrix."""
    rows, cols, vals = [], [], []
    for i, record in enumerate(dataset.records):
        for token, count in record.counts().items():
            rows.append(i)
            cols.append(token)
            vals.append(float(count))
    shape = (len(dataset), max(len(dataset.universe), 1))
    return sparse.csr_matrix((vals, (rows, cols)), shape=shape)


class PCAEmbedding(Embedding):
    """Truncated-SVD principal component projection of n-hot vectors."""

    name = "pca"

    def __init__(self, dim: int = 16, seed: int = 0) -> None:
        self._requested_dim = dim
        self.seed = seed
        self._components: np.ndarray | None = None  # (|T|, d)
        self._mean: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "PCAEmbedding":
        matrix = nhot_matrix(dataset)
        self._mean = np.asarray(matrix.mean(axis=0)).ravel()
        d = min(self._requested_dim, min(matrix.shape) - 1)
        d = max(d, 1)
        # svds of the uncentred matrix approximates PCA well for sparse
        # 0/1 data; we centre at projection time for correctness of scores.
        rng = np.random.default_rng(self.seed)
        v0 = rng.standard_normal(min(matrix.shape))
        _, _, vt = svds(matrix.astype(np.float64), k=d, v0=v0)
        self._components = vt[::-1].T  # (|T|, d), leading component first
        return self

    @property
    def dim(self) -> int:
        if self._components is None:
            raise RuntimeError("fit() must be called first")
        return self._components.shape[1]

    def transform(self, record: SetRecord) -> np.ndarray:
        if self._components is None or self._mean is None:
            raise RuntimeError("fit() must be called first")
        universe = self._components.shape[0]
        vector = np.zeros(universe)
        for token, count in record.counts().items():
            if token < universe:
                vector[token] = count
        return (vector - self._mean) @ self._components

    def transform_all(self, dataset: Dataset) -> np.ndarray:
        if self._components is None or self._mean is None:
            raise RuntimeError("fit() must be called first")
        matrix = nhot_matrix(dataset)
        if matrix.shape[1] != self._components.shape[0]:
            # Universe grew since fit; project only the known part.
            matrix = matrix[:, : self._components.shape[0]]
        scores = matrix @ self._components
        return np.asarray(scores) - self._mean @ self._components
