"""PTR — path-table representation (Section 5.3).

Tokens are the leaves of a balanced binary tree of height
``h = ⌈log2 |T|⌉``; the edge to a left child is marked 1, to a right child 0.
A token's path is therefore ``h`` bits; the path table has ``2h`` columns —
the path bits followed by their complements (Equation 16) — and a set's
representation sums its tokens' path-table rows (Equation 17).

With tokens placed left-to-right in id order, the path of token ``t`` is the
bitwise complement of the ``h``-bit binary encoding of ``t`` (MSB first):
id 0 is the leftmost leaf, reached by all-left = all-ones, reproducing the
paper's Table 1 exactly for T = {A, B, C, D}.

Multisets are differentiated naturally: ``Rep({A}) = [1,1,0,0]`` while
``Rep({A,A}) = [2,2,0,0]``.

``PTRHalfEmbedding`` keeps only the first ``h`` columns — the ablation of
Section 7.3 that loses injectivity (``{A}`` and ``{B, C}`` collide).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.embedding.base import Embedding

__all__ = ["build_path_table", "PTREmbedding", "PTRHalfEmbedding"]


def build_path_table(universe_size: int) -> np.ndarray:
    """The ``|T| × 2h`` path table of Equation 16 (float64 for the nets)."""
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    height = max(int(np.ceil(np.log2(universe_size))), 1)
    ids = np.arange(universe_size, dtype=np.int64)
    shifts = np.arange(height - 1, -1, -1, dtype=np.int64)
    bits = (ids[:, None] >> shifts[None, :]) & 1
    paths = 1 - bits  # left edges are 1; id 0 is the leftmost (all-left) leaf
    return np.concatenate([paths, 1 - paths], axis=1).astype(np.float64)


class PTREmbedding(Embedding):
    """Full path-table representation (dimension ``2h``)."""

    name = "ptr"

    def __init__(self) -> None:
        self._table: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "PTREmbedding":
        self._table = build_path_table(max(len(dataset.universe), 1))
        return self

    @property
    def dim(self) -> int:
        if self._table is None:
            raise RuntimeError("fit() must be called first")
        return self._table.shape[1]

    @property
    def table(self) -> np.ndarray:
        if self._table is None:
            raise RuntimeError("fit() must be called first")
        return self._table

    def transform(self, record: SetRecord) -> np.ndarray:
        table = self.table
        known = [t for t in record.tokens if t < table.shape[0]]
        if not known:
            return np.zeros(table.shape[1])
        return table[known].sum(axis=0)

    def transform_all(self, dataset: Dataset) -> np.ndarray:
        table = self.table
        out = np.empty((len(dataset), table.shape[1]), dtype=np.float64)
        for i, record in enumerate(dataset.records):
            out[i] = table[list(record.tokens)].sum(axis=0)
        return out


class PTRHalfEmbedding(PTREmbedding):
    """PTR truncated to the first ``h`` columns (Section 7.3 ablation)."""

    name = "ptr-half"

    def fit(self, dataset: Dataset) -> "PTRHalfEmbedding":
        full = build_path_table(max(len(dataset.universe), 1))
        self._table = full[:, : full.shape[1] // 2].copy()
        return self
