"""Graph substrate: weighted graphs and multilevel balanced partitioning."""

from repro.graphs.graph import Graph
from repro.graphs.partition import bisect, partition_graph

__all__ = ["Graph", "bisect", "partition_graph"]
