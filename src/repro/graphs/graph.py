"""A small weighted undirected graph used by the balanced partitioner.

Vertices are integers ``0 .. n-1`` with integer weights (coarsened vertices
accumulate weight); edges carry float weights and are stored symmetrically
in per-vertex adjacency dictionaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Graph"]


class Graph:
    """Adjacency-map graph with vertex and edge weights."""

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.adjacency: list[dict[int, float]] = [{} for _ in range(num_vertices)]
        self.vertex_weight: list[int] = [1] * num_vertices

    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or accumulate) an undirected edge; self-loops are ignored."""
        if u == v:
            return
        self.adjacency[u][v] = self.adjacency[u].get(v, 0.0) + weight
        self.adjacency[v][u] = self.adjacency[v].get(u, 0.0) + weight

    def neighbors(self, u: int) -> Iterator[tuple[int, float]]:
        return iter(self.adjacency[u].items())

    def degree(self, u: int) -> int:
        return len(self.adjacency[u])

    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.adjacency) // 2

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for u, adj in enumerate(self.adjacency):
            for v, weight in adj.items():
                if u < v:
                    yield u, v, weight

    def total_vertex_weight(self) -> int:
        return sum(self.vertex_weight)

    def cut_weight(self, side: Iterable[int]) -> float:
        """Total weight of edges crossing the given vertex subset."""
        side_set = set(side)
        total = 0.0
        for u in side_set:
            for v, weight in self.adjacency[u].items():
                if v not in side_set:
                    total += weight
        return total
