"""Multilevel balanced graph partitioning (stands in for PaToH [9]).

Used by PAR-G (Section 4.3.1): partition the kNN similarity graph into ``n``
balanced parts minimising the cut.  The classic multilevel recipe:

1. **Coarsen** by heavy-edge matching until the graph is small.
2. **Bisect** the coarsest graph by greedy region growth from a random seed.
3. **Refine** with a bounded Fiduccia–Mattheyses pass while uncoarsening.
4. **Recurse** on each half until the target part count is reached.

Balance is enforced on vertex weight with a configurable tolerance.
"""

from __future__ import annotations

import random

from repro.graphs.graph import Graph

__all__ = ["bisect", "partition_graph"]

_COARSEST_SIZE = 64


def _heavy_edge_matching(graph: Graph, rng: random.Random) -> tuple[Graph, list[int]]:
    """One coarsening level; returns (coarse graph, fine→coarse map)."""
    n = graph.num_vertices
    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for u in order:
        if match[u] != -1:
            continue
        best, best_weight = -1, -1.0
        for v, weight in graph.neighbors(u):
            if match[v] == -1 and weight > best_weight:
                best, best_weight = v, weight
        if best != -1:
            match[u], match[best] = best, u
        else:
            match[u] = u
    coarse_id = [-1] * n
    next_id = 0
    for u in range(n):
        if coarse_id[u] == -1:
            coarse_id[u] = next_id
            coarse_id[match[u]] = next_id
            next_id += 1
    coarse = Graph(next_id)
    for u in range(n):
        cu = coarse_id[u]
        if match[u] == u or u < match[u]:
            coarse.vertex_weight[cu] = graph.vertex_weight[u] + (
                graph.vertex_weight[match[u]] if match[u] != u else 0
            )
    for u in range(n):
        cu = coarse_id[u]
        for v, weight in graph.neighbors(u):
            cv = coarse_id[v]
            if cu < cv:
                coarse.add_edge(cu, cv, weight)
    return coarse, coarse_id


def _greedy_bisection(graph: Graph, rng: random.Random) -> list[int]:
    """Grow part 0 from a random seed until it holds half the vertex weight."""
    n = graph.num_vertices
    side = [1] * n
    if n == 0:
        return side
    target = graph.total_vertex_weight() / 2
    seed = rng.randrange(n)
    side[seed] = 0
    grown = graph.vertex_weight[seed]
    frontier: dict[int, float] = dict(graph.neighbors(seed))
    while grown < target:
        if frontier:
            pick = max(frontier, key=lambda v: frontier[v])
            frontier.pop(pick)
        else:
            remaining = [v for v in range(n) if side[v] == 1]
            if not remaining:
                break
            pick = rng.choice(remaining)
        if side[pick] == 0:
            continue
        side[pick] = 0
        grown += graph.vertex_weight[pick]
        for v, weight in graph.neighbors(pick):
            if side[v] == 1:
                frontier[v] = frontier.get(v, 0.0) + weight
    return side


def _fm_refine(graph: Graph, side: list[int], tolerance: float, passes: int, rng: random.Random) -> None:
    """Bounded Fiduccia–Mattheyses refinement of a bisection, in place."""
    n = graph.num_vertices
    total = graph.total_vertex_weight()
    max_side = total / 2 * (1 + tolerance)

    def gain(u: int) -> float:
        external = internal = 0.0
        for v, weight in graph.neighbors(u):
            if side[v] == side[u]:
                internal += weight
            else:
                external += weight
        return external - internal

    for _ in range(passes):
        weights = [sum(graph.vertex_weight[u] for u in range(n) if side[u] == s) for s in (0, 1)]
        locked = [False] * n
        moves: list[int] = []
        gains: list[float] = []
        current_gain = 0.0
        best_gain, best_prefix = 0.0, 0
        for _ in range(n):
            best_vertex, best_vertex_gain = -1, float("-inf")
            for u in range(n):
                if locked[u]:
                    continue
                target_side = 1 - side[u]
                if weights[target_side] + graph.vertex_weight[u] > max_side:
                    continue
                g = gain(u)
                if g > best_vertex_gain:
                    best_vertex, best_vertex_gain = u, g
            if best_vertex == -1:
                break
            u = best_vertex
            weights[side[u]] -= graph.vertex_weight[u]
            side[u] = 1 - side[u]
            weights[side[u]] += graph.vertex_weight[u]
            locked[u] = True
            moves.append(u)
            current_gain += best_vertex_gain
            gains.append(current_gain)
            if current_gain > best_gain:
                best_gain, best_prefix = current_gain, len(moves)
        # Roll back moves past the best prefix.
        for u in moves[best_prefix:]:
            side[u] = 1 - side[u]
        if best_gain <= 0:
            break


def bisect(graph: Graph, tolerance: float = 0.1, seed: int = 0) -> list[int]:
    """Balanced bisection via the multilevel scheme; returns 0/1 sides."""
    rng = random.Random(seed)
    hierarchy: list[tuple[Graph, list[int]]] = []
    current = graph
    while current.num_vertices > _COARSEST_SIZE:
        coarse, mapping = _heavy_edge_matching(current, rng)
        if coarse.num_vertices >= current.num_vertices:
            break  # matching made no progress (e.g. no edges)
        hierarchy.append((current, mapping))
        current = coarse
    side = _greedy_bisection(current, rng)
    _fm_refine(current, side, tolerance, passes=4, rng=rng)
    for fine_graph, mapping in reversed(hierarchy):
        side = [side[mapping[u]] for u in range(fine_graph.num_vertices)]
        if fine_graph.num_vertices <= 2000:
            _fm_refine(fine_graph, side, tolerance, passes=2, rng=rng)
    return side


def partition_graph(
    graph: Graph, num_parts: int, tolerance: float = 0.1, seed: int = 0
) -> list[int]:
    """Recursive balanced bisection into ``num_parts`` parts.

    Part counts need not be powers of two: each split allocates parts
    proportionally to the two sides.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    assignment = [0] * graph.num_vertices

    def recurse(vertices: list[int], parts: int, part_offset: int, depth: int) -> None:
        if parts == 1 or len(vertices) <= 1:
            for u in vertices:
                assignment[u] = part_offset
            return
        sub = Graph(len(vertices))
        local = {u: i for i, u in enumerate(vertices)}
        for i, u in enumerate(vertices):
            sub.vertex_weight[i] = graph.vertex_weight[u]
            for v, weight in graph.neighbors(u):
                j = local.get(v)
                if j is not None and i < j:
                    sub.add_edge(i, j, weight)
        left_parts = parts // 2
        side = bisect(sub, tolerance, seed=seed + depth)
        left = [vertices[i] for i in range(len(vertices)) if side[i] == 0]
        right = [vertices[i] for i in range(len(vertices)) if side[i] == 1]
        if not left or not right:  # degenerate; force a split
            half = max(len(vertices) // 2, 1)
            left, right = vertices[:half], vertices[half:]
        recurse(left, left_parts, part_offset, depth * 2 + 1)
        recurse(right, parts - left_parts, part_offset + left_parts, depth * 2 + 2)

    recurse(list(range(graph.num_vertices)), num_parts, 0, 0)
    return assignment
