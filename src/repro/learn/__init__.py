"""L2P learning stack: numpy NN substrate, Siamese networks, the cascade."""

from repro.learn.cascade import CascadeStats, L2PPartitioner
from repro.learn.siamese import SiameseNetwork, hard_pair_loss, surrogate_pair_loss

__all__ = [
    "CascadeStats",
    "L2PPartitioner",
    "SiameseNetwork",
    "hard_pair_loss",
    "surrogate_pair_loss",
]
