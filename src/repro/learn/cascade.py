"""L2P — the cascade learning framework (Section 5.2) as a Partitioner.

Each Siamese model bisects one group; training a model on a group samples
pairs from that group, computes their exact similarities (the only
supervision the problem offers), and fits the Equation 18 surrogate.  The
cascade keeps splitting level by level until the target group count is
reached, never splitting groups below the minimum size (paper: 50).

Initialisation (Section 7.1): the database is first sorted by minimum token
and chopped into ``initial_groups`` consecutive chunks (paper: 128), so the
expensive top levels of the cascade are replaced by a cheap sequential
constraint.  Set ``initial_groups=1`` to disable (used for small samples and
the initialisation ablation).

The per-level partitions are kept in ``level_partitions_`` so an HTGM can be
assembled from any pair of levels.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.similarity import Similarity, get_measure
from repro.embedding.base import Embedding
from repro.embedding.ptr import PTREmbedding
from repro.learn.siamese import SiameseNetwork
from repro.partitioning.base import Partition, Partitioner
from repro.partitioning.simple import MinTokenPartitioner

__all__ = ["L2PPartitioner", "CascadeStats"]


class CascadeStats:
    """Bookkeeping of one cascade run (model count, losses, sample count)."""

    def __init__(self) -> None:
        self.models_trained = 0
        self.pairs_sampled = 0
        self.loss_histories: list[list[float]] = []

    def record(self, history: list[float], pairs: int) -> None:
        self.models_trained += 1
        self.pairs_sampled += pairs
        self.loss_histories.append(history)


class L2PPartitioner(Partitioner):
    """Learn-to-partition via a cascade of Siamese networks.

    Parameters
    ----------
    measure:
        Similarity supervising the loss (and later the search).
    embedding:
        Set representation; default PTR (the paper's choice).
    pairs_per_model:
        Training pairs sampled per model (paper: 40 000; benchmarks scale
        this down with the dataset).
    epochs, batch_size, lr:
        Optimisation hyper-parameters (paper: 3 epochs, batch 256, Adam).
    min_group_size:
        Groups smaller than this are never split (paper: 50).
    initial_groups:
        Min-token chunk count used as the cascade's starting level
        (paper: 128); clipped to the target group count.
    rebalance_threshold:
        If a model sends less than this fraction of a group to one side,
        the split falls back to the *output median* — the cut still follows
        the learned ordering but is perfectly balanced.  This enforces the
        balance property the Equation 15 loss argues for (Section 5.1) even
        when a few epochs of training leave the raw 0.5 threshold lopsided,
        and it guarantees the cascade cannot stall on a degenerate model.
    workers:
        Thread count for training the independent models of one cascade
        level concurrently (Section 7.2's future-work direction).  The
        resulting partition is identical for any worker count; only
        ``stats_.loss_histories`` ordering may differ.
    """

    def __init__(
        self,
        measure: str | Similarity = "jaccard",
        embedding: Embedding | None = None,
        pairs_per_model: int = 40_000,
        epochs: int = 3,
        batch_size: int = 256,
        lr: float = 1e-2,
        min_group_size: int = 50,
        initial_groups: int = 128,
        rebalance_threshold: float = 0.3,
        loss: str = "surrogate",
        workers: int = 1,
        seed: int = 0,
    ) -> None:
        self.measure = get_measure(measure)
        self.embedding = embedding if embedding is not None else PTREmbedding()
        self.pairs_per_model = pairs_per_model
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.min_group_size = min_group_size
        self.initial_groups = initial_groups
        self.rebalance_threshold = rebalance_threshold
        self.loss = loss
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.seed = seed
        self.level_partitions_: list[Partition] = []
        self.stats_: CascadeStats = CascadeStats()

    # -- single-model training -------------------------------------------------

    def _sample_pairs(
        self, dataset: Dataset, members: list[int], rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample training pairs (with replacement) from one group."""
        count = min(self.pairs_per_model, max(len(members) ** 2, 1))
        left = rng.integers(0, len(members), size=count)
        right = rng.integers(0, len(members), size=count)
        keep = left != right
        left, right = left[keep], right[keep]
        indices_x = [members[i] for i in left]
        indices_y = [members[i] for i in right]
        similarities = np.array(
            [
                self.measure(dataset.records[a], dataset.records[b])
                for a, b in zip(indices_x, indices_y)
            ]
        )
        return np.array(indices_x), np.array(indices_y), similarities

    def train_group_model(
        self,
        dataset: Dataset,
        representations: np.ndarray,
        members: list[int],
        seed: int,
    ) -> tuple[SiameseNetwork, list[float]]:
        """Train one Siamese model to bisect ``members``; returns (model, loss curve)."""
        rng = np.random.default_rng(seed)
        indices_x, indices_y, similarities = self._sample_pairs(dataset, members, rng)
        model = SiameseNetwork(representations.shape[1], seed=seed, lr=self.lr)
        history = model.train(
            representations[indices_x],
            representations[indices_y],
            similarities,
            epochs=self.epochs,
            batch_size=self.batch_size,
            loss=self.loss,
        )
        self.stats_.record(history, len(similarities))
        return model, history

    def _split_group(
        self,
        dataset: Dataset,
        representations: np.ndarray,
        members: list[int],
        seed: int,
    ) -> tuple[list[int], list[int]]:
        """Bisect one group with a freshly trained model."""
        model, _ = self.train_group_model(dataset, representations, members, seed)
        outputs = model.outputs(representations[members])
        second_side = outputs >= 0.5
        fraction = second_side.mean()
        if min(fraction, 1.0 - fraction) < self.rebalance_threshold:
            # Degenerate model: fall back to the output median so the split
            # still reflects the learned ordering but stays balanced.
            median = np.median(outputs)
            second_side = outputs > median
            if not second_side.any() or second_side.all():
                half = len(members) // 2
                order = np.argsort(outputs, kind="stable")
                second_side = np.zeros(len(members), dtype=bool)
                second_side[order[half:]] = True
        left = [m for m, flag in zip(members, second_side) if not flag]
        right = [m for m, flag in zip(members, second_side) if flag]
        return left, right

    # -- the cascade --------------------------------------------------------------

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        self.stats_ = CascadeStats()
        self.level_partitions_ = []
        if not len(dataset):
            return Partition([])
        representations = self.embedding.fit(dataset).transform_all(dataset)
        scale = np.abs(representations).max(axis=0)
        scale[scale == 0] = 1.0
        representations = representations / scale  # keep sigmoids unsaturated

        start = min(self.initial_groups, num_groups)
        if start > 1:
            groups = MinTokenPartitioner().partition(dataset, start).groups
        else:
            groups = [list(range(len(dataset)))]
        self.level_partitions_.append(Partition(groups))

        level_seed = self.seed
        while len(groups) < num_groups:
            splittable = sorted(
                (g for g in range(len(groups)) if len(groups[g]) >= max(self.min_group_size, 2)),
                key=lambda g: -len(groups[g]),
            )
            if not splittable:
                break
            # Each split adds one group; when a full level would overshoot
            # the target, only the largest groups are split.
            to_split = set(splittable[: num_groups - len(groups)])
            splits = self._split_level(dataset, representations, groups, to_split, level_seed)
            next_groups: list[list[int]] = []
            for group_id, members in enumerate(groups):
                if group_id in to_split:
                    next_groups.extend(splits[group_id])
                else:
                    next_groups.append(list(members))
            groups = [group for group in next_groups if group]
            level_seed += 10_007
            self.level_partitions_.append(Partition(groups))
        return Partition(groups)

    def _split_level(
        self,
        dataset: Dataset,
        representations: np.ndarray,
        groups: list[list[int]],
        to_split: set[int],
        level_seed: int,
    ) -> dict[int, tuple[list[int], list[int]]]:
        """Split every selected group of one level, optionally in parallel.

        Section 7.2 notes that models at the same cascade level are
        independent and can be trained in parallel — the paper's stated
        future work.  With ``workers > 1`` a thread pool trains them
        concurrently (numpy releases the GIL inside the matrix kernels);
        results are deterministic either way because each model's seed
        depends only on its group id.
        """
        if self.workers <= 1 or len(to_split) <= 1:
            return {
                group_id: self._split_group(
                    dataset, representations, groups[group_id], level_seed + group_id
                )
                for group_id in to_split
            }
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                group_id: pool.submit(
                    self._split_group,
                    dataset,
                    representations,
                    groups[group_id],
                    level_seed + group_id,
                )
                for group_id in to_split
            }
            return {group_id: future.result() for group_id, future in futures.items()}
