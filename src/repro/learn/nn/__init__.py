"""Pure-numpy neural-network substrate (substitute for PyTorch)."""

from repro.learn.nn.adam import Adam
from repro.learn.nn.layers import Layer, Linear, Sigmoid
from repro.learn.nn.mlp import MLP, build_l2p_network

__all__ = ["Adam", "Layer", "Linear", "Sigmoid", "MLP", "build_l2p_network"]
