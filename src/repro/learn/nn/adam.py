"""Adam optimizer (Kingma & Ba) over the layer substrate's gradient buffers."""

from __future__ import annotations

import numpy as np

__all__ = ["Adam"]


class Adam:
    """Adam with bias-corrected first/second moments.

    Parameters and gradient buffers are parallel lists of arrays; ``step``
    applies one update in place and zeroes the gradients.
    """

    def __init__(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must align")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update and clear the gradient buffers."""
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self.parameters, self.gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            grad.fill(0.0)
