"""Minimal feed-forward layers with manual backpropagation.

This is the pure-numpy substitute for the paper's PyTorch models.  Only what
L2P needs is implemented: dense (linear) layers and the sigmoid activation.
Layers cache their forward inputs; ``backward`` consumes the upstream
gradient and accumulates parameter gradients in ``grad_*`` buffers, which an
optimizer consumes and zeroes.

Shapes follow the batch-first convention: inputs are ``(batch, features)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer", "Linear", "Sigmoid"]


class Layer:
    """Base class: forward caches, backward returns the input gradient."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (shared with gradients by position)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradient buffers aligned with :meth:`parameters`."""
        return []

    def zero_grad(self) -> None:
        for grad in self.gradients():
            grad.fill(0.0)


class Linear(Layer):
    """Dense layer ``y = x W + b`` with Xavier/Glorot initialisation."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = rng.uniform(-limit, limit, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._last_input: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._last_input = inputs
        return inputs @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError("backward() before forward()")
        self.grad_weight += self._last_input.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class Sigmoid(Layer):
    """Elementwise logistic activation."""

    def __init__(self) -> None:
        self._last_output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        # Numerically stable split on sign.
        out = np.empty_like(inputs, dtype=np.float64)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._last_output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_output is None:
            raise RuntimeError("backward() before forward()")
        return grad_output * self._last_output * (1.0 - self._last_output)
