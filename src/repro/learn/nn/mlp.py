"""Multi-layer perceptron assembled from the layer substrate.

The paper's network (Section 7.1): two hidden layers of eight neurons each,
sigmoid activations, one sigmoid output neuron.  :func:`build_l2p_network`
constructs exactly that; :class:`MLP` is generic over widths.
"""

from __future__ import annotations

import numpy as np

from repro.learn.nn.layers import Layer, Linear, Sigmoid

__all__ = ["MLP", "build_l2p_network"]


class MLP:
    """A stack of Linear+Sigmoid blocks."""

    def __init__(self, widths: list[int], rng: np.random.Generator) -> None:
        if len(widths) < 2:
            raise ValueError("need at least input and output widths")
        self.layers: list[Layer] = []
        for in_width, out_width in zip(widths[:-1], widths[1:]):
            self.layers.append(Linear(in_width, out_width, rng))
            self.layers.append(Sigmoid())

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = inputs
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def build_l2p_network(input_dim: int, rng: np.random.Generator, hidden: tuple[int, int] = (8, 8)) -> MLP:
    """The Section 7.1 architecture: ``input → 8 → 8 → 1``, all sigmoid."""
    return MLP([input_dim, hidden[0], hidden[1], 1], rng)
