"""Siamese network and the surrogate training loss (Sections 5.1 and 7.1).

One MLP serves both twins (true weight sharing); a training pair
``(S_x, S_y)`` contributes the Equation 18 surrogate loss

    loss'(S_x, S_y) = W(O_x, O_y) · (1 − Sim(S_x, S_y))   if V(O_x, O_y)
                    = 0                                    otherwise

with ``W = 0.5 − |O_x − O_y|`` and ``V`` true when both outputs fall on the
same side of 0.5.  Inside ``V`` the gradient w.r.t. the outputs is

    ∂loss'/∂O_x = −sign(O_x − O_y) · (1 − Sim),  ∂loss'/∂O_y = +sign(...) · (1 − Sim)

— dissimilar same-group pairs are pushed towards opposite sides with force
proportional to their distance, which is exactly the balance-plus-coherence
behaviour Equation 15 asks for, but with useful gradients everywhere.

The hard Equation 15 loss is also provided (``hard_pair_loss``) for the
loss-function ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.learn.nn.adam import Adam
from repro.learn.nn.mlp import MLP, build_l2p_network

__all__ = [
    "surrogate_pair_loss",
    "hard_pair_loss",
    "SiameseNetwork",
]


def surrogate_pair_loss(out_x: np.ndarray, out_y: np.ndarray, distance: np.ndarray) -> np.ndarray:
    """Vectorised Equation 18 over a batch (distance = 1 − Sim)."""
    same_side = ((out_x >= 0.5) & (out_y >= 0.5)) | ((out_x < 0.5) & (out_y < 0.5))
    weight = 0.5 - np.abs(out_x - out_y)
    return np.where(same_side, weight * distance, 0.0)


def hard_pair_loss(out_x: np.ndarray, out_y: np.ndarray, distance: np.ndarray) -> np.ndarray:
    """Vectorised Equation 15: the raw (zero-gradient) objective."""
    same_side = ((out_x >= 0.5) & (out_y >= 0.5)) | ((out_x < 0.5) & (out_y < 0.5))
    return np.where(same_side, distance, 0.0)


class SiameseNetwork:
    """A weight-shared twin MLP that bisects a collection of sets.

    Parameters
    ----------
    input_dim:
        Dimensionality of the set representations.
    seed:
        Seed for weight initialisation and batch shuffling.
    hidden:
        Hidden-layer widths (paper default ``(8, 8)``).
    lr:
        Adam learning rate.
    """

    def __init__(
        self,
        input_dim: int,
        seed: int = 0,
        hidden: tuple[int, int] = (8, 8),
        lr: float = 1e-2,
    ) -> None:
        self._rng = np.random.default_rng(seed)
        self.network: MLP = build_l2p_network(input_dim, self._rng, hidden)
        self._optimizer = Adam(self.network.parameters(), self.network.gradients(), lr=lr)

    def outputs(self, representations: np.ndarray) -> np.ndarray:
        """Forward pass; returns the scalar output per row in (0, 1)."""
        return self.network.forward(np.atleast_2d(representations))[:, 0]

    def assign(self, representations: np.ndarray) -> np.ndarray:
        """Group side per row: False = first group (O < 0.5), True = second."""
        return self.outputs(representations) >= 0.5

    def train(
        self,
        reps_x: np.ndarray,
        reps_y: np.ndarray,
        similarities: np.ndarray,
        epochs: int = 3,
        batch_size: int = 256,
        loss: str = "surrogate",
    ) -> list[float]:
        """Train on pre-computed pairs; returns the mean loss per epoch.

        ``loss="surrogate"`` trains with Equation 18; ``loss="hard"`` trains
        with Equation 15 directly (gradient is zero almost everywhere — the
        ablation showing why the surrogate exists).  The reported epoch loss
        is always the *hard* objective so the two are comparable.
        """
        if loss not in ("surrogate", "hard"):
            raise ValueError(f"unknown loss {loss!r}")
        num_pairs = len(similarities)
        if reps_x.shape != reps_y.shape or len(reps_x) != num_pairs:
            raise ValueError("pair arrays must align")
        distance = 1.0 - np.asarray(similarities, dtype=np.float64)
        history: list[float] = []
        for _ in range(epochs):
            order = self._rng.permutation(num_pairs)
            epoch_loss = 0.0
            for start in range(0, num_pairs, batch_size):
                batch = order[start : start + batch_size]
                epoch_loss += self._train_batch(
                    reps_x[batch], reps_y[batch], distance[batch], loss
                )
            history.append(epoch_loss / max(num_pairs, 1))
        return history

    def _train_batch(
        self,
        batch_x: np.ndarray,
        batch_y: np.ndarray,
        distance: np.ndarray,
        loss: str,
    ) -> float:
        # The twins share one network, and layers cache only their latest
        # forward pass; so: preview O_y, then forward+backward x, then
        # forward+backward y, accumulating both twins' gradients before the
        # single optimizer step (true weight sharing).
        out_y = self.network.forward(batch_y)[:, 0]
        out_x = self.network.forward(batch_x)[:, 0]
        grad_x = self._output_gradient(out_x, out_y, distance, loss)
        self.network.backward(grad_x[:, None])
        self.network.forward(batch_y)
        grad_y = self._output_gradient(out_y, out_x, distance, loss)
        self.network.backward(grad_y[:, None])
        self._optimizer.step()
        batch_loss = hard_pair_loss(out_x, out_y, distance)
        return float(batch_loss.sum())

    @staticmethod
    def _output_gradient(
        out_self: np.ndarray,
        out_other: np.ndarray,
        distance: np.ndarray,
        loss: str,
    ) -> np.ndarray:
        same_side = ((out_self >= 0.5) & (out_other >= 0.5)) | (
            (out_self < 0.5) & (out_other < 0.5)
        )
        if loss == "hard":
            # Equation 15 has zero gradient except exactly at O_x = O_y = 0.5;
            # following the paper we treat it as zero everywhere, so training
            # with it cannot move the weights (the ablation's point).
            return np.zeros_like(out_self)
        sign = np.sign(out_self - out_other)
        return np.where(same_side, -sign * distance, 0.0)
