"""Index maintenance: delta compaction and on-disk re-sharding.

Two operations keep a long-lived generation directory healthy without a
Python-side rebuild (no partitioner training, no model fitting):

* :func:`compact_index` — fold a generation's write-ahead ``delta.log``
  into a fresh base generation.  The load path already replays the
  delta, so compaction is exactly *load + re-save*: the staged directory
  carries the folded dataset and groups and **no** delta log, and the
  swap rides the same crash-safe
  :func:`~repro.core.persistence.atomic_directory` two-step rename every
  save uses.  A crash at any point leaves the target either the old
  generation (base + its intact delta log — still loadable, still
  exact) or the complete new generation, never a mix.  The new
  manifest's epoch differs from the old, so process-pool workers and
  mmap readers keyed by epoch evict their stale rehydrations.

* :func:`rebalance_index` — re-shard a saved index straight from its
  binary columnar file: groups are read from the shard manifests,
  re-binned across the target shard count with the same LPT policy as
  :meth:`~repro.distributed.sharded.ShardedLES3.from_engine`, shard TGMs
  are rebuilt from vectorized CSR gathers over the mapped dataset, and
  the result is saved through the same atomic swap.  Pending delta ops
  are folded in the process (a rebalance is also a compaction).

Both are exposed as CLI commands (``repro compact``, ``repro
rebalance``); see ``docs/persistence.md`` for the lifecycle reference.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.persistence import (
    DATASET_BIN,
    PersistenceError,
    _load_engine,
    recover_interrupted_swap,
    save_engine,
)
from repro.distributed.persistence import (
    is_sharded_index,
    _load_sharded,
    save_sharded,
)
from repro.distributed.sharded import ShardedLES3, _build_concurrently
from repro.distributed.sharding import lpt_balance
from repro.core.tgm import TokenGroupMatrix
from repro.testing.faults import fault_point

__all__ = ["compact_index", "rebalance_index"]


def compact_index(directory: str | Path, workers: int | None = None) -> dict:
    """Fold a generation's delta log into a fresh base generation.

    Loads the index (which replays ``delta.log`` over the base) and
    re-saves it in place through the crash-safe atomic swap; the new
    generation starts with an empty delta.  Single-engine and sharded
    saves are auto-detected.  Returns a summary dictionary:
    ``{"sharded", "ops_folded", "num_records", "num_tombstones"}`` (plus
    ``"num_shards"`` for sharded saves).

    Interrupting compaction at any injection point leaves the directory
    loadable: either the old generation with its delta log intact, or
    the complete new generation — never a mix (the swap is the same
    two-step rename every save uses).
    """
    directory = Path(directory)
    recover_interrupted_swap(directory)
    # mmap keeps the fold cheap (no text parse) and is bit-identical;
    # pre-v3 saves have no dataset.bin and fall back to the text load.
    mode = "mmap" if (directory / DATASET_BIN).is_file() else "memory"
    fault_point("compact.load", str(directory))
    if is_sharded_index(directory):
        engine = _load_sharded(directory, workers=workers, mode=mode)
        ops_folded = engine._delta.num_ops
        fault_point("compact.fold", str(directory))
        save_sharded(engine, directory)
        return {
            "sharded": True,
            "num_shards": engine.num_shards,
            "ops_folded": ops_folded,
            "num_records": len(engine.dataset),
            "num_tombstones": len(engine.removed),
        }
    engine = _load_engine(directory, mode=mode)
    ops_folded = engine._delta.num_ops
    fault_point("compact.fold", str(directory))
    save_engine(engine, directory)
    return {
        "sharded": False,
        "ops_folded": ops_folded,
        "num_records": len(engine.dataset),
        "num_tombstones": len(engine.removed),
    }


def rebalance_index(
    directory: str | Path, num_shards: int, workers: int | None = None
) -> dict:
    """Re-shard a saved index in place, without re-partitioning.

    The saved groups (single-engine or sharded, pending delta ops
    folded) are spread over ``num_shards`` bins with the LPT balance
    policy, per-shard TGMs are rebuilt from the (mapped, when available)
    dataset, and the result replaces the directory through the atomic
    swap as a sharded save.  The learned partitioning — the groups
    themselves — is preserved exactly, so answers are unchanged; only
    the shard placement moves.  Tombstones carry over (attributed to
    shard 0, like :meth:`~repro.distributed.sharded.ShardedLES3.from_engine`).

    Returns ``{"num_shards", "num_groups", "num_records",
    "ops_folded", "shard_sizes"}``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    directory = Path(directory)
    recover_interrupted_swap(directory)
    mode = "mmap" if (directory / DATASET_BIN).is_file() else "memory"
    fault_point("rebalance.load", str(directory))
    if is_sharded_index(directory):
        source = _load_sharded(directory, workers=workers, mode=mode)
        dataset = source.dataset
        groups = [
            list(members)
            for shard_groups in source._shard_groups
            for members in shard_groups
        ]
        measure = source.measure
        backend = source.tgms[0].backend
        verify = source.verify
        removed = set(source.removed)
        ops_folded = source._delta.num_ops
    else:
        source = _load_engine(directory, mode=mode)
        dataset = source.dataset
        groups = [list(members) for members in source.tgm.group_members]
        measure = source.measure
        backend = source.tgm.backend
        verify = source.verify
        removed = set(source.removed)
        ops_folded = source._delta.num_ops
    if not groups:
        raise PersistenceError(
            f"{directory} holds no groups — nothing to rebalance"
        )
    num_shards = min(num_shards, len(groups)) or 1
    bins = lpt_balance([len(group) for group in groups], num_shards)
    shard_groups = [[groups[group_id] for group_id in bin_] for bin_ in bins]

    def shard_builder(assigned):
        def build() -> TokenGroupMatrix:
            return TokenGroupMatrix(dataset, assigned, measure, backend)

        return build

    fault_point("rebalance.build", str(directory))
    tgms = _build_concurrently(
        [shard_builder(assigned) for assigned in shard_groups], workers
    )
    engine = ShardedLES3(dataset, tgms, measure, verify=verify)
    engine.placement = "lpt"
    engine.removed = {record_index: 0 for record_index in removed}
    save_sharded(engine, directory)
    return {
        "num_shards": engine.num_shards,
        "num_groups": engine.num_groups,
        "num_records": len(dataset),
        "ops_folded": ops_folded,
        "shard_sizes": engine.shard_sizes(),
    }
