"""Partitioning strategies: the GPO objective and the Section 4.3 heuristics."""

from repro.partitioning.base import Partition, Partitioner
from repro.partitioning.objective import (
    balance,
    expected_pruning_efficiency,
    f_value,
    gpo,
    gpo_sampled,
    group_phi,
    ilp_objective,
    summed_vocabulary,
)
from repro.partitioning.par_a import ParAPartitioner
from repro.partitioning.par_c import ParCPartitioner
from repro.partitioning.par_d import ParDPartitioner
from repro.partitioning.par_g import ParGPartitioner
from repro.partitioning.simple import MinTokenPartitioner, RandomPartitioner, chunk_evenly

__all__ = [
    "Partition",
    "Partitioner",
    "balance",
    "expected_pruning_efficiency",
    "f_value",
    "gpo",
    "gpo_sampled",
    "group_phi",
    "ilp_objective",
    "summed_vocabulary",
    "ParAPartitioner",
    "ParCPartitioner",
    "ParDPartitioner",
    "ParGPartitioner",
    "MinTokenPartitioner",
    "RandomPartitioner",
    "chunk_evenly",
]
