"""Partition representation and the partitioner interface.

A :class:`Partition` is the output of every partitioning strategy (Section 4
algorithmic methods, Section 5 L2P): an assignment of each record index of a
dataset to one of ``n`` disjoint groups.  The TGM is built directly from a
partition; the partitioning objective functions evaluate one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from repro.core.dataset import Dataset

__all__ = ["Partition", "Partitioner"]


class Partition:
    """A disjoint grouping of record indices ``0 .. len(dataset) - 1``.

    Parameters
    ----------
    groups:
        One list of record indices per group.  Empty groups are dropped.
    """

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        self.groups: list[list[int]] = [list(group) for group in groups if len(group)]
        self._assignments: dict[int, int] = {}
        for group_id, group in enumerate(self.groups):
            for record_index in group:
                if record_index in self._assignments:
                    raise ValueError(f"record {record_index} assigned to more than one group")
                self._assignments[record_index] = group_id

    @classmethod
    def from_assignments(cls, assignments: Sequence[int]) -> "Partition":
        """Build from a per-record group-id vector (ids need not be dense)."""
        by_group: dict[int, list[int]] = {}
        for record_index, group_id in enumerate(assignments):
            by_group.setdefault(group_id, []).append(record_index)
        return cls([by_group[g] for g in sorted(by_group)])

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.groups)

    def __getitem__(self, group_id: int) -> list[int]:
        return self.groups[group_id]

    def group_of(self, record_index: int) -> int:
        """Group id of a record; raises ``KeyError`` for unassigned records."""
        return self._assignments[record_index]

    def num_records(self) -> int:
        return len(self._assignments)

    def covers(self, dataset_size: int) -> bool:
        """True when every record index ``< dataset_size`` is assigned."""
        return len(self._assignments) == dataset_size and (
            not self._assignments or max(self._assignments) == dataset_size - 1
        )

    def group_sizes(self) -> list[int]:
        return [len(group) for group in self.groups]

    def assign(self, record_index: int, group_id: int) -> None:
        """Assign a *new* record to an existing group (used for updates)."""
        if record_index in self._assignments:
            raise ValueError(f"record {record_index} is already assigned")
        if not 0 <= group_id < len(self.groups):
            raise IndexError(f"group id {group_id} out of range")
        self.groups[group_id].append(record_index)
        self._assignments[record_index] = group_id


class Partitioner(ABC):
    """A strategy that splits a dataset into ``n`` groups."""

    @abstractmethod
    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        """Partition ``dataset`` into at most ``num_groups`` groups."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
