"""Partitioning objectives from Section 4.

* ``summed_vocabulary`` — ``U = Σ_g |∪_{S∈G_g} S|`` (Equation 10, the
  uniform-case Property 2 objective).
* ``f_value`` — the ``F`` term of Equation 8 whose minimisation maximises
  expected pruning efficiency in the uniform case.
* ``gpo`` — the General Partitioning Objective of Equation 13: summed
  intra-group pairwise distances ``1 − Sim``.
* ``expected_pruning_efficiency`` — Equation 6's estimate, treating the
  database itself as the query distribution.
* ``balance`` — max/mean group size, a diagnostic for Property 1.

``gpo`` is quadratic in group size; ``gpo_sampled`` approximates it with a
per-group sample exactly as footnote 2 of the paper prescribes for the
experimental comparison of partitioners.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.dataset import Dataset
from repro.core.similarity import Similarity, get_measure
from repro.partitioning.base import Partition

__all__ = [
    "summed_vocabulary",
    "f_value",
    "gpo",
    "gpo_sampled",
    "group_phi",
    "expected_pruning_efficiency",
    "ilp_objective",
    "balance",
]


def summed_vocabulary(dataset: Dataset, partition: Partition) -> int:
    """``U = Σ_g |GS_g|`` (Equation 10)."""
    total = 0
    for group in partition.groups:
        vocabulary: set[int] = set()
        for record_index in group:
            vocabulary.update(dataset.records[record_index].distinct)
        total += len(vocabulary)
    return total


def f_value(dataset: Dataset, partition: Partition) -> float:
    """The ``F`` term of Equation 8 with ``Q`` ranging over the database."""
    total = 0.0
    for group in partition.groups:
        vocabulary: set[int] = set()
        for record_index in group:
            vocabulary.update(dataset.records[record_index].distinct)
        coverage = 0.0
        for query in dataset.records:
            covered = sum(1 for token in query.distinct if token in vocabulary)
            coverage += covered / len(query)
        total += len(group) * coverage
    return total


def group_phi(
    dataset: Dataset,
    members: Sequence[int],
    measure: Similarity,
) -> float:
    """``φ(G)``: sum of pairwise distances inside one group (Section 4.3.2).

    Counts unordered pairs once; Equation 13 counts ordered pairs, which is
    exactly twice this value — a constant factor that changes no argmin.
    """
    total = 0.0
    records = dataset.records
    for i, index_a in enumerate(members):
        record_a = records[index_a]
        for index_b in members[i + 1 :]:
            total += 1.0 - measure(record_a, records[index_b])
    return total


def gpo(dataset: Dataset, partition: Partition, measure: str | Similarity = "jaccard") -> float:
    """General Partitioning Objective (Equation 13), unordered-pair form."""
    measure = get_measure(measure)
    return sum(group_phi(dataset, group, measure) for group in partition.groups)


def gpo_sampled(
    dataset: Dataset,
    partition: Partition,
    measure: str | Similarity = "jaccard",
    sample_size: int = 32,
    seed: int = 0,
) -> float:
    """GPO approximated per group by sampling pairs (paper footnote 2).

    For a group of size ``m`` the exact φ sums ``m(m−1)/2`` pairs; we sample
    ``min(sample_size, ...)`` members, compute their exact φ, and scale by
    the ratio of pair counts.
    """
    measure = get_measure(measure)
    rng = random.Random(seed)
    total = 0.0
    for group in partition.groups:
        size = len(group)
        if size < 2:
            continue
        if size <= sample_size:
            total += group_phi(dataset, group, measure)
            continue
        sample = rng.sample(group, sample_size)
        sample_pairs = sample_size * (sample_size - 1) / 2
        true_pairs = size * (size - 1) / 2
        total += group_phi(dataset, sample, measure) * (true_pairs / sample_pairs)
    return total


def expected_pruning_efficiency(
    dataset: Dataset,
    partition: Partition,
    measure: str | Similarity = "jaccard",
    query_sample: int | None = None,
    seed: int = 0,
) -> float:
    """Equation 6: expected PE with the database as the query workload.

    Normalised to [0, 1]: for each query the fraction of the database in
    groups weighted by ``1 − UB`` is averaged over queries.
    """
    measure = get_measure(measure)
    rng = random.Random(seed)
    queries = dataset.records
    if query_sample is not None and query_sample < len(queries):
        queries = [queries[i] for i in rng.sample(range(len(queries)), query_sample)]
    if not queries or not len(dataset):
        return 1.0

    group_vocabularies = []
    for group in partition.groups:
        vocabulary: set[int] = set()
        for record_index in group:
            vocabulary.update(dataset.records[record_index].distinct)
        group_vocabularies.append(vocabulary)

    total = 0.0
    for query in queries:
        pruned_mass = 0.0
        for group, vocabulary in zip(partition.groups, group_vocabularies):
            covered = sum(1 for token in query.distinct if token in vocabulary)
            bound = measure.group_upper_bound(covered, len(query))
            pruned_mass += len(group) * (1.0 - bound)
        total += pruned_mass / len(dataset)
    return total / len(queries)


def ilp_objective(
    dataset: Dataset,
    partition: Partition,
    measure: str | Similarity = "jaccard",
):
    """Evaluate the 0-1 ILP objective of Theorem 4.4 (Equation 14).

    Builds the assignment matrix ``A`` (|D| × n, ``A[x, g] = 1`` iff set x
    is in group g) and the distance matrix ``D`` (``1 − Sim``), and returns
    ``e · [A·Aᵀ ⊙ D] · eᵀ`` — the masked sum of intra-group distances over
    *ordered* pairs, which equals exactly ``2 · gpo(...)``.  Used to verify
    operationally that minimising GPO and solving Equation 14 are the same
    problem (the reduction behind the NP-completeness proof).
    """
    import numpy as np

    measure = get_measure(measure)
    n = len(dataset)
    assignment = np.zeros((n, partition.num_groups))
    for group_id, group in enumerate(partition.groups):
        for record_index in group:
            assignment[record_index, group_id] = 1.0
    distances = np.zeros((n, n))
    for x in range(n):
        for y in range(x + 1, n):
            d = 1.0 - measure(dataset.records[x], dataset.records[y])
            distances[x, y] = d
            distances[y, x] = d
    same_group = assignment @ assignment.T
    return float((same_group * distances).sum())


def balance(partition: Partition) -> float:
    """Max group size divided by mean group size (1.0 = perfectly balanced)."""
    sizes = partition.group_sizes()
    if not sizes:
        return 1.0
    mean = sum(sizes) / len(sizes)
    return max(sizes) / mean if mean else 1.0
