"""PAR-A — agglomerative clustering (Section 4.3.4).

Start from singletons; repeatedly merge the smallest group (the paper's
simplification, breaking ties randomly) with the partner that minimises
φ(G₁ ∪ G₂), until ``n`` groups remain.  The cross-group distance is
estimated on bounded samples; optionally only a random subset of candidate
partners is evaluated per merge to keep the quadratic cost bearable at the
dataset sizes the benchmarks use.
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset
from repro.core.similarity import Similarity, get_measure
from repro.partitioning.base import Partition, Partitioner

__all__ = ["ParAPartitioner"]


class ParAPartitioner(Partitioner):
    """Agglomerative (bottom-up merging) heuristic for GPO."""

    def __init__(
        self,
        measure: str | Similarity = "jaccard",
        sample_size: int = 8,
        candidate_sample: int | None = 64,
        seed: int = 0,
    ) -> None:
        self.measure = get_measure(measure)
        self.sample_size = sample_size
        self.candidate_sample = candidate_sample
        self.seed = seed

    def _cross_cost(
        self, dataset: Dataset, group_a: list[int], group_b: list[int], rng: random.Random
    ) -> float:
        """Sampled estimate of Σ_{a∈A, b∈B} (1 − Sim(a, b)), scaled."""
        sample_a = group_a if len(group_a) <= self.sample_size else rng.sample(group_a, self.sample_size)
        sample_b = group_b if len(group_b) <= self.sample_size else rng.sample(group_b, self.sample_size)
        total = 0.0
        for index_a in sample_a:
            record_a = dataset.records[index_a]
            for index_b in sample_b:
                total += 1.0 - self.measure(record_a, dataset.records[index_b])
        scale = (len(group_a) * len(group_b)) / (len(sample_a) * len(sample_b))
        return total * scale

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        rng = random.Random(self.seed)
        groups: list[list[int]] = [[i] for i in range(len(dataset))]
        while len(groups) > num_groups:
            smallest_size = min(len(g) for g in groups)
            smallest_candidates = [g for g in range(len(groups)) if len(groups[g]) == smallest_size]
            source = rng.choice(smallest_candidates)

            partner_ids = [g for g in range(len(groups)) if g != source]
            if self.candidate_sample is not None and len(partner_ids) > self.candidate_sample:
                partner_ids = rng.sample(partner_ids, self.candidate_sample)
            # φ(G1 ∪ G2) = φ(G1) + φ(G2) + cross(G1, G2); φ(G1) is shared by
            # every candidate, so rank by φ(G2) + cross ≈ proxied by the
            # average merged distance to keep size bias out.
            best_partner = min(
                partner_ids,
                key=lambda g: self._cross_cost(dataset, groups[source], groups[g], rng)
                / (len(groups[source]) * len(groups[g])),
            )
            groups[best_partner] = groups[best_partner] + groups[source]
            groups.pop(source)
        return Partition([sorted(group) for group in groups])
