"""PAR-C — centroid-style first-improvement relocation (Section 4.3.2).

Start from a random balanced partition; repeatedly visit each set and move
it to the *first* group where the move decreases the GPO, until a full pass
makes no move (or the iteration cap is hit).  Following footnote 2 of the
paper, the distance from a set to a group is estimated on a bounded random
sample of the group's members, scaled to the group size.

The GPO delta for moving ``S`` from ``G_i`` to ``G_j`` is
``Δ = d(S, G_j) − d(S, G_i \\ {S})`` where ``d(S, G) = Σ_{S'∈G} (1 − Sim)``;
the move helps when ``Δ < 0``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.dataset import Dataset
from repro.core.similarity import Similarity, get_measure
from repro.partitioning.base import Partition, Partitioner
from repro.partitioning.simple import RandomPartitioner

__all__ = ["ParCPartitioner", "set_to_group_distance"]


def set_to_group_distance(
    dataset: Dataset,
    record_index: int,
    members: Sequence[int],
    measure: Similarity,
    rng: random.Random,
    sample_size: int,
) -> float:
    """Estimate ``Σ_{S'∈G} (1 − Sim(S, S'))``, skipping ``S`` itself."""
    others = [m for m in members if m != record_index]
    if not others:
        return 0.0
    if len(others) > sample_size:
        sample = rng.sample(others, sample_size)
        scale = len(others) / sample_size
    else:
        sample, scale = others, 1.0
    record = dataset.records[record_index]
    total = sum(1.0 - measure(record, dataset.records[m]) for m in sample)
    return total * scale


class ParCPartitioner(Partitioner):
    """First-improvement relocation heuristic for GPO."""

    def __init__(
        self,
        measure: str | Similarity = "jaccard",
        max_passes: int = 5,
        sample_size: int = 16,
        seed: int = 0,
    ) -> None:
        self.measure = get_measure(measure)
        self.max_passes = max_passes
        self.sample_size = sample_size
        self.seed = seed

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        rng = random.Random(self.seed)
        partition = RandomPartitioner(self.seed).partition(dataset, num_groups)
        groups = [set(group) for group in partition.groups]
        assignment = {}
        for group_id, group in enumerate(groups):
            for record_index in group:
                assignment[record_index] = group_id

        for _ in range(self.max_passes):
            moved = 0
            for record_index in range(len(dataset)):
                current = assignment[record_index]
                if len(groups[current]) <= 1:
                    continue  # never empty a group
                current_cost = set_to_group_distance(
                    dataset, record_index, list(groups[current]), self.measure, rng, self.sample_size
                )
                for candidate in range(len(groups)):
                    if candidate == current:
                        continue
                    candidate_cost = set_to_group_distance(
                        dataset, record_index, list(groups[candidate]), self.measure, rng, self.sample_size
                    )
                    if candidate_cost < current_cost:
                        groups[current].discard(record_index)
                        groups[candidate].add(record_index)
                        assignment[record_index] = candidate
                        moved += 1
                        break
            if not moved:
                break
        return Partition([sorted(group) for group in groups if group])
