"""PAR-D — divisive clustering (Section 4.3.3).

Start with one group holding the whole database; repeatedly pick the group
with the largest (sampled) φ, seed a new group with a random member (the
paper's simplification of picking the max-``idv_d`` member), then move every
other member across when doing so reduces the GPO.  Stop at ``n`` groups.
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset
from repro.core.similarity import Similarity, get_measure
from repro.partitioning.base import Partition, Partitioner
from repro.partitioning.par_c import set_to_group_distance

__all__ = ["ParDPartitioner"]


class ParDPartitioner(Partitioner):
    """Divisive (top-down splitting) heuristic for GPO."""

    def __init__(
        self,
        measure: str | Similarity = "jaccard",
        sample_size: int = 16,
        seed: int = 0,
    ) -> None:
        self.measure = get_measure(measure)
        self.sample_size = sample_size
        self.seed = seed

    def _sampled_phi(self, dataset: Dataset, members: list[int], rng: random.Random) -> float:
        """Sampled estimate of φ(G), scaled to the full pair count."""
        size = len(members)
        if size < 2:
            return 0.0
        sample = members if size <= self.sample_size else rng.sample(members, self.sample_size)
        total = 0.0
        for i, index_a in enumerate(sample):
            record_a = dataset.records[index_a]
            for index_b in sample[i + 1 :]:
                total += 1.0 - self.measure(record_a, dataset.records[index_b])
        sample_pairs = len(sample) * (len(sample) - 1) / 2
        true_pairs = size * (size - 1) / 2
        return total * (true_pairs / sample_pairs)

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        rng = random.Random(self.seed)
        groups: list[list[int]] = [list(range(len(dataset)))]
        while len(groups) < num_groups:
            splittable = [g for g in range(len(groups)) if len(groups[g]) >= 2]
            if not splittable:
                break
            target = max(splittable, key=lambda g: self._sampled_phi(dataset, groups[g], rng))
            members = groups[target]
            seed_member = members[rng.randrange(len(members))]
            new_group = [seed_member]
            remaining = [m for m in members if m != seed_member]
            kept: list[int] = []
            for record_index in remaining:
                stay_cost = set_to_group_distance(
                    dataset, record_index, remaining, self.measure, rng, self.sample_size
                )
                move_cost = set_to_group_distance(
                    dataset, record_index, new_group, self.measure, rng, self.sample_size
                )
                # Normalise by group size: compare average distances so early
                # (tiny) new groups do not attract everything.
                stay_avg = stay_cost / max(len(remaining) - 1, 1)
                move_avg = move_cost / len(new_group)
                if move_avg < stay_avg:
                    new_group.append(record_index)
                else:
                    kept.append(record_index)
            if not kept:  # degenerate split: keep the seed alone
                kept = new_group[1:]
                new_group = new_group[:1]
            groups[target] = kept
            groups.append(new_group)
        return Partition(groups)
