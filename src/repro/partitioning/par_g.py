"""PAR-G — graph-cut based partitioning (Section 4.3.1).

Workload-specific: for a kNN workload with result size ``k`` it builds the
k-nearest-neighbour similarity graph of the database; for a range workload
with threshold ``δ`` it links every pair with ``Sim >= δ``.  The graph is
then cut into ``n`` balanced parts with the multilevel partitioner
(:mod:`repro.graphs.partition`), the stand-in for PaToH.

The kNN-graph construction is accelerated exactly as in the paper's
experiment — a bootstrap LES3 index (over a cheap min-token partition)
answers the per-set kNN queries instead of brute force.
"""

from __future__ import annotations

from repro.core.dataset import Dataset
from repro.core.search import knn_search
from repro.core.similarity import Similarity, get_measure
from repro.core.tgm import TokenGroupMatrix
from repro.graphs.graph import Graph
from repro.graphs.partition import partition_graph
from repro.partitioning.base import Partition, Partitioner
from repro.partitioning.simple import MinTokenPartitioner

__all__ = ["ParGPartitioner", "build_knn_graph", "build_range_graph"]


def build_knn_graph(
    dataset: Dataset,
    k: int,
    measure: Similarity,
    bootstrap_groups: int = 64,
) -> Graph:
    """Similarity graph linking each set to its k nearest neighbours."""
    graph = Graph(len(dataset))
    bootstrap_partition = MinTokenPartitioner().partition(dataset, min(bootstrap_groups, max(len(dataset) // 4, 1)))
    tgm = TokenGroupMatrix(dataset, bootstrap_partition.groups, measure)
    for record_index, record in enumerate(dataset.records):
        result = knn_search(dataset, tgm, record, k + 1)  # +1: the set itself
        for neighbor_index, similarity in result.matches:
            if neighbor_index != record_index:
                graph.add_edge(record_index, neighbor_index, max(similarity, 1e-9))
    return graph


def build_range_graph(dataset: Dataset, threshold: float, measure: Similarity) -> Graph:
    """Similarity graph linking every pair with ``Sim >= threshold``.

    Uses a token-inverted index so only pairs sharing a token are compared.
    """
    graph = Graph(len(dataset))
    token_to_records: dict[int, list[int]] = {}
    for record_index, record in enumerate(dataset.records):
        for token in record.distinct:
            token_to_records.setdefault(token, []).append(record_index)
    seen: set[tuple[int, int]] = set()
    for posting in token_to_records.values():
        for i, index_a in enumerate(posting):
            record_a = dataset.records[index_a]
            for index_b in posting[i + 1 :]:
                pair = (index_a, index_b)
                if pair in seen:
                    continue
                seen.add(pair)
                similarity = measure(record_a, dataset.records[index_b])
                if similarity >= threshold:
                    graph.add_edge(index_a, index_b, similarity)
    return graph


class ParGPartitioner(Partitioner):
    """Balanced cut of the workload similarity graph.

    Parameters
    ----------
    k:
        Result size the index is optimised for (kNN workloads).  Exactly one
        of ``k`` / ``threshold`` must be given.
    threshold:
        Range threshold the index is optimised for (range workloads).
    """

    def __init__(
        self,
        k: int | None = 10,
        threshold: float | None = None,
        measure: str | Similarity = "jaccard",
        tolerance: float = 0.1,
        seed: int = 0,
    ) -> None:
        if (k is None) == (threshold is None):
            raise ValueError("specify exactly one of k or threshold")
        self.k = k
        self.threshold = threshold
        self.measure = get_measure(measure)
        self.tolerance = tolerance
        self.seed = seed

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        if self.k is not None:
            graph = build_knn_graph(dataset, self.k, self.measure)
        else:
            graph = build_range_graph(dataset, self.threshold, self.measure)
        assignment = partition_graph(graph, num_groups, self.tolerance, self.seed)
        return Partition.from_assignments(assignment)
