"""Trivial partitioners: random and the min-token initialisation.

``MinTokenPartitioner`` is the cascade initialisation of Section 7.1: sort
all sets by their minimal token id and chop the order into equal consecutive
chunks.  ``RandomPartitioner`` is the PAR-C initialisation and a baseline in
its own right (a TGM over random groups still prunes a little).
"""

from __future__ import annotations

import random

from repro.core.dataset import Dataset
from repro.partitioning.base import Partition, Partitioner

__all__ = ["RandomPartitioner", "MinTokenPartitioner", "chunk_evenly"]


def chunk_evenly(ordered: list[int], num_groups: int) -> list[list[int]]:
    """Split an ordered index list into ``num_groups`` consecutive chunks.

    Sizes differ by at most one; never produces empty chunks unless the
    input is shorter than ``num_groups``.
    """
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    count = len(ordered)
    num_groups = min(num_groups, count) if count else 1
    base, remainder = divmod(count, num_groups)
    chunks = []
    start = 0
    for chunk_id in range(num_groups):
        size = base + (1 if chunk_id < remainder else 0)
        if size:
            chunks.append(ordered[start : start + size])
        start += size
    return chunks


class RandomPartitioner(Partitioner):
    """Uniformly random balanced partitioning."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        indices = list(range(len(dataset)))
        random.Random(self.seed).shuffle(indices)
        return Partition(chunk_evenly(indices, num_groups))


class MinTokenPartitioner(Partitioner):
    """Sort sets by minimal token id; chop into consecutive equal chunks.

    Sets sharing rare low-id tokens land together, which already groups
    token-correlated sets when token ids are assigned in frequency order.
    """

    def partition(self, dataset: Dataset, num_groups: int) -> Partition:
        order = sorted(range(len(dataset)), key=lambda i: (dataset.records[i].min_token(), i))
        return Partition(chunk_evenly(order, num_groups))
