"""R-tree substrate (STR bulk load, bound-driven exact search)."""

from repro.rtree.node import Node
from repro.rtree.rtree import RTree

__all__ = ["Node", "RTree"]
