"""R-tree nodes: minimum bounding rectangles over d-dimensional vectors."""

from __future__ import annotations

import numpy as np

__all__ = ["Node"]


class Node:
    """An R-tree node (leaf or internal).

    Leaves hold ``entries`` — (record_index, vector) pairs; internal nodes
    hold ``children`` — other nodes.  ``mbr_min``/``mbr_max`` bound all
    vectors beneath the node.
    """

    __slots__ = ("mbr_min", "mbr_max", "children", "entries")

    def __init__(self) -> None:
        self.mbr_min: np.ndarray | None = None
        self.mbr_max: np.ndarray | None = None
        self.children: list["Node"] = []
        self.entries: list[tuple[int, np.ndarray]] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def recompute_mbr(self) -> None:
        """Recompute the bounding rectangle from children or entries."""
        if self.is_leaf:
            if not self.entries:
                raise ValueError("cannot bound an empty leaf")
            vectors = np.stack([vector for _, vector in self.entries])
            self.mbr_min = vectors.min(axis=0)
            self.mbr_max = vectors.max(axis=0)
        else:
            self.mbr_min = np.min(np.stack([c.mbr_min for c in self.children]), axis=0)
            self.mbr_max = np.max(np.stack([c.mbr_max for c in self.children]), axis=0)

    def count_nodes(self) -> int:
        """Total node count of the subtree (this node included)."""
        if self.is_leaf:
            return 1
        return 1 + sum(child.count_nodes() for child in self.children)

    def depth(self) -> int:
        """Height of the subtree (a lone leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)
