"""R-tree with STR bulk loading and bound-driven search.

The substrate behind the DualTrans baseline (Section 7.6 / [73]): vectors
are organised into an R-tree built with Sort-Tile-Recursive packing; queries
traverse the tree best-first using a caller-supplied *bound function* that
maps a node's MBR to an upper bound of the query's similarity to anything
beneath the node.  This keeps the tree generic: it knows rectangles, not
similarity measures.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Sequence

import numpy as np

from repro.rtree.node import Node

__all__ = ["RTree"]

BoundFunction = Callable[[np.ndarray, np.ndarray], float]


class RTree:
    """Static R-tree over (record_index, vector) pairs."""

    def __init__(self, leaf_capacity: int = 32, fanout: int = 8) -> None:
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf_capacity and fanout must be at least 2")
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.root: Node | None = None
        self._dim: int | None = None

    # -- construction ---------------------------------------------------------

    def bulk_load(self, vectors: np.ndarray, indices: Sequence[int] | None = None) -> "RTree":
        """Sort-Tile-Recursive packing of ``vectors`` (rows)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or not len(vectors):
            raise ValueError("vectors must be a non-empty 2-D array")
        self._dim = vectors.shape[1]
        if indices is None:
            indices = range(len(vectors))
        entries = [(int(index), vectors[i]) for i, index in enumerate(indices)]
        leaves = self._pack_leaves(entries)
        self.root = self._pack_upwards(leaves)
        return self

    def _pack_leaves(self, entries: list[tuple[int, np.ndarray]]) -> list[Node]:
        groups = self._str_tiles(entries, self.leaf_capacity, key=lambda e: e[1])
        leaves = []
        for group in groups:
            leaf = Node()
            leaf.entries = group
            leaf.recompute_mbr()
            leaves.append(leaf)
        return leaves

    def _pack_upwards(self, nodes: list[Node]) -> Node:
        while len(nodes) > 1:
            groups = self._str_tiles(nodes, self.fanout, key=lambda n: (n.mbr_min + n.mbr_max) / 2)
            parents = []
            for group in groups:
                parent = Node()
                parent.children = group
                parent.recompute_mbr()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    def _str_tiles(self, items: list, capacity: int, key) -> list[list]:
        """One STR pass: sort by dim 0, slice, sort slices by dim 1, chunk.

        Generalises to d dimensions by recursive slicing over dimensions;
        two levels suffice in practice for the dimensionalities used here.
        """
        count = len(items)
        num_groups = math.ceil(count / capacity)
        slices = math.ceil(math.sqrt(num_groups))
        by_first = sorted(items, key=lambda item: key(item)[0])
        slice_size = math.ceil(count / slices)
        groups = []
        for start in range(0, count, slice_size):
            chunk = by_first[start : start + slice_size]
            chunk.sort(key=lambda item: tuple(key(item)[1:]) if len(key(item)) > 1 else 0)
            for inner in range(0, len(chunk), capacity):
                groups.append(chunk[inner : inner + capacity])
        return groups

    # -- dynamic insertion (Guttman's ChooseLeaf + quadratic split) -------------

    def insert(self, record_index: int, vector: np.ndarray) -> None:
        """Insert one entry into a built tree (Guttman's algorithm).

        Used by the DualTrans baseline to support the update workloads the
        TGM handles natively — and to exhibit the MBR-growth cost the paper
        attributes to tree maintenance.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if self.root is None:
            self._dim = len(vector)
            leaf = Node()
            leaf.entries = [(int(record_index), vector)]
            leaf.recompute_mbr()
            self.root = leaf
            return
        if self._dim is not None and len(vector) != self._dim:
            raise ValueError(f"vector has dimension {len(vector)}, tree has {self._dim}")
        split = self._insert_into(self.root, int(record_index), vector)
        if split is not None:
            new_root = Node()
            new_root.children = [self.root, split]
            new_root.recompute_mbr()
            self.root = new_root

    def _insert_into(self, node: Node, record_index: int, vector: np.ndarray) -> Node | None:
        """Recursive insert; returns the sibling node if ``node`` split."""
        if node.is_leaf:
            node.entries.append((record_index, vector))
            if len(node.entries) > self.leaf_capacity:
                return self._split_node(node, is_leaf=True)
            node.recompute_mbr()
            return None
        child = self._choose_child(node, vector)
        split = self._insert_into(child, record_index, vector)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.fanout:
                return self._split_node(node, is_leaf=False)
        node.recompute_mbr()
        return None

    @staticmethod
    def _choose_child(node: Node, vector: np.ndarray) -> Node:
        """Child whose MBR needs the least enlargement (ties: smallest area)."""

        def enlargement(child: Node) -> tuple[float, float]:
            new_min = np.minimum(child.mbr_min, vector)
            new_max = np.maximum(child.mbr_max, vector)
            old_extent = float(np.prod(child.mbr_max - child.mbr_min + 1e-12))
            new_extent = float(np.prod(new_max - new_min + 1e-12))
            return new_extent - old_extent, old_extent

        return min(node.children, key=enlargement)

    def _split_node(self, node: Node, is_leaf: bool) -> Node:
        """Quadratic split; ``node`` keeps one half, the returned node the other."""
        if is_leaf:
            items = node.entries
            positions = [vector for _, vector in items]
        else:
            items = node.children
            positions = [(child.mbr_min + child.mbr_max) / 2 for child in items]
        # Seeds: the pair with the largest separation.
        seed_a, seed_b, worst = 0, 1, -1.0
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                distance = float(np.abs(positions[i] - positions[j]).sum())
                if distance > worst:
                    seed_a, seed_b, worst = i, j, distance
        group_a, group_b = [items[seed_a]], [items[seed_b]]
        center_a, center_b = positions[seed_a], positions[seed_b]
        for index, item in enumerate(items):
            if index in (seed_a, seed_b):
                continue
            to_a = float(np.abs(positions[index] - center_a).sum())
            to_b = float(np.abs(positions[index] - center_b).sum())
            # Keep both halves non-degenerate.
            if len(group_a) * 2 > len(items):
                group_b.append(item)
            elif len(group_b) * 2 > len(items):
                group_a.append(item)
            elif to_a <= to_b:
                group_a.append(item)
            else:
                group_b.append(item)
        sibling = Node()
        if is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # -- queries ---------------------------------------------------------------

    def range_query(
        self, bound: BoundFunction, threshold: float
    ) -> tuple[list[tuple[int, np.ndarray]], int]:
        """All leaf entries in subtrees whose bound reaches ``threshold``.

        Returns ``(entries, nodes_visited)``; the caller verifies entries
        exactly.  The bound function must upper-bound the similarity of the
        query to any vector inside the rectangle, so skipping a subtree is
        always safe.
        """
        if self.root is None:
            return [], 0
        results: list[tuple[int, np.ndarray]] = []
        nodes_visited = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes_visited += 1
            if bound(node.mbr_min, node.mbr_max) < threshold:
                continue
            if node.is_leaf:
                results.extend(node.entries)
            else:
                stack.extend(node.children)
        return results, nodes_visited

    def knn_traverse(
        self,
        bound: BoundFunction,
        score: Callable[[int, np.ndarray], float],
        k: int,
    ) -> tuple[list[tuple[int, float]], int, int]:
        """Best-first kNN: returns (matches, nodes_visited, entries_scored).

        ``score`` computes the exact similarity of a leaf entry (given its
        record index and vector); ``bound`` upper-bounds whole subtrees.
        """
        if self.root is None or k <= 0:
            return [], 0, 0
        counter = itertools.count()
        queue = [(-bound(self.root.mbr_min, self.root.mbr_max), next(counter), self.root)]
        top: list[tuple[float, int]] = []
        nodes_visited = 0
        entries_scored = 0
        while queue:
            negative_bound, _, node = heapq.heappop(queue)
            if len(top) >= k and -negative_bound < top[0][0]:
                break
            nodes_visited += 1
            if node.is_leaf:
                for record_index, vector in node.entries:
                    similarity = score(record_index, vector)
                    entries_scored += 1
                    entry = (similarity, -record_index)
                    if len(top) < k:
                        heapq.heappush(top, entry)
                    elif entry > top[0]:
                        heapq.heapreplace(top, entry)
            else:
                for child in node.children:
                    heapq.heappush(
                        queue,
                        (-bound(child.mbr_min, child.mbr_max), next(counter), child),
                    )
        matches = [(-neg, sim) for sim, neg in top]
        matches.sort(key=lambda pair: (-pair[1], pair[0]))
        return matches, nodes_visited, entries_scored

    def num_nodes(self) -> int:
        return self.root.count_nodes() if self.root else 0

    def byte_size(self, bytes_per_float: int = 8) -> int:
        """Approximate index size: two MBR vectors per node + child pointers."""
        if self.root is None or self._dim is None:
            return 0

        def node_bytes(node: Node) -> int:
            own = 2 * self._dim * bytes_per_float + 8 * max(len(node.children), 1)
            if node.is_leaf:
                own += len(node.entries) * (8 + self._dim * bytes_per_float)
                return own
            return own + sum(node_bytes(child) for child in node.children)

        return node_bytes(self.root)
