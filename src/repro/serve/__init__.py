"""`repro serve` — a long-lived asyncio query service over a saved index.

The layer that turns the engine into a *system*: a saved index directory
(single-engine or sharded — :func:`repro.load` auto-detects) becomes an
HTTP service whose concurrent kNN/range requests are admission-controlled
and micro-batched into the engine's batched BLAS kernels:

* :class:`QueryService` (:mod:`repro.serve.service`) — admission bound
  (503 + ``Retry-After`` beyond ``max_queue``), the micro-batcher
  (``batch_window_ms`` / ``max_batch``), per-shard concurrency limits,
  and the stats the ``/stats`` endpoint reports.
* :class:`ReproServer` (:mod:`repro.serve.http`) — the dependency-free
  asyncio HTTP/1.1 front: ``POST /knn``, ``POST /range``, ``POST /join``,
  ``POST /insert``, ``POST /remove``, ``GET /healthz``, ``GET /stats``.
  Writes ride the same micro-batch queue as queries (applied first
  within their batch) and persist via the generation's ``delta.log``.

Answers are bit-identical to direct engine calls — batching changes when
a request runs, never what it computes.  Start one from the command
line::

    repro serve my-sharded-index --mode lazy --parallel process

or from Python/tests with an ephemeral port::

    server = ReproServer("my-index", port=0)
    await server.start()          # binds immediately; index loads in background
    await server.ready()

See ``docs/serving.md`` for the endpoint schemas, the batching/admission
knobs, and deployment notes; ``benchmarks/bench_serve.py`` is the load
generator that produces ``BENCH_serve.json``.
"""

from repro.serve.http import ReproServer, request_json, serve, wait_ready
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.serve.service import QueryService, ServiceOverloaded, ServiceStats

__all__ = [
    "ReproServer",
    "QueryService",
    "ServiceOverloaded",
    "ServiceStats",
    "serve",
    "request_json",
    "wait_ready",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
]
