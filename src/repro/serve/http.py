"""`repro serve` — the asyncio HTTP front of a loaded index.

A deliberately small, dependency-free HTTP/1.1 server on
``asyncio.start_server`` (the container ships no web framework, and the
endpoint surface is five routes):

=======  =========  ====================================================
method   path       body / answer
=======  =========  ====================================================
POST     /knn       ``{"tokens": [...], "k": 10}`` → matches + stats
POST     /range     ``{"tokens": [...], "threshold": 0.7}`` → matches
POST     /join      ``{"threshold": 0.8}`` → pairs + stats
POST     /insert    ``{"tokens": [...]}`` → index/group/shard placed
POST     /remove    ``{"index": 17}`` → the tombstoned record
GET      /healthz   liveness/readiness (``200 ok`` / ``503 loading``)
GET      /stats     uptime, shards, served counts, batch histogram,
                    p50/p99 latency
=======  =========  ====================================================

Writes are admitted while serving: they ride the same micro-batch queue
as queries (applied first within their batch, engine held exclusively)
and land in the loaded generation's write-ahead ``delta.log`` when the
index came from a save — so they survive a restart.  A write against a
lazily loaded (read-only) index answers 400.

Query bodies may also carry ``verify`` / ``parallel`` overrides — the
same canonical kwargs the Python API takes (:class:`repro.api.QueryRequest`
validates both identically) — plus the robustness knobs ``timeout_ms``
(per-request deadline, anchored at admission) and ``degraded``
(``"strict"`` / ``"partial"``).  Responses are JSON; errors are JSON too
(``{"error": ...}``) with conventional status codes: 400 malformed
request, 404 unknown path, 405 wrong method, 413 oversized body, 503
not-ready or overloaded (with ``Retry-After``), 504 deadline exceeded.
See ``docs/operations.md`` for deadlines, degraded mode, and the
graceful SIGTERM drain.

The server binds *before* the index is loaded: ``/healthz`` answers
``503 {"status": "loading"}`` until the engine is up, so orchestrators
can poll readiness, and query endpoints shed load instead of hanging.
See ``docs/serving.md`` for the endpoint reference and deployment notes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from types import TracebackType
from typing import Callable

from repro import __version__
from repro.api import Engine, QueryRequest, WriteRequest, load
from repro.core.resilience import DeadlineExceeded
from repro.serve.service import QueryService, ServiceOverloaded

__all__ = ["ReproServer", "serve", "MAX_BODY_BYTES"]

#: Largest accepted request body — queries are token lists, not uploads.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request head (request line + headers).
_MAX_HEAD_BYTES = 16 * 1024

#: Idle keep-alive connections are dropped after this many seconds.
_KEEPALIVE_TIMEOUT = 75.0

_QUERY_ROUTES = {"/knn": "knn", "/range": "range", "/join": "join"}
_WRITE_ROUTES = {"/insert": "insert", "/remove": "remove"}


class _HttpError(Exception):
    """An error with a definite HTTP status, raised during request handling."""

    def __init__(self, status: int, message: str, headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _response_bytes(status: int, payload: dict, extra_headers: dict | None = None) -> bytes:
    body = json.dumps(payload).encode()
    headers = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Server: repro/{__version__}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


class ReproServer:
    """One saved index behind an asyncio HTTP query service.

    The server owns the whole lifecycle: bind the socket, load the index
    in a worker thread (readiness is ``/healthz``), run a
    :class:`~repro.serve.service.QueryService` over it, and tear both
    down cleanly.  Construct, then either ``await start()`` /
    ``await serve_forever()`` / ``await stop()`` or use
    :func:`serve` from synchronous code (the CLI does).

    Parameters mirror the ``repro serve`` flags; ``port=0`` binds an
    ephemeral port (see :attr:`port` after :meth:`start` — the
    integration tests rely on this).
    """

    def __init__(
        self,
        directory: str,
        host: str = "127.0.0.1",
        port: int = 8722,
        mode: str = "memory",
        parallel: str | None = None,
        verify: str | None = None,
        batch_window_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 256,
        concurrency: int = 1,
        shard_workers: int | None = None,
        default_timeout_ms: int | None = None,
        max_timeout_ms: int | None = None,
        drain_seconds: float = 5.0,
        retry_attempts: int | None = None,
        breaker_threshold: int | None = None,
        breaker_reset_seconds: float | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.directory = directory
        self.host = host
        self.port = port
        self.mode = mode
        self.parallel = parallel
        self.verify = verify
        self.drain_seconds = drain_seconds
        self._service_options = {
            "batch_window_ms": batch_window_ms,
            "max_batch": max_batch,
            "max_queue": max_queue,
            "concurrency": concurrency,
            "shard_workers": shard_workers,
            "default_timeout_ms": default_timeout_ms,
            "max_timeout_ms": max_timeout_ms,
        }
        self._resilience_options = {
            "retry_attempts": retry_attempts,
            "breaker_threshold": breaker_threshold,
            "breaker_reset_seconds": breaker_reset_seconds,
        }
        self._preloaded = engine
        self.engine: Engine | None = engine
        self.service: QueryService | None = None
        self._server: asyncio.base_events.Server | None = None
        self._load_task: asyncio.Task | None = None
        self._load_error: Exception | None = None
        self._connections: set[asyncio.Task] = set()
        self._started_at = time.time()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind the socket, then load the index in the background."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        self._load_task = asyncio.get_running_loop().create_task(self._bring_up())
        return self

    def _apply_resilience(self, engine: Engine) -> None:
        """Apply supervision knobs to a sharded engine (no-ops otherwise)."""
        attempts = self._resilience_options["retry_attempts"]
        if attempts is not None and hasattr(engine, "retry_policy"):
            from dataclasses import replace

            engine.retry_policy = replace(engine.retry_policy, attempts=attempts)
        threshold = self._resilience_options["breaker_threshold"]
        if threshold is not None and hasattr(engine, "breaker_threshold"):
            engine.breaker_threshold = threshold
        reset = self._resilience_options["breaker_reset_seconds"]
        if reset is not None and hasattr(engine, "breaker_reset_seconds"):
            engine.breaker_reset_seconds = reset

    async def _bring_up(self) -> None:
        try:
            if self._preloaded is not None:
                engine = self._preloaded
            else:
                engine = await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: load(
                        self.directory,
                        mode=self.mode,
                        parallel=self.parallel,
                        verify=self.verify,
                    ),
                )
            self._apply_resilience(engine)
            service = QueryService(engine, **self._service_options)
            await service.start()
            self.engine = engine
            self.service = service
        except Exception as error:  # noqa: BLE001 - surfaced via /healthz + ready()
            self._load_error = error

    async def ready(self) -> None:
        """Wait until the index is loaded (re-raises a failed load)."""
        if self._load_task is not None:
            await asyncio.shield(self._load_task)
        if self._load_error is not None:
            raise self._load_error

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, drain_seconds: float | None = None) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, then stop.

        The listening socket closes first, so new connections are
        refused; requests already admitted get up to ``drain_seconds``
        (default: the server's ``drain_seconds``) to finish before
        :meth:`stop` fails whatever is left.  ``repro serve`` calls this
        on SIGTERM/SIGINT and exits 0.
        """
        budget = self.drain_seconds if drain_seconds is None else drain_seconds
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        service = self.service
        if service is not None:
            deadline = time.monotonic() + max(budget, 0.0)
            while time.monotonic() < deadline:
                if service.queue_depth == 0 and not service._batch_tasks:
                    break
                await asyncio.sleep(0.01)
        await self.stop()

    async def stop(self) -> None:
        if self._load_task is not None and not self._load_task.done():
            self._load_task.cancel()
            try:
                await self._load_task
            except asyncio.CancelledError:
                pass
        if self.service is not None:
            await self.service.stop()
        if self.engine is not None and hasattr(self.engine, "close"):
            self.engine.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections would otherwise hold the loop open.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        await self.stop()
        return False

    # -- request handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_requests(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancels open keep-alive connections; finish
            # cleanly so asyncio does not log the cancellation as an error.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _serve_requests(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), timeout=_KEEPALIVE_TIMEOUT
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                except asyncio.LimitOverrunError:
                    writer.write(_response_bytes(413, {"error": "request head too large"}))
                    await writer.drain()
                    break
                if len(head) > _MAX_HEAD_BYTES:
                    writer.write(_response_bytes(413, {"error": "request head too large"}))
                    await writer.drain()
                    break
                headers: dict = {}
                try:
                    method, path, headers = _parse_head(head)
                    body = await _read_body(reader, headers)
                    status, payload, extra = await self._route(method, path, body)
                except _HttpError as error:
                    status, payload, extra = (
                        error.status,
                        {"error": str(error)},
                        error.headers,
                    )
                writer.write(_response_bytes(status, payload, extra))
                await writer.drain()
                if headers_say_close(headers):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # the peer went away mid-request; _handle_connection closes

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, dict]:
        path = path.split("?", 1)[0]
        if path in _QUERY_ROUTES:
            if method != "POST":
                return 405, {"error": f"{path} takes POST"}, {"Allow": "POST"}
            return await self._handle_query(_QUERY_ROUTES[path], body)
        if path in _WRITE_ROUTES:
            if method != "POST":
                return 405, {"error": f"{path} takes POST"}, {"Allow": "POST"}
            return await self._handle_write(_WRITE_ROUTES[path], body)
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "/healthz takes GET"}, {"Allow": "GET"}
            return self._handle_healthz()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "/stats takes GET"}, {"Allow": "GET"}
            return self._handle_stats()
        return 404, {"error": f"unknown path {path!r}"}, {}

    async def _handle_query(self, kind: str, body: bytes) -> tuple[int, dict, dict]:
        service = self.service
        if service is None:
            if self._load_error is not None:
                return 503, {"error": f"index failed to load: {self._load_error}"}, {}
            return 503, {"error": "index is still loading"}, {"Retry-After": "1"}
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}, {}
        try:
            request = QueryRequest.from_payload(kind, payload)
        except ValueError as error:
            return 400, {"error": str(error)}, {}
        try:
            result = await service.submit(request)
        except ServiceOverloaded as error:
            return 503, {"error": str(error)}, {"Retry-After": str(error.retry_after)}
        except DeadlineExceeded as error:
            return 504, {"error": str(error)}, {}
        except ConnectionError as error:
            return 503, {"error": str(error)}, {}
        except Exception as error:  # noqa: BLE001 - engine bug, not a client error
            return 500, {"error": f"query failed: {error}"}, {}
        return 200, result.to_payload(), {}

    async def _handle_write(self, kind: str, body: bytes) -> tuple[int, dict, dict]:
        service = self.service
        if service is None:
            if self._load_error is not None:
                return 503, {"error": f"index failed to load: {self._load_error}"}, {}
            return 503, {"error": "index is still loading"}, {"Retry-After": "1"}
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}, {}
        try:
            request = WriteRequest.from_payload(kind, payload)
        except ValueError as error:
            return 400, {"error": str(error)}, {}
        try:
            result = await service.submit(request)
        except ServiceOverloaded as error:
            return 503, {"error": str(error)}, {"Retry-After": str(error.retry_after)}
        except DeadlineExceeded as error:
            return 504, {"error": str(error)}, {}
        except ConnectionError as error:
            return 503, {"error": str(error)}, {}
        except ValueError as error:
            # A semantically bad write (unknown record, read-only lazy
            # index): the client's fault, not the server's.
            return 400, {"error": str(error)}, {}
        except Exception as error:  # noqa: BLE001 - engine bug, not a client error
            return 500, {"error": f"{kind} failed: {error}"}, {}
        return 200, result.to_payload(), {}

    def _handle_healthz(self) -> tuple[int, dict, dict]:
        if self.service is not None:
            return 200, {"status": "ok", "queue_depth": self.service.queue_depth}, {}
        if self._load_error is not None:
            return 503, {"status": "failed", "error": str(self._load_error)}, {}
        return 503, {"status": "loading"}, {"Retry-After": "1"}

    def _handle_stats(self) -> tuple[int, dict, dict]:
        base = {
            "version": __version__,
            "uptime_seconds": time.time() - self._started_at,
            "index": str(self.directory),
            "mode": self.mode,
            "ready": self.service is not None,
        }
        if self.engine is not None:
            base["num_records"] = len(self.engine.dataset)
            base["num_groups"] = self.engine.num_groups
            base["num_shards"] = getattr(self.engine, "num_shards", 1)
        if self.service is not None:
            service_stats = self.service.stats.snapshot()
            service_stats["queue_depth"] = self.service.queue_depth
            service_stats["batch_window_ms"] = self.service.batch_window * 1000.0
            service_stats["max_batch"] = self.service.max_batch
            service_stats["max_queue"] = self.service.max_queue
            service_stats["default_timeout_ms"] = self.service.default_timeout_ms
            service_stats["max_timeout_ms"] = self.service.max_timeout_ms
            base["service"] = service_stats
        return 200, base, {}


def _parse_head(head: bytes) -> tuple[str, str, dict]:
    """Parse the request line + headers; raise :class:`_HttpError` on junk."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as error:  # pragma: no cover - latin-1 never fails
        raise _HttpError(400, f"undecodable request head: {error}") from error
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


async def _read_body(reader: asyncio.StreamReader, headers: dict) -> bytes:
    if "transfer-encoding" in headers:
        raise _HttpError(400, "chunked request bodies are not supported")
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError as error:
        raise _HttpError(400, f"bad Content-Length {length_header!r}") from error
    if length < 0:
        raise _HttpError(400, f"bad Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise _HttpError(400, "request body shorter than Content-Length") from error


def headers_say_close(headers: dict) -> bool:
    """HTTP/1.1 keep-alive by default; close only when asked."""
    return headers.get("connection", "").lower() == "close"


def serve(
    directory: str,
    announce: Callable[[str], None] | None = None,
    **options: object,
) -> None:
    """Run a server until interrupted (the ``repro serve`` entry point).

    ``options`` are :class:`ReproServer` keyword arguments.  ``announce``
    (when given) receives one human-readable line once the socket is
    bound — the CLI prints it.

    SIGTERM and SIGINT trigger a graceful drain (stop accepting, finish
    in-flight requests within the server's ``drain_seconds``) and a
    clean return — the process exits 0, so orchestrators see an ordinary
    shutdown, not a crash.
    """

    async def run() -> None:
        # Signal handlers go in *before* the socket is announced: an
        # orchestrator that reacts to the announcement by sending SIGTERM
        # must hit the drain path, never the default (killing) disposition.
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        handled: list[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                continue  # platforms without loop signal handlers
            handled.append(signum)
        server = ReproServer(directory, **options)
        await server.start()
        if announce is not None:
            announce(
                f"repro serve: listening on http://{server.host}:{server.port} "
                f"(index {directory}, mode {server.mode}, loading in background)"
            )
        forever = asyncio.ensure_future(server.serve_forever())
        stopper = asyncio.ensure_future(shutdown.wait())
        try:
            await asyncio.wait({forever, stopper}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            forever.cancel()
            stopper.cancel()
            await asyncio.gather(forever, stopper, return_exceptions=True)
            for signum in handled:
                loop.remove_signal_handler(signum)
            await server.drain()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass


async def wait_ready(
    host: str, port: int, timeout: float = 30.0, interval: float = 0.05
) -> None:
    """Poll ``/healthz`` until the server reports ready (test/bench helper)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            status, payload = await request_json(host, port, "GET", "/healthz")
            if status == 200 and payload.get("status") == "ok":
                return
        except OSError:
            pass
        if time.monotonic() > deadline:
            raise TimeoutError(f"server at {host}:{port} not ready after {timeout}s")
        await asyncio.sleep(interval)


async def request_json(
    host: str, port: int, method: str, path: str, payload: dict | None = None
) -> tuple[int, dict]:
    """One-shot JSON request against a running server (test/bench helper)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        status, body = await _roundtrip(reader, writer, method, path, payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return status, body


async def _roundtrip(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: dict | None,
) -> tuple[int, dict]:
    """Send one request on an open connection, read one JSON response.

    Exposed so load generators can keep a connection open and pipeline
    request after request (see ``benchmarks/bench_serve.py``).
    """
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: bench\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    status_line = await reader.readline()
    parts = status_line.decode("latin-1").split(" ", 2)
    status = int(parts[1])
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    raw = await reader.readexactly(content_length) if content_length else b""
    return status, json.loads(raw) if raw else {}
