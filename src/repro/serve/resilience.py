"""Serving-side surface of the resilience primitives.

The primitives themselves live in :mod:`repro.core.resilience` —
``repro.distributed`` uses them too and must not import the serving
layer — but operators configuring ``repro serve`` reach for them from
here:

* :class:`Deadline` / :class:`DeadlineExceeded` — per-request budgets;
  the service anchors one at admission from ``timeout_ms`` and the HTTP
  layer maps an expired one to ``504 Gateway Timeout``.
* :class:`RetryPolicy` — bounded exponential backoff (with jitter) for
  process-mode shard tasks (``--retry-attempts``).
* :class:`CircuitBreaker` — per-shard failure tracking; an open breaker
  routes the shard's work to in-process serial execution until a timed
  half-open probe succeeds (``--breaker-threshold`` /
  ``--breaker-reset-seconds``).

See ``docs/operations.md`` for how the pieces compose under failure.
"""

from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)

__all__ = ["CircuitBreaker", "Deadline", "DeadlineExceeded", "RetryPolicy"]
