"""The query service core: admission, micro-batching, execution, stats.

This is the engine-facing half of ``repro serve`` (the HTTP half lives in
:mod:`repro.serve.http`).  Concurrent requests do not each pay their own
trip through the engine; they flow through a :class:`QueryService`:

1. **Admission.**  A request is accepted only while the number of
   admitted-but-unanswered requests is below ``max_queue``; beyond that
   :meth:`QueryService.submit` raises :class:`ServiceOverloaded` and the
   HTTP layer answers ``503`` with a ``Retry-After`` hint — the service
   degrades by shedding load, never by growing an unbounded backlog.
2. **Micro-batching.**  Admitted requests sit in an asyncio queue for at
   most ``batch_window_ms`` (or until ``max_batch`` of them are waiting;
   with a window of 0 the batcher still drains whatever arrived while
   the previous batch was executing — classic adaptive batching).  The
   batch is handed to :func:`repro.api.execute_batch`, which coalesces
   compatible kNN/range requests into the engine's batched BLAS kernels.
3. **Execution.**  Engine work is CPU-bound, so batches run on a small
   thread pool (``concurrency`` batches in flight at most, default 1 —
   numpy releases the GIL inside BLAS, and the engine's own
   thread/process pools parallelize *within* a batch across shards;
   ``shard_workers`` caps that per-shard fan-out).
4. **Accounting.**  Every answered request feeds the service stats:
   queries served per kind, a batch-size histogram, and a latency
   reservoir from which ``/stats`` reports p50/p99.

Results are bit-identical to calling the engine directly: batching only
changes *when* a request is executed, never what it computes (the
server integration tests assert this request-for-request).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Iterator

from repro.api import (
    Engine,
    QueryRequest,
    QueryResult,
    WriteRequest,
    WriteResult,
    apply_write,
    execute_batch,
)
from repro.core.resilience import Deadline, DeadlineExceeded

__all__ = ["QueryService", "ServiceOverloaded", "ServiceStats"]

#: Most recent per-request latencies (seconds) kept for the quantile
#: report; a bounded reservoir so a long-lived server's memory stays flat.
_LATENCY_RESERVOIR = 4096


class ServiceOverloaded(Exception):
    """The admission queue is full; the caller should retry later.

    ``retry_after`` is the server's hint (in seconds, integral) for the
    HTTP ``Retry-After`` header.
    """

    def __init__(self, depth: int, max_queue: int, retry_after: int = 1) -> None:
        super().__init__(
            f"query queue is full ({depth} in flight, bound {max_queue}); "
            "retry later"
        )
        self.retry_after = retry_after


@dataclass
class ServiceStats:
    """Counters a :class:`QueryService` maintains while serving.

    ``batch_sizes`` maps dispatched batch size → number of batches of
    that size; ``latencies`` holds the most recent per-request wall
    latencies in seconds (admission to answer, execution included).
    The reservoir records **served requests only** — rejected (503) and
    timed-out (504) requests never enter it, so p50/p99 describe answers
    clients actually received.  ``late_results`` counts answers the
    engine finished computing after the request had already timed out
    (wasted work, a sizing signal for ``timeout_ms`` vs batch cost).
    """

    started_at: float = field(default_factory=time.time)
    queries_served: int = 0
    queries_rejected: int = 0
    queries_failed: int = 0
    queries_timed_out: int = 0
    late_results: int = 0
    batches_dispatched: int = 0
    served_by_kind: dict = field(default_factory=dict)
    timed_out_by_kind: dict = field(default_factory=dict)
    batch_sizes: dict = field(default_factory=dict)
    latencies: list = field(default_factory=list)

    def record_batch(self, size: int) -> None:
        self.batches_dispatched += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def record_served(self, kind: str, latency: float) -> None:
        self.queries_served += 1
        self.served_by_kind[kind] = self.served_by_kind.get(kind, 0) + 1
        self.latencies.append(latency)
        if len(self.latencies) > _LATENCY_RESERVOIR:
            del self.latencies[: -_LATENCY_RESERVOIR]

    def record_timeout(self, kind: str) -> None:
        self.queries_timed_out += 1
        self.timed_out_by_kind[kind] = self.timed_out_by_kind.get(kind, 0) + 1

    def latency_quantiles(self) -> dict:
        """p50/p99 (seconds) over the reservoir; zeros before any traffic."""
        if not self.latencies:
            return {"p50": 0.0, "p99": 0.0}
        ordered = sorted(self.latencies)
        last = len(ordered) - 1
        return {
            "p50": ordered[int(last * 0.50)],
            "p99": ordered[int(last * 0.99)],
        }

    def snapshot(self) -> dict:
        """The JSON-safe dict ``/stats`` returns."""
        quantiles = self.latency_quantiles()
        return {
            "uptime_seconds": time.time() - self.started_at,
            "queries_served": self.queries_served,
            "queries_rejected": self.queries_rejected,
            "queries_failed": self.queries_failed,
            "queries_timed_out": self.queries_timed_out,
            "late_results": self.late_results,
            "served_by_kind": dict(self.served_by_kind),
            "timed_out_by_kind": dict(self.timed_out_by_kind),
            "batches_dispatched": self.batches_dispatched,
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.batch_sizes.items())
            },
            "mean_batch_size": (
                self.queries_served / self.batches_dispatched
                if self.batches_dispatched
                else 0.0
            ),
            "latency_ms": {
                "p50": quantiles["p50"] * 1000.0,
                "p99": quantiles["p99"] * 1000.0,
            },
        }


class _EngineGate:
    """A reader-writer gate over one engine for ``concurrency > 1``.

    Query batches hold the gate *shared* (they only read engine state, so
    any number may run at once); write batches hold it *exclusive* (an
    insert grows the dataset and a group's membership mid-scan would be a
    torn read).  Writers are preferred: once one is waiting, new readers
    queue behind it, so a write cannot starve under a steady query load.
    With the default ``concurrency=1`` the dispatcher never overlaps
    batches and the gate is uncontended.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextlib.contextmanager
    def shared(self) -> Iterator[None]:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextlib.contextmanager
    def exclusive(self) -> Iterator[None]:
        with self._condition:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


class _Pending:
    """One admitted request awaiting its answer."""

    __slots__ = ("request", "future", "admitted_at", "deadline", "timer")

    def __init__(
        self,
        request: QueryRequest,
        future: asyncio.Future,
        deadline: Deadline | None = None,
    ) -> None:
        self.request = request
        self.future = future
        self.admitted_at = time.perf_counter()
        self.deadline = deadline
        self.timer: asyncio.TimerHandle | None = None


class QueryService:
    """Admission + micro-batching front of one loaded engine.

    Parameters
    ----------
    engine : LES3 or ShardedLES3
        The loaded engine (any kind — the unified query API hides the
        difference).
    batch_window_ms : float, default 2.0
        How long the first request of a batch waits for company before
        the batch is dispatched.  0 disables the *timed* wait; requests
        that queued while the previous batch was executing still
        coalesce (set ``max_batch=1`` for strict one-request-per-call).
    max_batch : int, default 64
        Largest batch ever dispatched to the engine.
    max_queue : int, default 256
        Admission bound: maximum admitted-but-unanswered requests.
        Beyond it :meth:`submit` raises :class:`ServiceOverloaded`.
    concurrency : int, default 1
        Batches allowed in flight on the executor simultaneously.
    shard_workers : int, optional
        Per-shard fan-out cap for the engine's own thread/process pools
        (``engine.query_workers``); None keeps the engine default
        (``min(num_shards, cpu_count)``).
    default_timeout_ms : int, optional
        Deadline applied to requests that do not carry their own
        ``timeout_ms``.  None (the default) means no implicit deadline.
    max_timeout_ms : int, optional
        Server-side cap: a request asking for a longer budget is clamped
        to this.  None means clients may ask for any budget.

    Deadlines are anchored at **admission**, so time spent waiting in
    the micro-batch queue counts against the budget.  An expired request
    fails with :class:`~repro.core.resilience.DeadlineExceeded` (the
    HTTP layer answers 504) and is counted in ``queries_timed_out`` —
    never in the latency reservoir.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        engine: Engine,
        batch_window_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: int = 256,
        concurrency: int = 1,
        shard_workers: int | None = None,
        default_timeout_ms: int | None = None,
        max_timeout_ms: int | None = None,
    ) -> None:
        if batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be positive, got {concurrency}")
        for name, value in (
            ("default_timeout_ms", default_timeout_ms),
            ("max_timeout_ms", max_timeout_ms),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        self.engine = engine
        self.batch_window = batch_window_ms / 1000.0
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.concurrency = concurrency
        self.default_timeout_ms = default_timeout_ms
        self.max_timeout_ms = max_timeout_ms
        if shard_workers is not None:
            engine.query_workers = shard_workers
        self.stats = ServiceStats()
        self._gate = _EngineGate()
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._in_flight = 0
        self._dispatcher: asyncio.Task | None = None
        self._batch_slots = asyncio.Semaphore(concurrency)
        self._batch_tasks: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "QueryService":
        """Start the dispatcher loop (idempotent)."""
        if self._dispatcher is None:
            self.stats.started_at = time.time()
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        return self

    async def stop(self) -> None:
        """Drain nothing, cancel the dispatcher, fail unanswered requests."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in list(self._batch_tasks):
            task.cancel()
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(
                    ConnectionError("query service is shutting down")
                )

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        await self.stop()
        return False

    @property
    def queue_depth(self) -> int:
        """Admitted-but-unanswered requests right now."""
        return self._in_flight

    # -- admission ---------------------------------------------------------

    def _effective_timeout_ms(
        self, request: QueryRequest | WriteRequest
    ) -> int | None:
        """The request's deadline budget after the server's policy."""
        # Writes carry no per-request budget; the service default (and
        # cap) still applies, bounding their time in the queue.
        timeout_ms = getattr(request, "timeout_ms", None)
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        if timeout_ms is not None and self.max_timeout_ms is not None:
            timeout_ms = min(timeout_ms, self.max_timeout_ms)
        return timeout_ms

    def _expire(self, pending: _Pending, timeout_ms: int) -> None:
        """Timer callback: the request ran out of budget before answering."""
        if pending.future.done():
            return
        self.stats.record_timeout(pending.request.kind)
        pending.future.set_exception(
            DeadlineExceeded(
                f"{pending.request.kind} request exceeded its {timeout_ms}ms "
                "budget (queueing + execution)"
            )
        )

    async def submit(
        self, request: QueryRequest | WriteRequest
    ) -> QueryResult | WriteResult:
        """Admit one request, await its (possibly batched) answer.

        Writes (:class:`~repro.api.WriteRequest`) share the admission
        queue and the micro-batches with queries; within a batch all
        writes are applied first (engine held exclusively), in admission
        order, so queries batched behind a write observe it.

        Raises
        ------
        ServiceOverloaded
            When the admission bound is hit; the request was *not*
            enqueued.
        DeadlineExceeded
            When the request's deadline (its ``timeout_ms``, the
            service default, or the server cap — whichever is tightest)
            expired before an answer was ready.
        """
        if self._closed or self._dispatcher is None:
            raise ConnectionError("query service is not running")
        if self._in_flight >= self.max_queue:
            self.stats.queries_rejected += 1
            raise ServiceOverloaded(self._in_flight, self.max_queue)
        self._in_flight += 1
        loop = asyncio.get_running_loop()
        timeout_ms = self._effective_timeout_ms(request)
        pending = _Pending(
            request, loop.create_future(), Deadline.from_timeout_ms(timeout_ms)
        )
        if timeout_ms is not None:
            pending.timer = loop.call_later(
                timeout_ms / 1000.0, self._expire, pending, timeout_ms
            )
        self._queue.put_nowait(pending)
        try:
            return await pending.future
        finally:
            if pending.timer is not None:
                pending.timer.cancel()
            self._in_flight -= 1

    # -- batching ----------------------------------------------------------

    async def _collect_batch(self) -> list[_Pending]:
        """Block for the first request, then gather company for it.

        Whatever is already queued is drained immediately (up to
        ``max_batch``); only then does the timed window wait for more.
        Under load the queue is never empty when a batch closes, so the
        window adds no latency — it only matters at low arrival rates.
        """
        batch = [await self._queue.get()]
        while len(batch) < self.max_batch and not self._queue.empty():
            batch.append(self._queue.get_nowait())
        if self.batch_window > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout=remaining)
                    )
                except asyncio.TimeoutError:
                    break
        return batch

    async def _dispatch_loop(self) -> None:
        while True:
            batch = await self._collect_batch()
            await self._batch_slots.acquire()
            task = asyncio.get_running_loop().create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    @staticmethod
    def _batch_deadline(batch: list[_Pending]) -> Deadline | None:
        """The engine-side deadline for a batch: its most patient member.

        A single deadline bounds the whole engine call, so the batch
        must be allowed to run as long as its longest-budget request;
        shorter-budget members are failed individually by their timers.
        One member without a deadline means the batch runs unbounded.
        """
        deadlines = [pending.deadline for pending in batch]
        if any(deadline is None for deadline in deadlines):
            return None
        return max(deadlines, key=lambda deadline: deadline.expires_at)

    def _apply_writes(self, requests: list[WriteRequest]) -> list:
        """Apply admitted writes in arrival order, engine held exclusively.

        Failures are captured per write (a bad remove must not fail the
        insert admitted after it), so the returned list holds a
        :class:`~repro.api.WriteResult` or the exception, positionally.
        """
        outcomes: list[WriteResult | Exception] = []
        with self._gate.exclusive():
            for request in requests:
                try:
                    outcomes.append(apply_write(self.engine, request))
                except Exception as error:  # noqa: BLE001 - forwarded per request
                    outcomes.append(error)
        return outcomes

    def _execute_queries(
        self, requests: list[QueryRequest], deadline: Deadline | None
    ) -> list[QueryResult]:
        with self._gate.shared():
            return execute_batch(self.engine, requests, deadline)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        try:
            self.stats.record_batch(len(batch))
            loop = asyncio.get_running_loop()
            # Writes first, in admission order: queries admitted into the
            # same batch observe every write that was admitted before them.
            writes = [p for p in batch if isinstance(p.request, WriteRequest)]
            reads = [p for p in batch if not isinstance(p.request, WriteRequest)]
            if writes:
                outcomes = await loop.run_in_executor(
                    None, self._apply_writes, [p.request for p in writes]
                )
                finished = time.perf_counter()
                for pending, outcome in zip(writes, outcomes):
                    if pending.future.done():
                        # The client's deadline expired while the write
                        # waited its turn — but the op *was* applied (a 504
                        # on a write means unconfirmed, not undone).
                        self.stats.late_results += 1
                        continue
                    if isinstance(outcome, Exception):
                        self.stats.queries_failed += 1
                        pending.future.set_exception(outcome)
                    else:
                        self.stats.record_served(
                            pending.request.kind, finished - pending.admitted_at
                        )
                        pending.future.set_result(outcome)
            if not reads:
                return
            requests = [pending.request for pending in reads]
            deadline = self._batch_deadline(reads)
            try:
                results = await loop.run_in_executor(
                    None, self._execute_queries, requests, deadline
                )
            except Exception as error:  # noqa: BLE001 - forwarded per request
                timed_out = isinstance(error, DeadlineExceeded)
                for pending in reads:
                    if pending.future.done():
                        continue
                    if timed_out:
                        self.stats.record_timeout(pending.request.kind)
                    else:
                        self.stats.queries_failed += 1
                    pending.future.set_exception(error)
                return
            finished = time.perf_counter()
            for pending, result in zip(reads, results):
                if pending.future.done():
                    # Timed out (or shed) while we were computing: the
                    # answer is wasted work, not a served request — keep
                    # it out of the latency reservoir.
                    self.stats.late_results += 1
                    continue
                self.stats.record_served(
                    pending.request.kind, finished - pending.admitted_at
                )
                pending.future.set_result(result)
        finally:
            self._batch_slots.release()
