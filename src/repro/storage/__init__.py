"""Simulated storage layer for the disk-based evaluation (Figure 13)."""

from repro.storage.disk import (
    HDD_5400RPM,
    SSD_SATA,
    DiskProfile,
    DiskStats,
    SimulatedDisk,
)
from repro.storage.layout import (
    DiskBruteForce,
    DiskDualTrans,
    DiskInvertedIndex,
    DiskLES3,
    record_bytes,
)

__all__ = [
    "HDD_5400RPM",
    "SSD_SATA",
    "DiskProfile",
    "DiskStats",
    "SimulatedDisk",
    "DiskBruteForce",
    "DiskDualTrans",
    "DiskInvertedIndex",
    "DiskLES3",
    "record_bytes",
]
