"""Storage layer: the real binary columnar format and the simulated disk.

Two halves live here:

* :mod:`repro.storage.columnar_file` — the *real* out-of-core path: the
  binary columnar ``dataset.bin`` format
  (:class:`ColumnarFileWriter`/:class:`ColumnarFileReader`) and the
  ``np.memmap``-backed :class:`MappedColumnarView` behind
  ``load_engine(..., mode="mmap")`` / ``load_sharded(..., mode="mmap"|"lazy")``.
* :mod:`repro.storage.disk` / :mod:`repro.storage.layout` — the
  *simulated* disk cost model for the paper's Figure 13 evaluation.
"""

from repro.storage.columnar_file import (
    COLUMNAR_FORMAT_VERSION,
    COLUMNAR_MAGIC,
    ColumnarFileReader,
    ColumnarFileWriter,
    MappedColumnarView,
)
from repro.storage.disk import (
    HDD_5400RPM,
    SSD_SATA,
    DiskProfile,
    DiskStats,
    SimulatedDisk,
)
from repro.storage.layout import (
    DiskBruteForce,
    DiskDualTrans,
    DiskInvertedIndex,
    DiskLES3,
    record_bytes,
)

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "COLUMNAR_MAGIC",
    "ColumnarFileReader",
    "ColumnarFileWriter",
    "MappedColumnarView",
    "HDD_5400RPM",
    "SSD_SATA",
    "DiskProfile",
    "DiskStats",
    "SimulatedDisk",
    "DiskBruteForce",
    "DiskDualTrans",
    "DiskInvertedIndex",
    "DiskLES3",
    "record_bytes",
]
