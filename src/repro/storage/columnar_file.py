"""Binary columnar on-disk format and the mmap-backed dataset view.

The text ``dataset.txt`` is the interchange format — human-auditable,
compatible with the public set-similarity benchmarks — but loading it
materializes every record as Python objects, which caps the database
size at available RAM.  This module adds the *out-of-core* path the
paper's disk experiments assume (Section 7.6): the dataset's CSR arrays
(the exact :class:`~repro.core.columnar.ColumnarView` layout every query
path already verifies against) are written once as a binary file,
``dataset.bin``, and mapped back with ``np.memmap`` so queries touch
only the pages they actually read.

The file is a sequence of little-endian *segments* behind a small JSON
header (see ``docs/formats.md`` for the byte-level reference):

====================  ==========  ===========================================
segment               dtype       contents
====================  ==========  ===========================================
``tokens``            ``<i8``     distinct token ids of every record, CSR-flat
``counts``            ``<i8``     per-token multiplicities, parallel to tokens
``offsets``           ``<i8``     record boundaries (``num_records + 1``)
``sizes``             ``<i8``     full multiset size ``|S|`` per record
``universe_blob``     ``|u1``     UTF-8 token strings, concatenated in id order
``universe_offsets``  ``<i8``     token-string boundaries (``universe + 1``)
====================  ==========  ===========================================

Every segment carries a SHA-256 digest in the header.  Eager
(``mode="memory"``) reads verify digests as they go; mapped
(``mode="mmap"``) opens verify the structural claims that are cheap
without touching the data — magic, header JSON, segment bounds against
the real file size, offset monotonicity — and leave the token payload
digests to :meth:`ColumnarFileReader.verify` (what ``repro validate``
runs).  Every integrity failure raises
:class:`~repro.core.persistence.PersistenceError`.

Token strings use the same normal form as ``dataset.txt`` (``str(token)``
per token), so a binary load and a text load of the same save answer
queries identically.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence as SequenceABC
from pathlib import Path
from typing import Iterator, overload

import numpy as np

from repro.core.cache import LRUCache
from repro.core.columnar import ColumnarView, _grow as _csr_grow
from repro.core.dataset import Dataset
from repro.core.persistence import PersistenceError
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse
from repro.testing.faults import fault_point

__all__ = [
    "COLUMNAR_MAGIC",
    "COLUMNAR_FORMAT_VERSION",
    "ColumnarFileWriter",
    "ColumnarFileReader",
    "MappedColumnarView",
    "LazyRecords",
]

#: First eight bytes of every binary columnar file.
COLUMNAR_MAGIC = b"LES3BIN\x01"

#: Version of the segment layout written by :class:`ColumnarFileWriter`.
COLUMNAR_FORMAT_VERSION = 1

_ALIGN = 64
_SEGMENT_DTYPES = {
    "tokens": "<i8",
    "counts": "<i8",
    "offsets": "<i8",
    "sizes": "<i8",
    "universe_blob": "|u1",
    "universe_offsets": "<i8",
}
_SEGMENT_ORDER = tuple(_SEGMENT_DTYPES)
_READ_MODES = ("mmap", "memory")

# Materialized-record cache size of LazyRecords: bounds the Python-object
# footprint of scalar access patterns without growing with the dataset.
_RECORD_CACHE_CAPACITY = 2048


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _segment_digest(data: bytes | memoryview) -> str:
    return "sha256:" + hashlib.sha256(data).hexdigest()


class ColumnarFileWriter:
    """Writes a dataset's CSR arrays and universe as one binary file.

    Parameters
    ----------
    path : str or Path
        Target file (conventionally ``dataset.bin`` inside an index
        directory); overwritten if present.

    See Also
    --------
    ColumnarFileReader : reads the file back, eagerly or via ``np.memmap``.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import Dataset
    >>> from repro.storage import ColumnarFileWriter, ColumnarFileReader
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c", "c"]])
    >>> path = os.path.join(tempfile.mkdtemp(), "dataset.bin")
    >>> header = ColumnarFileWriter(path).write(dataset)
    >>> header["num_records"], header["nnz"], header["universe_size"]
    (2, 4, 3)
    >>> [segment["name"] for segment in header["segments"]]
    ['tokens', 'counts', 'offsets', 'sizes', 'universe_blob', 'universe_offsets']
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def write(self, dataset: Dataset) -> dict:
        """Write ``dataset`` to :attr:`path`; return the header dictionary.

        The CSR arrays come from the dataset's cached
        :meth:`~repro.core.dataset.Dataset.columnar` view (built and
        synced on demand), so the written layout is exactly what the
        verification kernel computes against in memory.  Universe tokens
        are stored as ``str(token)`` — the same normal form as
        ``dataset.txt`` — in id order, so a reload reconstructs the
        identical id assignment.

        Parameters
        ----------
        dataset : Dataset
            The dataset to serialize; records and universe are captured.

        Returns
        -------
        dict
            The header that was written: ``format_version``,
            ``num_records``, ``nnz``, ``universe_size``, and one
            ``segments`` entry per segment with its dtype, element
            count, relative offset, byte length, and SHA-256 digest.
        """
        view = dataset.columnar()
        num_records = view.num_records
        nnz = view.nnz
        token_strings = [str(token) for token in dataset.universe]
        encoded = [token.encode("utf-8") for token in token_strings]
        blob = b"".join(encoded)
        universe_offsets = np.zeros(len(encoded) + 1, dtype="<i8")
        if encoded:
            np.cumsum([len(part) for part in encoded], out=universe_offsets[1:])
        segments = {
            "tokens": np.ascontiguousarray(view.flat_tokens(), dtype="<i8"),
            "counts": np.ascontiguousarray(view.flat_counts(), dtype="<i8"),
            "offsets": np.ascontiguousarray(view._offsets[: num_records + 1], dtype="<i8"),
            "sizes": np.ascontiguousarray(view._sizes[:num_records], dtype="<i8"),
            "universe_blob": np.frombuffer(blob, dtype="|u1"),
            "universe_offsets": universe_offsets,
        }
        entries = []
        cursor = 0
        for name in _SEGMENT_ORDER:
            data = segments[name]
            cursor = _align(cursor)
            entries.append(
                {
                    "name": name,
                    "dtype": _SEGMENT_DTYPES[name],
                    "count": int(data.size),
                    "offset": cursor,
                    "nbytes": int(data.nbytes),
                    "digest": _segment_digest(data.tobytes()),
                }
            )
            cursor += data.nbytes
        header = {
            "format_version": COLUMNAR_FORMAT_VERSION,
            "num_records": num_records,
            "nnz": nnz,
            "universe_size": len(dataset.universe),
            "segments": entries,
        }
        header_bytes = json.dumps(header).encode("utf-8")
        data_start = _align(len(COLUMNAR_MAGIC) + 8 + len(header_bytes))
        with open(self.path, "wb") as handle:
            handle.write(COLUMNAR_MAGIC)
            handle.write(len(header_bytes).to_bytes(8, "little"))
            handle.write(header_bytes)
            for entry in entries:
                handle.write(b"\x00" * (data_start + entry["offset"] - handle.tell()))
                handle.write(segments[entry["name"]].tobytes())
        return header


class ColumnarFileReader:
    """Reads a binary columnar file, eagerly or through ``np.memmap``.

    Parameters
    ----------
    path : str or Path
        A file written by :class:`ColumnarFileWriter`.
    mode : {"mmap", "memory"}, default ``"mmap"``
        ``"mmap"`` maps segments read-only so pages load on first touch
        (segment digests are *not* checked — run :meth:`verify` for a
        full check); ``"memory"`` reads each segment into RAM and
        verifies its digest immediately.

    Raises
    ------
    PersistenceError
        If the magic or header is malformed, a segment's claimed bounds
        exceed the real file size (a truncated file), structural
        invariants fail (offsets not monotone, counts inconsistent with
        the record/nnz totals), or — in ``"memory"`` mode — a segment
        digest does not match.
    FileNotFoundError
        If the file does not exist.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import Dataset
    >>> from repro.storage import ColumnarFileWriter, ColumnarFileReader
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c", "c"]])
    >>> path = os.path.join(tempfile.mkdtemp(), "dataset.bin")
    >>> _ = ColumnarFileWriter(path).write(dataset)
    >>> reader = ColumnarFileReader(path, mode="memory")
    >>> reader.segment("tokens").tolist()
    [0, 1, 1, 2]
    >>> reader.verify()                     # every digest checks out
    >>> mapped = ColumnarFileReader(path).dataset()
    >>> [len(record) for record in mapped]  # record 1 is a multiset
    [2, 3]
    >>> sorted(str(token) for token in mapped.universe)
    ['a', 'b', 'c']
    """

    def __init__(self, path: str | Path, mode: str = "mmap") -> None:
        if mode not in _READ_MODES:
            raise ValueError(f"unknown read mode {mode!r}; expected one of {_READ_MODES}")
        self.path = Path(path)
        self.mode = mode
        self._segments: dict[str, np.ndarray] = {}
        fault_point("storage.open", str(self.path))
        file_size = self.path.stat().st_size
        with open(self.path, "rb") as handle:
            magic = handle.read(len(COLUMNAR_MAGIC))
            if magic != COLUMNAR_MAGIC:
                raise PersistenceError(
                    f"{self.path} is not a binary columnar file (bad magic {magic!r})"
                )
            header_size = int.from_bytes(handle.read(8), "little")
            if len(COLUMNAR_MAGIC) + 8 + header_size > file_size:
                raise PersistenceError(
                    f"{self.path} is shorter than its header length field claims "
                    f"({header_size} header bytes) — truncated file"
                )
            try:
                self.header = json.loads(handle.read(header_size).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise PersistenceError(
                    f"binary columnar header in {self.path} is not valid JSON "
                    f"(truncated write or corruption): {error}"
                ) from error
        self._data_start = _align(len(COLUMNAR_MAGIC) + 8 + header_size)
        self._check_header(file_size)

    # -- validation --------------------------------------------------------

    def _check_header(self, file_size: int) -> None:
        header = self.header
        if not isinstance(header, dict) or header.get("format_version") != COLUMNAR_FORMAT_VERSION:
            raise PersistenceError(
                f"unsupported binary columnar format version "
                f"{header.get('format_version') if isinstance(header, dict) else header!r} "
                f"in {self.path}"
            )
        entries = header.get("segments")
        if not isinstance(entries, list) or [e.get("name") for e in entries] != list(_SEGMENT_ORDER):
            raise PersistenceError(
                f"binary columnar header in {self.path} must list the segments "
                f"{list(_SEGMENT_ORDER)} in order"
            )
        self._entries: dict[str, dict] = {}
        for entry in entries:
            name = entry["name"]
            dtype = np.dtype(_SEGMENT_DTYPES[name])
            count, nbytes, offset = entry.get("count"), entry.get("nbytes"), entry.get("offset")
            if (
                not all(isinstance(v, int) and v >= 0 for v in (count, nbytes, offset))
                or entry.get("dtype") != _SEGMENT_DTYPES[name]
                or count * dtype.itemsize != nbytes
            ):
                raise PersistenceError(
                    f"segment {name!r} in {self.path} has an inconsistent header entry"
                )
            if self._data_start + offset + nbytes > file_size:
                raise PersistenceError(
                    f"{self.path} is shorter than its header claims: segment {name!r} "
                    f"needs bytes up to {self._data_start + offset + nbytes}, file has "
                    f"{file_size} — truncated file or tampered header"
                )
            self._entries[name] = entry
        self.num_records = header.get("num_records")
        self.nnz = header.get("nnz")
        self.universe_size = header.get("universe_size")
        for field in ("num_records", "nnz", "universe_size"):
            if not isinstance(getattr(self, field), int) or getattr(self, field) < 0:
                raise PersistenceError(
                    f"binary columnar header in {self.path} has invalid {field!r}"
                )
        expected_counts = {
            "tokens": self.nnz,
            "counts": self.nnz,
            "offsets": self.num_records + 1,
            "sizes": self.num_records,
            "universe_offsets": self.universe_size + 1,
        }
        for name, expected in expected_counts.items():
            if self._entries[name]["count"] != expected:
                raise PersistenceError(
                    f"segment {name!r} in {self.path} holds "
                    f"{self._entries[name]['count']} elements, header totals imply "
                    f"{expected} — corrupt header"
                )
        # The offsets array steers every gather; a corrupt one must never
        # drive out-of-bounds slices.  Checking it touches 8 bytes per
        # record — negligible next to the token payload, which mmap mode
        # deliberately leaves unread (see verify()).
        offsets = self.segment("offsets")
        if self.num_records and (
            offsets[0] != 0
            or offsets[-1] != self.nnz
            or bool(np.any(np.diff(offsets) < 0))
        ):
            raise PersistenceError(
                f"segment 'offsets' in {self.path} is not a monotone prefix-sum "
                f"array covering {self.nnz} entries — corrupt file"
            )
        universe_offsets = self.segment("universe_offsets")
        blob_bytes = self._entries["universe_blob"]["nbytes"]
        if self.universe_size and (
            universe_offsets[0] != 0
            or universe_offsets[-1] != blob_bytes
            or bool(np.any(np.diff(universe_offsets) < 0))
        ):
            raise PersistenceError(
                f"segment 'universe_offsets' in {self.path} is not a monotone "
                f"prefix-sum array covering {blob_bytes} blob bytes — corrupt file"
            )

    def verify(self) -> None:
        """Check every segment's SHA-256 digest (reads the whole file).

        ``mode="memory"`` already verified each segment on first read;
        this method is the full-integrity pass for mapped readers — what
        ``repro validate`` runs on directories that carry a
        ``dataset.bin``.

        Raises
        ------
        PersistenceError
            Naming the first segment whose bytes do not match the digest
            recorded in the header.
        """
        with open(self.path, "rb") as handle:
            for name in _SEGMENT_ORDER:
                entry = self._entries[name]
                handle.seek(self._data_start + entry["offset"])
                actual = _segment_digest(handle.read(entry["nbytes"]))
                if actual != entry["digest"]:
                    raise PersistenceError(
                        f"segment {name!r} in {self.path} digest mismatch (header "
                        f"{entry['digest']!r}, file {actual!r}) — corrupt or tampered"
                    )

    # -- segment access ----------------------------------------------------

    def segment(self, name: str) -> np.ndarray:
        """One segment as an array: a read-only memmap, or verified RAM.

        Arrays are cached per reader, so repeated access is free.  In
        ``"memory"`` mode the first access verifies the segment digest.
        """
        if name not in self._entries:
            raise KeyError(f"unknown segment {name!r}")
        if name not in self._segments:
            fault_point("storage.segment", f"{self.path}:{name}")
            entry = self._entries[name]
            dtype = np.dtype(entry["dtype"])
            offset = self._data_start + entry["offset"]
            count = entry["count"]
            if self.mode == "mmap" and count:
                array = np.memmap(self.path, dtype=dtype, mode="r", offset=offset, shape=(count,))
            else:
                with open(self.path, "rb") as handle:
                    handle.seek(offset)
                    raw = handle.read(entry["nbytes"])
                if self.mode == "memory" and _segment_digest(raw) != entry["digest"]:
                    raise PersistenceError(
                        f"segment {name!r} in {self.path} digest mismatch — corrupt "
                        f"or tampered (header records {entry['digest']!r})"
                    )
                array = np.frombuffer(raw, dtype=dtype).copy()
            self._segments[name] = array
        return self._segments[name]

    # -- reconstruction ----------------------------------------------------

    def universe(self) -> TokenUniverse:
        """Decode the stored token strings into a fresh universe.

        Tokens keep their stored order, so the returned universe assigns
        exactly the ids the CSR arrays reference — unlike a text reload,
        tokens that no record uses keep their slots too.
        """
        blob = self.segment("universe_blob").tobytes()
        offsets = self.segment("universe_offsets").tolist()
        try:
            text = blob.decode("utf-8")
            if len(text) == len(blob):
                # Pure-ASCII blob (the overwhelmingly common case): byte
                # offsets are character offsets, so one decode + plain
                # string slicing replaces a per-token bytes round trip.
                tokens = [
                    text[offsets[i]:offsets[i + 1]] for i in range(self.universe_size)
                ]
            else:
                tokens = [
                    blob[offsets[i]:offsets[i + 1]].decode("utf-8")
                    for i in range(self.universe_size)
                ]
        except UnicodeDecodeError as error:
            # Reachable in mmap mode, whose opens skip the payload digests.
            raise PersistenceError(
                f"universe blob in {self.path} is not valid UTF-8 "
                f"(corrupt or tampered): {error}"
            ) from error
        try:
            return TokenUniverse.from_id_order(tokens)
        except ValueError as error:
            raise PersistenceError(
                f"universe tokens in {self.path} are not distinct: {error}"
            ) from error

    def view(self) -> "MappedColumnarView":
        """The CSR arrays as a :class:`MappedColumnarView` (no records)."""
        return MappedColumnarView(self)

    def dataset(self) -> Dataset:
        """A :class:`~repro.core.dataset.Dataset` over this file.

        The returned dataset shares the reader's (possibly mapped)
        arrays: ``dataset.columnar()`` is the
        :class:`MappedColumnarView`, and ``dataset.records`` is a
        :class:`LazyRecords` sequence that materializes a
        :class:`~repro.core.sets.SetRecord` only when one is actually
        indexed — queries on the columnar verification path never do.
        """
        return Dataset.from_columnar_file(self)


class MappedColumnarView(ColumnarView):
    """A :class:`~repro.core.columnar.ColumnarView` over stored CSR arrays.

    Instead of being built by walking ``dataset.records``, the arrays
    come straight from a :class:`ColumnarFileReader` — read-only
    ``np.memmap`` views in ``"mmap"`` mode, so the token payload stays on
    disk until a query's gather touches it.  Every kernel the base view
    offers (:meth:`~repro.core.columnar.ColumnarView.overlaps`,
    :meth:`~repro.core.columnar.ColumnarView.pairwise_overlaps`, the
    per-query :class:`~repro.core.columnar.GroupVerifier`) works
    unchanged and bit-identically: they only ever *read* the arrays.

    Records appended after mapping (open-universe inserts, delta-log
    replay) land in an in-RAM CSR **tail**: the mapped token payload is
    never copied.  The first growth copies only the small ``offsets`` /
    ``sizes`` arrays into RAM (16 bytes per record) so they can extend;
    new token entries go to separate tail arrays whose logical offsets
    continue from the base ``nnz``, so one offsets array steers every
    kernel and a gather splits transparently between the mapping and the
    tail.  Base records stay page-faulted on demand however many records
    are appended.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro import Dataset
    >>> from repro.storage import ColumnarFileWriter, ColumnarFileReader
    >>> dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"]])
    >>> path = os.path.join(tempfile.mkdtemp(), "dataset.bin")
    >>> _ = ColumnarFileWriter(path).write(dataset)
    >>> view = ColumnarFileReader(path).view()
    >>> type(view).__name__, view.num_records, view.nnz
    ('MappedColumnarView', 2, 4)
    >>> view.tokens_of(1).tolist()          # served straight from the mapping
    [1, 2]
    """

    __slots__ = ("_base_nnz", "_tail_tokens", "_tail_counts")

    def __init__(self, reader: ColumnarFileReader) -> None:
        # Deliberately does NOT call ColumnarView.__init__ (which builds
        # the arrays by walking records): the stored arrays are adopted
        # as-is and the dataset back-reference is attached afterwards by
        # Dataset.from_columnar_file.  np.asarray re-types each memmap as
        # a base ndarray over the SAME mapped buffer (no copy, pages
        # still fault in lazily) — plain ndarray indexing is what the
        # query kernels' gather rates are calibrated for.
        self.dataset = None
        self._tokens = np.asarray(reader.segment("tokens"))
        self._counts = np.asarray(reader.segment("counts"))
        self._offsets = np.asarray(reader.segment("offsets"))
        self._sizes = np.asarray(reader.segment("sizes"))
        self._num_records = reader.num_records
        self._nnz = reader.nnz
        # The CSR tail: entries at logical positions >= _base_nnz live in
        # the RAM tail arrays, everything below stays in the mapping.
        self._base_nnz = reader.nnz
        self._tail_tokens: np.ndarray | None = None
        self._tail_counts: np.ndarray | None = None

    def _ensure_tail(self) -> None:
        """Make the view growable without materializing the mapped payload."""
        if self._tail_tokens is None:
            # offsets/sizes are 16 bytes per record — copying them to RAM
            # is what lets them extend past the file; the token payload
            # (the part that scales with Σ|S|) stays mapped.
            self._offsets = np.array(self._offsets[: self._num_records + 1], dtype=np.int64)
            self._sizes = np.array(self._sizes[: self._num_records], dtype=np.int64)
            self._tail_tokens = np.empty(0, dtype=np.int64)
            self._tail_counts = np.empty(0, dtype=np.int64)

    def sync(self) -> "MappedColumnarView":
        """Append records added after mapping into the in-RAM CSR tail."""
        if self.dataset is None:
            return self
        records = self.dataset.records
        if len(records) == self._num_records:
            return self
        self._ensure_tail()
        assert self._tail_tokens is not None and self._tail_counts is not None
        flat_tokens: list[int] = []
        flat_counts: list[int] = []
        lengths: list[int] = []
        sizes: list[int] = []
        for record in records[self._num_records:]:
            if record.is_multiset:
                items = sorted(record.counts().items())
                flat_tokens.extend(token for token, _ in items)
                flat_counts.extend(count for _, count in items)
                lengths.append(len(items))
            else:
                flat_tokens.extend(record.tokens)
                flat_counts.extend([1] * len(record.tokens))
                lengths.append(len(record.tokens))
            sizes.append(len(record))
        extra_nnz = len(flat_tokens)
        extra_rows = len(lengths)
        used_tail = self._nnz - self._base_nnz
        self._tail_tokens = _csr_grow(self._tail_tokens, used_tail, extra_nnz)
        self._tail_counts = _csr_grow(self._tail_counts, used_tail, extra_nnz)
        self._tail_tokens[used_tail:used_tail + extra_nnz] = flat_tokens
        self._tail_counts[used_tail:used_tail + extra_nnz] = flat_counts
        self._offsets = _csr_grow(self._offsets, self._num_records + 1, extra_rows)
        tail = self._offsets[self._num_records] + np.cumsum(lengths, dtype=np.int64)
        self._offsets[self._num_records + 1:self._num_records + 1 + extra_rows] = tail
        self._sizes = _csr_grow(self._sizes, self._num_records, extra_rows)
        self._sizes[self._num_records:self._num_records + extra_rows] = sizes
        self._num_records = len(records)
        self._nnz += extra_nnz
        return self

    def tokens_of(self, record_index: int) -> np.ndarray:
        start, stop = int(self._offsets[record_index]), int(self._offsets[record_index + 1])
        if stop <= self._base_nnz:
            return self._tokens[start:stop]
        assert self._tail_tokens is not None
        return self._tail_tokens[start - self._base_nnz:stop - self._base_nnz]

    def counts_of(self, record_index: int) -> np.ndarray:
        start, stop = int(self._offsets[record_index]), int(self._offsets[record_index + 1])
        if stop <= self._base_nnz:
            return self._counts[start:stop]
        assert self._tail_counts is not None
        return self._tail_counts[start - self._base_nnz:stop - self._base_nnz]

    def flat_tokens(self) -> np.ndarray:
        if self._nnz == self._base_nnz:
            return self._tokens[: self._nnz]
        assert self._tail_tokens is not None
        return np.concatenate(
            [self._tokens, self._tail_tokens[: self._nnz - self._base_nnz]]
        )

    def flat_counts(self) -> np.ndarray:
        if self._nnz == self._base_nnz:
            return self._counts[: self._nnz]
        assert self._tail_counts is not None
        return np.concatenate(
            [self._counts, self._tail_counts[: self._nnz - self._base_nnz]]
        )

    def byte_size(self) -> int:
        total = super().byte_size()
        if self._tail_tokens is not None:
            assert self._tail_counts is not None
            total += self._tail_tokens.nbytes + self._tail_counts.nbytes
        return total

    def _gather(self, members: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        starts = self._offsets[members]
        lengths = self._offsets[members + 1] - starts
        total = int(lengths.sum())
        boundaries = np.cumsum(lengths) - lengths
        gather = np.arange(total, dtype=np.int64) + np.repeat(starts - boundaries, lengths)
        in_tail = gather >= self._base_nnz
        if not in_tail.any():
            return self._tokens[gather], self._counts[gather], boundaries, lengths
        assert self._tail_tokens is not None and self._tail_counts is not None
        tokens = np.empty(total, dtype=np.int64)
        counts = np.empty(total, dtype=np.int64)
        in_base = ~in_tail
        base_gather = gather[in_base]
        tail_gather = gather[in_tail] - self._base_nnz
        tokens[in_base] = self._tokens[base_gather]
        counts[in_base] = self._counts[base_gather]
        tokens[in_tail] = self._tail_tokens[tail_gather]
        counts[in_tail] = self._tail_counts[tail_gather]
        return tokens, counts, boundaries, lengths


class LazyRecords(SequenceABC):
    """A list-like record container that materializes records on demand.

    Stands in for ``dataset.records`` on a mapped dataset: indexing
    builds the :class:`~repro.core.sets.SetRecord` from the view's CSR
    slices (a thread-safe :class:`~repro.core.cache.LRUCache` keeps
    recently touched records hot — thread-pool queries share the
    dataset), iterating yields every record in order, and :meth:`append`
    accepts new records into an in-memory overlay so open-universe
    inserts keep working.  Record indices — the ids every engine
    reports — are identical to a text load's by construction.
    """

    __slots__ = ("_view", "_base", "_overlay", "_cache")

    def __init__(self, view: MappedColumnarView) -> None:
        self._view = view
        self._base = view.num_records
        self._overlay: list[SetRecord] = []
        self._cache = LRUCache(_RECORD_CACHE_CAPACITY)

    def __len__(self) -> int:
        return self._base + len(self._overlay)

    def _materialize(self, index: int) -> SetRecord:
        def build() -> SetRecord:
            view = self._view
            start, stop = int(view._offsets[index]), int(view._offsets[index + 1])
            tokens = view._tokens[start:stop]
            if int(view._sizes[index]) != stop - start:  # multiset: expand counts
                tokens = np.repeat(tokens, view._counts[start:stop])
            return SetRecord(tokens.tolist())

        return self._cache.get_or_build(index, build)

    @overload
    def __getitem__(self, index: int) -> SetRecord: ...
    @overload
    def __getitem__(self, index: slice) -> list[SetRecord]: ...

    def __getitem__(self, index: int | slice) -> SetRecord | list[SetRecord]:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"record index {index} out of range")
        if index >= self._base:
            return self._overlay[index - self._base]
        return self._materialize(index)

    def __iter__(self) -> Iterator[SetRecord]:
        for index in range(len(self)):
            yield self[index]

    def append(self, record: SetRecord) -> None:
        """Accept an appended record (open-universe insert overlay)."""
        self._overlay.append(record)
