"""Simulated disk with an HDD/SSD cost model.

The paper's disk-based evaluation ran on a 5400-RPM HDD with ~80 MB/s
sequential throughput.  Without that hardware we model exactly the two
quantities that separate the methods in Figure 13:

* a **random access** pays an average seek plus half a rotation, then
  transfers pages at the sequential rate;
* a **sequential access** pays the transfer only (the preceding access
  positioned the head).

Costs accumulate in a :class:`DiskStats`; nothing sleeps — benchmarks report
modelled milliseconds, keeping runs fast and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DiskProfile", "HDD_5400RPM", "SSD_SATA", "DiskStats", "SimulatedDisk"]


@dataclass(frozen=True)
class DiskProfile:
    """Latency/bandwidth parameters of a storage device."""

    name: str
    page_size: int = 4096
    seek_ms: float = 8.0
    rotational_ms: float = 5.56  # half a rotation at 5400 RPM
    transfer_mb_per_s: float = 80.0

    def random_penalty_ms(self) -> float:
        return self.seek_ms + self.rotational_ms

    def transfer_ms(self, num_bytes: int) -> float:
        return num_bytes / (self.transfer_mb_per_s * 1_000_000.0) * 1000.0


HDD_5400RPM = DiskProfile(name="hdd-5400rpm")
SSD_SATA = DiskProfile(
    name="ssd-sata", seek_ms=0.05, rotational_ms=0.0, transfer_mb_per_s=450.0
)


@dataclass
class DiskStats:
    """Accumulated modelled I/O cost."""

    pages_read: int = 0
    random_accesses: int = 0
    sequential_runs: int = 0
    total_ms: float = 0.0
    extra: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.pages_read = 0
        self.random_accesses = 0
        self.sequential_runs = 0
        self.total_ms = 0.0
        self.extra.clear()


class SimulatedDisk:
    """Charges modelled time for page reads against a :class:`DiskProfile`."""

    def __init__(self, profile: DiskProfile = HDD_5400RPM) -> None:
        self.profile = profile
        self.stats = DiskStats()

    def pages_for(self, num_bytes: int) -> int:
        """Number of pages covering ``num_bytes`` (at least one)."""
        return max((num_bytes + self.profile.page_size - 1) // self.profile.page_size, 1)

    def random_read(self, num_pages: int) -> float:
        """One seek + rotation, then ``num_pages`` sequential pages."""
        if num_pages <= 0:
            return 0.0
        cost = self.profile.random_penalty_ms() + self.profile.transfer_ms(
            num_pages * self.profile.page_size
        )
        self.stats.pages_read += num_pages
        self.stats.random_accesses += 1
        self.stats.total_ms += cost
        return cost

    def sequential_read(self, num_pages: int) -> float:
        """``num_pages`` pages continuing the previous access (no seek)."""
        if num_pages <= 0:
            return 0.0
        cost = self.profile.transfer_ms(num_pages * self.profile.page_size)
        self.stats.pages_read += num_pages
        self.stats.sequential_runs += 1
        self.stats.total_ms += cost
        return cost

    def full_scan(self, num_bytes: int) -> float:
        """One seek then a sequential scan of ``num_bytes``."""
        pages = self.pages_for(num_bytes)
        cost = self.profile.random_penalty_ms() + self.profile.transfer_ms(
            pages * self.profile.page_size
        )
        self.stats.pages_read += pages
        self.stats.random_accesses += 1
        self.stats.total_ms += cost
        return cost
