"""Disk layouts and disk-based query execution (Section 7.6, Figure 13).

Each method's on-disk behaviour is modelled the way the paper describes it:

* **LES3** stores every group *contiguously*; answering a query reads each
  surviving group with one random access followed by a sequential run, so
  pruning skips whole disk regions (the in-memory TGM decides which).
* **DualTrans** pays one random access per R-tree node on the search path
  and one per candidate set fetched for verification.
* **InvIdx** pays one random access per posting list touched plus one per
  candidate set fetched.
* **Brute force** performs a single sequential scan of the data file.

All methods share the same record serialization cost model
(:func:`record_bytes`), so only access patterns differ — which is the point
of the experiment.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.brute_force import BruteForceSearch
from repro.baselines.dualtrans import DualTransSearch
from repro.baselines.invidx import InvertedIndexSearch
from repro.core.dataset import Dataset
from repro.core.search import SearchResult, knn_search, prepare_query, range_search
from repro.core.sets import SetRecord
from repro.core.tgm import TokenGroupMatrix
from repro.storage.disk import SimulatedDisk

__all__ = [
    "record_bytes",
    "DiskLES3",
    "DiskDualTrans",
    "DiskInvertedIndex",
    "DiskBruteForce",
]

_TOKEN_BYTES = 4
_RECORD_OVERHEAD = 8


def record_bytes(record: SetRecord) -> int:
    """Serialized size of one set: 4 bytes per token + length header."""
    return _RECORD_OVERHEAD + _TOKEN_BYTES * len(record)


class DiskLES3:
    """LES3 with group-contiguous layout on a simulated disk."""

    def __init__(self, dataset: Dataset, tgm: TokenGroupMatrix, disk: SimulatedDisk) -> None:
        self.dataset = dataset
        self.tgm = tgm
        self.disk = disk
        self._group_bytes = [
            sum(record_bytes(dataset.records[i]) for i in members)
            for members in tgm.group_members
        ]

    def _charge_groups(self, group_ids: np.ndarray) -> None:
        for group_id in group_ids:
            pages = self.disk.pages_for(self._group_bytes[int(group_id)])
            self.disk.random_read(pages)

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        result = range_search(self.dataset, self.tgm, query, threshold)
        known, weights, query_size = prepare_query(query, self.tgm.universe_size)
        bounds = self.tgm.upper_bounds(known, query_size, weights)
        self._charge_groups(np.flatnonzero(bounds >= threshold))
        return result

    def knn_search(self, query: SetRecord, k: int) -> SearchResult:
        result = knn_search(self.dataset, self.tgm, query, k)
        # Best-first search visits groups in descending-bound order; the
        # visited count is in the stats, so the visited identities are the
        # top groups by bound.
        visited = self.tgm.num_groups - result.stats.groups_pruned
        known, weights, query_size = prepare_query(query, self.tgm.universe_size)
        bounds = self.tgm.upper_bounds(known, query_size, weights)
        order = np.argsort(-bounds, kind="stable")[:visited]
        self._charge_groups(order)
        return result


class DiskDualTrans:
    """DualTrans paying per-node and per-candidate random accesses."""

    def __init__(self, search: DualTransSearch, disk: SimulatedDisk) -> None:
        self.search = search
        self.disk = disk

    def _charge(self, result: SearchResult) -> None:
        for _ in range(result.stats.extra.get("nodes_visited", 0)):
            self.disk.random_read(1)
        for _ in range(result.stats.candidates_verified):
            # Candidate sets are scattered; each fetch is a random access.
            self.disk.random_read(1)

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        result = self.search.range_search(query, threshold)
        self._charge(result)
        return result

    def knn_search(self, query: SetRecord, k: int) -> SearchResult:
        result = self.search.knn_search(query, k)
        self._charge(result)
        return result


class DiskInvertedIndex:
    """InvIdx paying per-posting-list and per-candidate random accesses."""

    def __init__(self, search: InvertedIndexSearch, disk: SimulatedDisk) -> None:
        self.search = search
        self.disk = disk

    def _charge(self, result: SearchResult) -> None:
        posting_entries = result.stats.columns_visited  # entries scanned
        posting_pages = self.disk.pages_for(posting_entries * 8)
        self.disk.random_read(posting_pages)
        for _ in range(result.stats.candidates_verified):
            self.disk.random_read(1)

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        result = self.search.range_search(query, threshold)
        self._charge(result)
        return result

    def knn_search(self, query: SetRecord, k: int) -> SearchResult:
        result = self.search.knn_search(query, k)
        self._charge(result)
        return result


class DiskBruteForce:
    """Brute force: one sequential scan of the whole data file."""

    def __init__(self, search: BruteForceSearch, disk: SimulatedDisk) -> None:
        self.search = search
        self.disk = disk
        self._total_bytes = sum(record_bytes(r) for r in search.dataset.records)

    def range_search(self, query: SetRecord, threshold: float) -> SearchResult:
        result = self.search.range_search(query, threshold)
        self.disk.full_scan(self._total_bytes)
        return result

    def knn_search(self, query: SetRecord, k: int) -> SearchResult:
        result = self.search.knn_search(query, k)
        self.disk.full_scan(self._total_bytes)
        return result
