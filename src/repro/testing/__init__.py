"""Test-support utilities that ship with the package.

:mod:`repro.testing.faults` is the fault-injection harness used by the
chaos test suite and ``bench_serve.py --chaos``.  It is intentionally
part of the installed package (not the test tree) so that subprocesses
— CLI servers, process-pool workers — can arm the same plan.
"""

from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    arm,
    armed,
    disarm,
    fault_point,
    recording,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "arm",
    "armed",
    "disarm",
    "fault_point",
    "recording",
]
