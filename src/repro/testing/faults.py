"""Fault injection for chaos tests (:mod:`repro.testing.faults`).

Production code calls :func:`fault_point` at named injection points —
storage reads, shard task execution, and each step of a crash-safe save.
With no plan armed the call is a single global read and an immediate
return, so the hooks are safe to leave in hot paths.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s.  Each rule
names a ``point`` (and optionally a ``match`` substring of the point's
detail string) and an ``action``:

``fail``
    raise :class:`InjectedFault` (a ``RuntimeError``) at the point;
``delay``
    sleep ``delay_seconds`` before continuing — a slow disk or a slow
    shard, used by the deadline tests;
``kill``
    ``SIGKILL`` the *current process* — inside a process-pool worker
    this is the canonical "worker died mid-task" fault.

Rules fire deterministically: ``skip`` hits are ignored first, then the
rule fires ``times`` times (``times < 0`` means forever).  A rule with a
``token`` path fires **exactly once across processes**: the first
process to atomically create the token file wins, every other process
(e.g. the sibling workers of a forked pool) skips the rule.  Plans are
JSON round-trippable so subprocesses can be armed through the
``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS='{"rules": [{"point": "shard.task", "action": "kill",
                              "skip": 3, "token": "/tmp/kill.tok"}]}'

Process-pool workers on Linux are forked from an armed parent and
therefore inherit the armed plan without any environment plumbing.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("fail", "delay", "kill")


class InjectedFault(RuntimeError):
    """Raised by a ``fail`` rule at an armed injection point."""


@dataclass
class FaultRule:
    """One trigger: fire ``action`` at hits of ``point`` matching ``match``."""

    point: str
    action: str = "fail"
    skip: int = 0
    times: int = 1
    delay_seconds: float = 0.0
    match: str = ""
    token: str | None = None
    # Runtime counters (not part of the serialized form).
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; use one of {_ACTIONS}")
        if self.skip < 0:
            raise ValueError("skip must be >= 0")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")

    def to_payload(self) -> dict:
        payload = {"point": self.point, "action": self.action}
        if self.skip:
            payload["skip"] = self.skip
        if self.times != 1:
            payload["times"] = self.times
        if self.delay_seconds:
            payload["delay_seconds"] = self.delay_seconds
        if self.match:
            payload["match"] = self.match
        if self.token is not None:
            payload["token"] = self.token
        return payload


class FaultPlan:
    """An armable set of :class:`FaultRule`\\ s."""

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self.rules = list(rules or [])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls([FaultRule(**rule) for rule in payload.get("rules", [])])

    def to_json(self) -> str:
        return json.dumps({"rules": [rule.to_payload() for rule in self.rules]})


_LOCK = threading.Lock()
_PLAN: FaultPlan | None = None
_TRACE: list[tuple[str, str]] | None = None


def arm(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (children forked afterwards inherit it)."""
    global _PLAN
    _PLAN = plan


def disarm() -> None:
    """Drop the armed plan; every fault point becomes a no-op again."""
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    return _PLAN


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with armed(plan): ...`` — arm for the block, disarm after."""
    global _PLAN
    previous = _PLAN
    arm(plan)
    try:
        yield plan
    finally:
        _PLAN = previous


@contextmanager
def recording() -> Iterator[list[tuple[str, str]]]:
    """Capture every ``(point, detail)`` hit in the block without firing.

    Used by the save-interruption matrix test to enumerate the injection
    points of a clean run before replaying a failure at each one.
    """
    global _TRACE
    previous = _TRACE
    trace: list[tuple[str, str]] = []
    _TRACE = trace
    try:
        yield trace
    finally:
        _TRACE = previous


def _claim_token(path: str) -> bool:
    """Atomically claim a cross-process once-token; True if we won."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, str(os.getpid()).encode("ascii"))
    os.close(fd)
    return True


def fault_point(point: str, detail: str = "") -> None:
    """Declare an injection point.  Near-free unless a plan is armed."""
    trace = _TRACE
    if trace is not None:
        trace.append((point, detail))
    plan = _PLAN
    if plan is None:
        return
    for rule in plan.rules:
        if rule.point != point or rule.match not in detail:
            continue
        with _LOCK:
            rule.hits += 1
            if rule.hits <= rule.skip:
                continue
            if rule.times >= 0 and rule.fired >= rule.times:
                continue
            if rule.token is not None and not _claim_token(rule.token):
                continue
            rule.fired += 1
        if rule.action == "delay":
            time.sleep(rule.delay_seconds)
        elif rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        else:
            raise InjectedFault(f"injected fault at {point}" + (f" ({detail})" if detail else ""))


# Arm from the environment at import time so `repro serve` subprocesses
# (and anything else launched with REPRO_FAULTS set) run chaos plans
# without code changes.  Import happens before any engine work.
if ENV_VAR in os.environ:  # pragma: no cover - exercised via subprocess tests
    arm(FaultPlan.from_json(os.environ[ENV_VAR]))
