"""Query workloads for the experiments."""

from repro.workloads.queries import sample_queries, perturbed_queries

__all__ = ["sample_queries", "perturbed_queries"]
