"""Query workload construction (Section 7.1: queries sampled from the data)."""

from __future__ import annotations

import random

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord

__all__ = ["sample_queries", "perturbed_queries"]


def sample_queries(dataset: Dataset, count: int, seed: int = 0) -> list[SetRecord]:
    """The paper's workload: ``count`` sets sampled from the database."""
    rng = random.Random(seed)
    indices = dataset.sample_indices(count, rng)
    return [dataset.records[i] for i in indices]


def perturbed_queries(
    dataset: Dataset,
    count: int,
    replace_fraction: float = 0.25,
    seed: int = 0,
) -> list[SetRecord]:
    """Out-of-database queries: sampled sets with a fraction of tokens replaced.

    Exercises the path where the query is not an exact member — important
    for the exactness tests (no accidental self-match shortcuts).
    """
    if not 0.0 <= replace_fraction <= 1.0:
        raise ValueError("replace_fraction must be in [0, 1]")
    rng = random.Random(seed)
    universe_size = len(dataset.universe)
    queries = []
    for index in dataset.sample_indices(count, rng):
        tokens = set(dataset.records[index].distinct)
        num_replace = max(int(len(tokens) * replace_fraction), 0)
        for _ in range(num_replace):
            tokens.discard(next(iter(tokens)))
            tokens.add(rng.randrange(universe_size))
        queries.append(SetRecord(tokens))
    return queries
