"""Engine behavior: suppressions, meta rules, selection, file walking."""

from __future__ import annotations

import pytest

from repro.analysis import RuleError, analyze_paths, analyze_source, resolve_codes
from repro.analysis.suppressions import parse_suppressions

BARE = "try:\n    f()\nexcept:\n    pass\n"


class TestSuppressionParsing:
    def test_directive_with_reason(self):
        (found,) = parse_suppressions(
            "x = 1  # repro-lint: disable=RL303 -- reviewed in PR 8\n"
        )
        assert found.codes == frozenset({"RL303"})
        assert found.reason == "reviewed in PR 8"
        assert found.line == 1

    def test_directive_without_reason(self):
        (found,) = parse_suppressions("x = 1  # repro-lint: disable=RL303\n")
        assert found.reason is None

    def test_multiple_codes(self):
        (found,) = parse_suppressions(
            "x = 1  # repro-lint: disable=RL101, RL303 -- test fixture\n"
        )
        assert found.codes == frozenset({"RL101", "RL303"})

    def test_ordinary_comments_are_not_directives(self):
        assert parse_suppressions("x = 1  # just a comment\n") == []


class TestSuppressionFiltering:
    def test_suppression_silences_its_line(self):
        source = "try:\n    f()\nexcept:  # repro-lint: disable=RL303 -- fixture\n    pass\n"
        assert [d.code for d in analyze_source(source)] == []

    def test_suppression_is_code_specific(self):
        source = "try:\n    f()\nexcept:  # repro-lint: disable=RL301 -- wrong code\n    pass\n"
        assert [d.code for d in analyze_source(source)] == ["RL303"]

    def test_suppression_is_line_specific(self):
        source = (
            "x = 1  # repro-lint: disable=RL303 -- elsewhere\n"
            "try:\n    f()\nexcept:\n    pass\n"
        )
        assert [d.code for d in analyze_source(source)] == ["RL303"]


class TestMetaRules:
    def test_rl001_unexplained_suppression_fires(self):
        source = "x = 1  # repro-lint: disable=RL303\n"
        assert [d.code for d in analyze_source(source)] == ["RL001"]

    def test_rl001_explained_suppression_is_silent(self):
        source = "x = 1  # repro-lint: disable=RL303 -- reviewed\n"
        assert analyze_source(source) == []

    def test_rl002_unknown_code_fires(self):
        source = "x = 1  # repro-lint: disable=RL999 -- typo\n"
        assert [d.code for d in analyze_source(source)] == ["RL002"]

    def test_rl002_known_code_is_silent(self):
        source = "x = 1  # repro-lint: disable=RL303 -- reviewed\n"
        assert analyze_source(source) == []

    def test_rl003_unparsable_file_fires(self):
        diagnostics = analyze_source("def broken(:\n")
        assert [d.code for d in diagnostics] == ["RL003"]
        assert "cannot be parsed" in diagnostics[0].message

    def test_rl003_parsable_file_is_silent(self):
        assert analyze_source("x = 1\n") == []


class TestSelection:
    def test_select_restricts_to_named_codes(self):
        assert [d.code for d in analyze_source(BARE, select=["RL303"])] == ["RL303"]
        assert analyze_source(BARE, select=["RL301"]) == []

    def test_select_prefix_expands_to_family(self):
        assert [d.code for d in analyze_source(BARE, select=["RL3"])] == ["RL303"]

    def test_ignore_removes_codes(self):
        assert analyze_source(BARE, ignore=["RL303"]) == []

    def test_unknown_code_raises(self):
        with pytest.raises(RuleError):
            analyze_source(BARE, select=["RL999"])
        with pytest.raises(RuleError):
            resolve_codes(["bogus"])


class TestAnalyzePaths:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(BARE)
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text(BARE)
        diagnostics, files_checked = analyze_paths([tmp_path])
        assert files_checked == 2
        assert [d.code for d in diagnostics] == ["RL303"]
        assert diagnostics[0].path.endswith("bad.py")

    def test_diagnostics_are_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text(BARE)
        (tmp_path / "a.py").write_text("x = 1\n" + BARE)
        diagnostics, _ = analyze_paths([tmp_path])
        assert [d.path.split("/")[-1] for d in diagnostics] == ["a.py", "b.py"]
