"""`repro lint` end to end: formats, selection flags, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

BARE = "try:\n    f()\nexcept:\n    pass\n"


@pytest.fixture()
def dirty(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(BARE)
    return path


@pytest.fixture()
def clean(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("x = 1\n")
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean, capsys):
        assert main(["lint", str(clean)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty, capsys):
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "RL303" in out
        assert "dirty.py:3" in out

    def test_bad_code_exits_two(self, clean, capsys):
        assert main(["lint", str(clean), "--select", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err


class TestFormats:
    def test_json_format(self, dirty, capsys):
        assert main(["lint", str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        (finding,) = payload["diagnostics"]
        assert finding["code"] == "RL303"
        assert finding["line"] == 3
        assert finding["path"].endswith("dirty.py")

    def test_json_clean(self, clean, capsys):
        assert main(["lint", str(clean), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"files_checked": 1, "diagnostics": []}


class TestSelection:
    def test_select_flag(self, dirty, capsys):
        assert main(["lint", str(dirty), "--select", "RL1"]) == 0
        assert main(["lint", str(dirty), "--select", "RL303"]) == 1

    def test_ignore_flag(self, dirty):
        assert main(["lint", str(dirty), "--ignore", "RL303"]) == 0

    def test_comma_separated_codes(self, dirty):
        assert main(["lint", str(dirty), "--ignore", "RL101,RL303"]) == 0


class TestListRules:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RL001", "RL002", "RL003",
            "RL101", "RL102", "RL103",
            "RL201", "RL202", "RL203",
            "RL301", "RL302", "RL303",
            "RL401", "RL402",
        ):
            assert code in out
