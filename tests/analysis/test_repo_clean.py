"""The repository passes its own linter — the CI gate, run as a test.

This is the acceptance bar for the PR that introduced the linter and for
every PR after it: ``repro lint src tests benchmarks`` stays at zero
diagnostics, and every suppression in the tree carries a reason.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_lint_clean():
    targets = [REPO_ROOT / name for name in ("src", "tests", "benchmarks")]
    diagnostics, files_checked = analyze_paths([t for t in targets if t.exists()])
    assert files_checked > 100, "expected to walk the whole repository"
    formatted = "\n".join(d.format() for d in diagnostics)
    assert diagnostics == [], f"repro lint found violations:\n{formatted}"
