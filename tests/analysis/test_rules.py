"""One firing fixture and one near-miss fixture per lint rule.

Every rule gets at least one *true positive* (a snippet that violates
the invariant and must produce exactly that rule's code) and one *near
miss* (a snippet doing the compliant version of the same thing that must
stay silent).  Snippets are analyzed in memory against a virtual
``module_path`` so scope matching works without touching the filesystem.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

QUERY_PATH = "src/repro/core/example.py"
DISTRIBUTED = "src/repro/distributed/example.py"
OUTSIDE = "src/repro/learn/example.py"


def codes(source: str, module_path: str = QUERY_PATH, **kwargs) -> list[str]:
    # Fixtures target one rule each, so the typing rule (RL402) is kept
    # out of the way unless a test opts back in; its own fixtures below
    # select it explicitly.
    kwargs.setdefault("ignore", ["RL402"])
    source = textwrap.dedent(source)
    return [d.code for d in analyze_source(source, module_path=module_path, **kwargs)]


# -- RL101: unsorted set iteration ----------------------------------------


class TestUnsortedSetIteration:
    def test_for_over_set_literal_fires(self):
        assert codes("for x in {1, 2}:\n    print(x)\n") == ["RL101"]

    def test_for_over_set_call_fires(self):
        assert codes("for x in set(items):\n    print(x)\n") == ["RL101"]

    def test_comprehension_over_set_difference_fires(self):
        assert codes("out = [x for x in set(seen) - done]\n") == ["RL101"]

    def test_set_bound_local_name_fires(self):
        source = """
        def f(items):
            pending = set(items)
            return [x for x in pending]
        """
        assert codes(source) == ["RL101"]

    def test_sorted_set_is_silent(self):
        assert codes("for x in sorted({1, 2}):\n    print(x)\n") == []

    def test_order_insensitive_consumer_is_silent(self):
        assert codes("total = sum(x for x in {1, 2})\n") == []

    def test_rebound_name_is_not_assumed_to_be_a_set(self):
        source = """
        def f(items):
            pending = set(items)
            pending = order_of(pending)
            return [x for x in pending]
        """
        assert codes(source) == []

    def test_out_of_scope_module_is_silent(self):
        assert codes("for x in {1, 2}:\n    print(x)\n", module_path=OUTSIDE) == []


# -- RL102: narrow float dtype --------------------------------------------


class TestNarrowFloatDtype:
    def test_np_float32_attribute_fires(self):
        assert codes("a = np.zeros(3, dtype=np.float32)\n") == ["RL102"]

    def test_astype_string_literal_fires(self):
        assert codes("b = a.astype('float32')\n") == ["RL102"]

    def test_dtype_keyword_string_fires(self):
        assert codes("c = np.zeros(3, dtype='float16')\n") == ["RL102"]

    def test_float64_is_silent(self):
        assert codes("a = np.zeros(3, dtype=np.float64)\n") == []

    def test_unrelated_string_is_silent(self):
        assert codes("label = 'float32 is banned here'\n") == []


# -- RL103: unstable merge sort -------------------------------------------


class TestUnstableMergeSort:
    # RL103's scope is the merge paths (search/batch/join + distributed +
    # serve), not every core module.
    def test_argsort_without_kind_fires(self):
        assert codes("order = np.argsort(scores)\n", module_path=DISTRIBUTED) == [
            "RL103"
        ]

    def test_sort_with_quicksort_fires(self):
        assert codes("np.sort(scores, kind='quicksort')\n", module_path=DISTRIBUTED) == [
            "RL103"
        ]

    def test_stable_kind_is_silent(self):
        assert codes("order = np.argsort(scores, kind='stable')\n", module_path=DISTRIBUTED) == []

    def test_python_sorted_is_silent(self):
        assert codes("order = sorted(scores)\n", module_path=DISTRIBUTED) == []

    def test_non_merge_module_is_silent(self):
        assert codes("order = np.argsort(scores)\n", module_path=OUTSIDE) == []


# -- RL201: unguarded executor --------------------------------------------


class TestUnguardedExecutor:
    def test_dangling_pool_fires(self):
        source = """
        def f(tasks):
            pool = ThreadPoolExecutor(4)
            return [pool.submit(t) for t in tasks]
        """
        assert codes(source, module_path=OUTSIDE) == ["RL201"]

    def test_with_block_is_silent(self):
        source = """
        def f(tasks):
            with ThreadPoolExecutor(4) as pool:
                return [pool.submit(t).result() for t in tasks]
        """
        assert codes(source, module_path=OUTSIDE) == []

    def test_finally_shutdown_is_silent(self):
        source = """
        def f(tasks):
            pool = ProcessPoolExecutor()
            try:
                return [pool.submit(t).result() for t in tasks]
            finally:
                pool.shutdown(wait=True)
        """
        assert codes(source, module_path=OUTSIDE) == []

    def test_stored_on_closing_class_is_silent(self):
        source = """
        class Engine:
            def start(self):
                self._pool = ThreadPoolExecutor(2)

            def close(self):
                self._pool.shutdown(wait=True)
        """
        assert codes(source, module_path=OUTSIDE) == []

    def test_stored_on_class_without_shutdown_fires(self):
        source = """
        class Engine:
            def start(self):
                self._pool = ThreadPoolExecutor(2)
        """
        assert codes(source, module_path=OUTSIDE) == ["RL201"]


# -- RL202: unlocked shared mutation --------------------------------------


class TestUnlockedSharedMutation:
    def test_off_lock_counter_fires(self):
        source = """
        class Cache:
            def __init__(self):
                self._lock = Lock()
                self.hits = 0

            def record(self):
                self.hits += 1
        """
        assert codes(source) == ["RL202"]

    def test_off_lock_container_method_fires(self):
        source = """
        class Cache:
            def __init__(self):
                self._lock = Lock()
                self.entries = {}

            def put(self, key, value):
                self.entries.update({key: value})
        """
        assert codes(source) == ["RL202"]

    def test_under_lock_is_silent(self):
        source = """
        class Cache:
            def __init__(self):
                self._lock = Lock()
                self.hits = 0

            def record(self):
                with self._lock:
                    self.hits += 1
        """
        assert codes(source) == []

    def test_init_is_exempt(self):
        source = """
        class Cache:
            def __init__(self):
                self._lock = Lock()
                self.hits = 0
        """
        assert codes(source) == []

    def test_unlocked_class_is_not_checked(self):
        source = """
        class Plain:
            def record(self):
                self.hits += 1
        """
        assert codes(source) == []

    def test_clock_attribute_is_not_a_lock(self):
        # "_breaker_clock" contains the letters l-o-c-k; the rule must
        # not treat the class as lock-guarded because of it.
        source = """
        class Breaker:
            def __init__(self):
                self._breaker_clock = monotonic

            def tick(self):
                self.count += 1
        """
        assert codes(source) == []


# -- RL203: shard fan-out without fault_point ------------------------------


class TestShardFanoutWithoutFaultPoint:
    def test_shard_submit_without_fault_point_fires(self):
        source = """
        def scatter(pool, shards):
            return [pool.submit(run, shard) for shard in shards]
        """
        assert codes(source, module_path=DISTRIBUTED) == ["RL203"]

    def test_fault_point_in_function_is_silent(self):
        source = """
        def scatter(pool, shards):
            futures = []
            for shard in shards:
                fault_point("shard.submit", str(shard))
                futures.append(pool.submit(run, shard))
            return futures
        """
        assert codes(source, module_path=DISTRIBUTED) == []

    def test_non_shard_submit_is_silent(self):
        source = """
        def scatter(pool, jobs):
            return [pool.submit(run, job) for job in jobs]
        """
        assert codes(source, module_path=DISTRIBUTED) == []

    def test_outside_distributed_is_silent(self):
        source = """
        def scatter(pool, shards):
            return [pool.submit(run, shard) for shard in shards]
        """
        assert codes(source, module_path=QUERY_PATH) == []


# -- RL301: save bypasses atomic_directory --------------------------------


class TestSaveBypassesAtomicDirectory:
    def test_os_replace_fires(self):
        assert codes("os.replace(stage, final)\n") == ["RL301"]

    def test_shutil_move_fires(self):
        assert codes("shutil.move(stage, final)\n") == ["RL301"]

    def test_persistence_module_is_exempt(self):
        assert (
            codes("os.replace(stage, final)\n", module_path="src/repro/core/persistence.py")
            == []
        )

    def test_plain_write_is_silent(self):
        assert codes("path.write_text(data)\n") == []


# -- RL302: retried fatal error -------------------------------------------


class TestRetriedFatalError:
    def test_catch_and_continue_in_loop_fires(self):
        source = """
        def pump(tasks):
            for task in tasks:
                try:
                    task()
                except PersistenceError:
                    continue
        """
        assert codes(source) == ["RL302"]

    def test_fatal_tuple_alias_fires(self):
        source = """
        def pump(tasks):
            while tasks:
                try:
                    tasks.pop()()
                except _FATAL_ERRORS:
                    pass
        """
        assert codes(source) == ["RL302"]

    def test_reraise_idiom_is_silent(self):
        source = """
        def pump(tasks):
            for task in tasks:
                try:
                    task()
                except PersistenceError:
                    raise
        """
        assert codes(source) == []

    def test_boundary_translation_outside_loop_is_silent(self):
        source = """
        def handle(request):
            try:
                return run(request)
            except DeadlineExceeded:
                return timeout_response()
        """
        assert codes(source) == []

    def test_retrying_ordinary_errors_is_silent(self):
        source = """
        def pump(tasks):
            for task in tasks:
                try:
                    task()
                except OSError:
                    continue
        """
        assert codes(source) == []


# -- RL303: bare except ---------------------------------------------------


class TestBareExcept:
    def test_bare_except_fires(self):
        assert codes("try:\n    f()\nexcept:\n    pass\n", module_path=OUTSIDE) == [
            "RL303"
        ]

    def test_named_except_is_silent(self):
        assert (
            codes("try:\n    f()\nexcept ValueError:\n    pass\n", module_path=OUTSIDE)
            == []
        )


# -- RL304: dataset.bin mutated outside compaction ------------------------


class TestDatasetBinMutation:
    def test_writer_construction_fires(self):
        assert codes("ColumnarFileWriter(path).write(dataset)\n", ignore=["RL401", "RL402"]) == ["RL304"]

    def test_qualified_writer_construction_fires(self):
        source = "storage.ColumnarFileWriter(directory / 'dataset.bin')\n"
        assert codes(source, ignore=["RL401", "RL402"]) == ["RL304"]

    def test_open_for_write_fires(self):
        source = "handle = open(directory / DATASET_BIN, 'r+b')\n"
        assert codes(source, ignore=["RL401", "RL402"]) == ["RL304"]

    def test_path_open_append_fires(self):
        source = "(directory / 'dataset.bin').open('ab')\n"
        assert codes(source, ignore=["RL401", "RL402"]) == ["RL304"]

    def test_write_bytes_fires(self):
        source = "(directory / DATASET_BIN).write_bytes(payload)\n"
        assert codes(source, ignore=["RL401", "RL402"]) == ["RL304"]

    def test_read_only_open_is_silent(self):
        source = "handle = open(directory / DATASET_BIN, 'rb')\n"
        assert codes(source, ignore=["RL401", "RL402"]) == []

    def test_default_mode_open_is_silent(self):
        assert codes("data = (directory / 'dataset.bin').open()\n", ignore=["RL401", "RL402"]) == []

    def test_unrelated_write_is_silent(self):
        assert codes("open(directory / 'notes.txt', 'w')\n", ignore=["RL401", "RL402"]) == []

    def test_persistence_module_is_exempt(self):
        source = "ColumnarFileWriter(path).write(dataset)\n"
        assert (
            codes(source, module_path="src/repro/core/persistence.py",
                  ignore=["RL401", "RL402"]) == []
        )

    def test_columnar_file_module_is_exempt(self):
        source = "(path / 'dataset.bin').open('wb')\n"
        assert (
            codes(source, module_path="src/repro/storage/columnar_file.py",
                  ignore=["RL401", "RL402"])
            == []
        )


# -- RL401: unowned file handle -------------------------------------------


class TestUnownedFileHandle:
    def test_leaked_open_fires(self):
        source = """
        def read(path):
            handle = open(path)
            return handle.read()
        """
        assert codes(source) == ["RL401"]

    def test_leaked_memmap_fires(self):
        source = """
        def load(path):
            data = np.memmap(path, dtype="int64")
            return data.sum()
        """
        assert codes(source) == ["RL401"]

    def test_with_block_is_silent(self):
        source = """
        def read(path):
            with open(path) as handle:
                return handle.read()
        """
        assert codes(source) == []

    def test_closed_in_function_is_silent(self):
        source = """
        def read(path):
            handle = open(path)
            try:
                return handle.read()
            finally:
                handle.close()
        """
        assert codes(source) == []

    def test_stored_on_object_is_silent(self):
        source = """
        class Reader:
            def open(self, path):
                self._handle = open(path)
        """
        assert codes(source) == []

    def test_returned_handle_is_silent(self):
        source = """
        def open_log(path):
            return open(path, "a")
        """
        assert codes(source) == []


# -- RL402: untyped def in strict module ----------------------------------


class TestUntypedDefInStrictModule:
    @staticmethod
    def typing_codes(source: str, module_path: str = QUERY_PATH) -> list[str]:
        return codes(source, module_path=module_path, select=["RL402"], ignore=[])

    def test_missing_param_annotation_fires(self):
        source = """
        def score(shared, size: int) -> float:
            return shared / size
        """
        diagnostics = analyze_source(
            textwrap.dedent(source), module_path=QUERY_PATH, select=["RL402"]
        )
        assert [d.code for d in diagnostics] == ["RL402"]
        assert "shared" in diagnostics[0].message

    def test_missing_return_annotation_fires(self):
        source = """
        def score(shared: int, size: int):
            return shared / size
        """
        assert self.typing_codes(source) == ["RL402"]

    def test_fully_annotated_is_silent(self):
        source = """
        def score(shared: int, size: int) -> float:
            return shared / size
        """
        assert self.typing_codes(source) == []

    def test_self_needs_no_annotation(self):
        source = """
        class Measure:
            def score(self, shared: int) -> float:
                return float(shared)
        """
        assert self.typing_codes(source) == []

    def test_permissive_module_is_silent(self):
        source = """
        def score(shared, size):
            return shared / size
        """
        assert self.typing_codes(source, module_path=OUTSIDE) == []
