"""DualTrans-specific behaviour: bucket vectors, MBR bounds, the d trade-off."""

import numpy as np
import pytest

from repro.baselines import DualTransSearch, bucket_vectors
from repro.core import Dataset
from repro.core.sets import SetRecord


class TestBucketVectors:
    def test_row_sums_are_set_sizes(self, zipf_small):
        vectors = bucket_vectors(zipf_small, 8)
        sizes = np.array([len(r) for r in zipf_small.records], dtype=float)
        np.testing.assert_allclose(vectors.sum(axis=1), sizes)

    def test_multiset_counts(self):
        dataset = Dataset.from_token_lists([["a", "a", "b"]])
        vectors = bucket_vectors(dataset, 2)
        assert vectors.sum() == 3.0

    def test_invalid_dim(self, zipf_small):
        with pytest.raises(ValueError):
            bucket_vectors(zipf_small, 0)


class TestBoundSoundness:
    def test_root_bound_dominates_all_similarities(self, zipf_small):
        search = DualTransSearch(zipf_small, dim=8)
        query = zipf_small.records[0]
        query_vector = search._query_vector(query)
        bound = search._bound_function(query_vector, len(query))
        root = search.tree.root
        root_bound = bound(root.mbr_min, root.mbr_max)
        for record in zipf_small.records:
            assert root_bound >= search.measure(query, record) - 1e-12

    @pytest.mark.parametrize("dim", [2, 8, 32])
    def test_exact_at_any_dimensionality(self, zipf_small, dim):
        from repro.baselines import BruteForceSearch

        search = DualTransSearch(zipf_small, dim=dim)
        brute = BruteForceSearch(zipf_small)
        for i in (0, 17, 99):
            query = zipf_small.records[i]
            assert (
                search.range_search(query, 0.6).matches
                == brute.range_search(query, 0.6).matches
            )


class TestDimensionTradeOff:
    def test_large_d_inflates_tree_scan_cost(self, zipf_small):
        """Section 7.6: large d → more MBR overlap → more nodes scanned."""
        from repro.workloads import sample_queries

        queries = sample_queries(zipf_small, 30, seed=8)
        small = DualTransSearch(zipf_small, dim=2)
        large = DualTransSearch(zipf_small, dim=64)
        small_nodes = sum(
            small.range_search(q, 0.7).stats.extra["nodes_visited"] for q in queries
        )
        large_nodes = sum(
            large.range_search(q, 0.7).stats.extra["nodes_visited"] for q in queries
        )
        assert large_nodes > small_nodes

    def test_nodes_visited_recorded(self, zipf_small):
        search = DualTransSearch(zipf_small, dim=8)
        result = search.range_search(zipf_small.records[0], 0.5)
        assert result.stats.extra["nodes_visited"] >= 1

    def test_index_bytes_grow_with_dim(self, zipf_small):
        small = DualTransSearch(zipf_small, dim=4).index_bytes()
        large = DualTransSearch(zipf_small, dim=64).index_bytes()
        assert large > small


class TestEdgeCases:
    def test_unseen_query_tokens(self, zipf_small):
        from repro.baselines import BruteForceSearch

        search = DualTransSearch(zipf_small, dim=8)
        brute = BruteForceSearch(zipf_small)
        query = SetRecord(list(zipf_small.records[0].distinct) + [99_999])
        assert search.range_search(query, 0.3).matches == brute.range_search(query, 0.3).matches

    def test_invalid_inputs(self, zipf_small):
        search = DualTransSearch(zipf_small, dim=4)
        with pytest.raises(ValueError):
            search.range_search(zipf_small.records[0], 2.0)
        with pytest.raises(ValueError):
            search.knn_search(zipf_small.records[0], -1)
