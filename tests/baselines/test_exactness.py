"""The exactness contract: every method returns the brute-force answer.

This is the load-bearing test of the whole reproduction — LES3, InvIdx and
DualTrans are all *exact* methods, so on any dataset, any query, any
threshold or k, their answers must coincide with a linear scan.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BruteForceSearch, DualTransSearch, InvertedIndexSearch
from repro.core import TokenGroupMatrix, knn_search, range_search
from repro.core.sets import SetRecord
from repro.learn import L2PPartitioner
from repro.workloads import perturbed_queries, sample_queries


@pytest.fixture(scope="module")
def stack(zipf_small):
    l2p = L2PPartitioner(
        pairs_per_model=800, epochs=2, initial_groups=4, min_group_size=8, seed=0
    )
    tgm = TokenGroupMatrix(zipf_small, l2p.partition(zipf_small, 16).groups)
    return {
        "dataset": zipf_small,
        "brute": BruteForceSearch(zipf_small),
        "invidx": InvertedIndexSearch(zipf_small),
        "dualtrans": DualTransSearch(zipf_small, dim=12),
        "tgm": tgm,
    }


QUERY_SEEDS = [13, 31]


class TestRangeAgreement:
    @pytest.mark.parametrize("threshold", [0.1, 0.4, 0.7, 0.95])
    @pytest.mark.parametrize("seed", QUERY_SEEDS)
    def test_all_methods_agree(self, stack, threshold, seed):
        queries = sample_queries(stack["dataset"], 8, seed) + perturbed_queries(
            stack["dataset"], 8, seed=seed + 1
        )
        for query in queries:
            expected = stack["brute"].range_search(query, threshold).matches
            assert stack["invidx"].range_search(query, threshold).matches == expected
            assert stack["dualtrans"].range_search(query, threshold).matches == expected
            assert (
                range_search(stack["dataset"], stack["tgm"], query, threshold).matches
                == expected
            )


class TestKnnAgreement:
    @pytest.mark.parametrize("k", [1, 3, 10, 40])
    @pytest.mark.parametrize("seed", QUERY_SEEDS)
    def test_similarity_multisets_agree(self, stack, k, seed):
        queries = sample_queries(stack["dataset"], 6, seed) + perturbed_queries(
            stack["dataset"], 6, seed=seed + 1
        )
        for query in queries:
            expected = sorted(s for _, s in stack["brute"].knn_search(query, k).matches)
            for method in ("invidx", "dualtrans"):
                actual = sorted(s for _, s in getattr(stack[method], "knn_search")(query, k).matches)
                assert actual == pytest.approx(expected), method
            actual = sorted(
                s for _, s in knn_search(stack["dataset"], stack["tgm"], query, k).matches
            )
            assert actual == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    tokens=st.sets(st.integers(min_value=0, max_value=249), min_size=1, max_size=15),
    threshold=st.floats(min_value=0.05, max_value=1.0),
)
def test_property_range_agreement(stack, tokens, threshold):
    query = SetRecord(tokens)
    expected = stack["brute"].range_search(query, threshold).matches
    assert stack["invidx"].range_search(query, threshold).matches == expected
    assert stack["dualtrans"].range_search(query, threshold).matches == expected
    assert range_search(stack["dataset"], stack["tgm"], query, threshold).matches == expected


@settings(max_examples=15, deadline=None)
@given(
    tokens=st.sets(st.integers(min_value=0, max_value=249), min_size=1, max_size=15),
    k=st.integers(min_value=1, max_value=25),
)
def test_property_knn_agreement(stack, tokens, k):
    query = SetRecord(tokens)
    expected = sorted(s for _, s in stack["brute"].knn_search(query, k).matches)
    for method in ("invidx", "dualtrans"):
        actual = sorted(s for _, s in getattr(stack[method], "knn_search")(query, k).matches)
        assert actual == pytest.approx(expected), method
    actual = sorted(s for _, s in knn_search(stack["dataset"], stack["tgm"], query, k).matches)
    assert actual == pytest.approx(expected)
