"""InvIdx-specific behaviour: prefix/length filtering, δ-descending kNN."""

import pytest

from repro.baselines import BruteForceSearch, InvertedIndexSearch
from repro.core import Dataset
from repro.core.sets import SetRecord


@pytest.fixture(scope="module")
def index(zipf_small):
    return InvertedIndexSearch(zipf_small)


class TestFiltering:
    def test_high_threshold_verifies_fewer_candidates(self, index, zipf_small):
        query = zipf_small.records[0]
        strict = index.range_search(query, 0.9).stats.candidates_verified
        loose = index.range_search(query, 0.2).stats.candidates_verified
        assert strict <= loose

    def test_filter_is_effective(self, index, zipf_small):
        query = zipf_small.records[0]
        stats = index.range_search(query, 0.8).stats
        assert stats.candidates_verified < len(zipf_small)

    def test_threshold_zero_verifies_everything(self, index, zipf_small):
        query = zipf_small.records[0]
        stats = index.range_search(query, 0.0).stats
        assert stats.candidates_verified == len(zipf_small)

    def test_posting_entries_counted(self, index, zipf_small):
        stats = index.range_search(zipf_small.records[0], 0.5).stats
        assert stats.columns_visited > 0


class TestKnnDeltaLoop:
    def test_step_size_trades_work(self, zipf_small):
        index = InvertedIndexSearch(zipf_small)
        query = zipf_small.records[10]
        coarse = index.knn_search(query, 5, step=0.5).stats.candidates_verified
        fine = index.knn_search(query, 5, step=0.02).stats.candidates_verified
        # A fine step stops earlier (tighter final δ) → fewer verifications.
        assert fine <= coarse

    def test_invalid_step(self, index, zipf_small):
        with pytest.raises(ValueError):
            index.knn_search(zipf_small.records[0], 5, step=0.0)

    def test_k_larger_than_database(self, index, zipf_small):
        result = index.knn_search(zipf_small.records[0], len(zipf_small) + 5)
        assert len(result) == len(zipf_small)

    def test_agrees_with_brute_force_on_duplicates(self):
        dataset = Dataset.from_token_lists([["a", "b"]] * 5 + [["c", "d"]])
        index = InvertedIndexSearch(dataset)
        brute = BruteForceSearch(dataset)
        query = SetRecord([0, 1])
        expected = sorted(s for _, s in brute.knn_search(query, 3).matches)
        actual = sorted(s for _, s in index.knn_search(query, 3).matches)
        assert actual == pytest.approx(expected)


class TestNonJaccardMeasures:
    def test_cosine_stays_exact_with_conservative_prefix(self, zipf_small):
        index = InvertedIndexSearch(zipf_small, measure="cosine")
        brute = BruteForceSearch(zipf_small, measure="cosine")
        query = zipf_small.records[3]
        assert (
            index.range_search(query, 0.6).matches == brute.range_search(query, 0.6).matches
        )

    def test_unseen_query_tokens_handled(self, index, zipf_small):
        query = SetRecord(list(zipf_small.records[0].distinct) + [10_000])
        brute = BruteForceSearch(zipf_small)
        assert index.range_search(query, 0.3).matches == brute.range_search(query, 0.3).matches
