"""Tests for the benchmark harness helpers."""

import pytest

from repro.bench import Timer, format_table, geometric_mean, time_calls


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed > 0


class TestTimeCalls:
    def test_mean_of_repeats(self):
        calls = []
        elapsed = time_calls(lambda: calls.append(1), repeats=5)
        assert len(calls) == 5
        assert elapsed >= 0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_calls(lambda: None, repeats=0)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPrintTable:
    def test_prints_title_and_rows(self, capsys):
        from repro.bench import print_table

        print_table("demo", ["a", "b"], [[1, 2.5]])
        out = capsys.readouterr().out
        assert "== demo ==" in out
        assert "2.5" in out


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        assert "2.5" in lines[3]

    def test_scientific_for_tiny_floats(self):
        table = format_table(["x"], [[0.0000123]])
        assert "e-" in table

    def test_zero_renders_plainly(self):
        assert "0" in format_table(["x"], [[0.0]])
