"""Unit tests for the individual roaring containers."""

from array import array

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.containers import (
    ARRAY_MAX,
    ArrayContainer,
    BitsetContainer,
    RunContainer,
    container_from_sorted,
)

lows = st.lists(st.integers(min_value=0, max_value=65535), max_size=150)


class TestArrayContainer:
    def test_add_keeps_sorted_unique(self):
        container = ArrayContainer()
        for value in [5, 1, 5, 3]:
            container = container.add(value)
        assert list(container.values()) == [1, 3, 5]
        assert container.cardinality() == 3

    def test_contains_binary_search(self):
        container = ArrayContainer(array("H", [1, 5, 9]))
        assert container.contains(5)
        assert not container.contains(4)
        assert not container.contains(10)

    def test_promotes_to_bitset_beyond_max(self):
        container = ArrayContainer(array("H", range(ARRAY_MAX)))
        promoted = container.add(ARRAY_MAX)
        assert isinstance(promoted, BitsetContainer)
        assert promoted.cardinality() == ARRAY_MAX + 1


class TestBitsetContainer:
    def test_add_and_cardinality_cache(self):
        container = BitsetContainer()
        container.add(7)
        assert container.cardinality() == 1
        container.add(7)
        assert container.cardinality() == 1
        container.add(63)
        container.add(64)
        assert container.cardinality() == 3

    def test_values_sorted(self):
        container = BitsetContainer()
        for value in [100, 3, 65535]:
            container.add(value)
        assert list(container.values()) == [3, 100, 65535]

    def test_intersection_demotes_to_array_when_sparse(self):
        a = BitsetContainer()
        b = BitsetContainer()
        for value in range(ARRAY_MAX + 50):
            a.add(value)
        b.add(10)
        result = a.intersection(b)
        assert isinstance(result, (ArrayContainer, BitsetContainer))
        assert list(result.values()) == [10]


class TestRunContainer:
    def test_from_sorted_builds_runs(self):
        container = RunContainer.from_sorted(iter([1, 2, 3, 7, 8, 20]))
        assert container.runs == [(1, 3), (7, 2), (20, 1)]
        assert container.cardinality() == 6

    def test_contains(self):
        container = RunContainer([(10, 5), (100, 1)])
        assert container.contains(10) and container.contains(14)
        assert not container.contains(15)
        assert container.contains(100)
        assert not container.contains(99)

    def test_byte_size_favours_long_runs(self):
        run = RunContainer.from_sorted(iter(range(4000)))
        plain = ArrayContainer(array("H", range(4000)))
        assert run.byte_size() < plain.byte_size()

    @settings(max_examples=40)
    @given(lows)
    def test_roundtrip_through_runs(self, values):
        expected = sorted(set(values))
        container = RunContainer.from_sorted(iter(expected))
        assert list(container.values()) == expected


class TestContainerFromSorted:
    def test_small_input_gives_array(self):
        assert isinstance(container_from_sorted([1, 2, 3]), ArrayContainer)

    def test_large_input_gives_bitset(self):
        container = container_from_sorted(list(range(ARRAY_MAX + 1)))
        assert isinstance(container, BitsetContainer)

    @settings(max_examples=40)
    @given(lows, lows)
    def test_cross_kind_algebra(self, a, b):
        """Intersection/union agree with set semantics across kinds."""
        set_a, set_b = sorted(set(a)), sorted(set(b))
        kinds_a = [container_from_sorted(set_a), RunContainer.from_sorted(iter(set_a))]
        kinds_b = [container_from_sorted(set_b), RunContainer.from_sorted(iter(set_b))]
        for container_a in kinds_a:
            for container_b in kinds_b:
                got_and = sorted(container_a.intersection(container_b).values())
                got_or = sorted(container_a.union(container_b).values())
                assert got_and == sorted(set(set_a) & set(set_b))
                assert got_or == sorted(set(set_a) | set(set_b))
