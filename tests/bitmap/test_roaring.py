"""Property and unit tests for the Roaring-style bitmap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import ARRAY_MAX, RoaringBitmap

small_values = st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200)


class TestBasics:
    def test_empty(self):
        bitmap = RoaringBitmap()
        assert len(bitmap) == 0
        assert list(bitmap) == []
        assert 5 not in bitmap

    def test_add_and_contains(self):
        bitmap = RoaringBitmap()
        bitmap.add(42)
        bitmap.add(42)
        assert 42 in bitmap
        assert len(bitmap) == 1

    def test_values_cross_chunk_boundary(self):
        values = [1, 65535, 65536, 65537, 1 << 20]
        bitmap = RoaringBitmap(values)
        assert list(bitmap) == sorted(values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RoaringBitmap([-1])
        with pytest.raises(ValueError):
            RoaringBitmap().add(1 << 32)

    def test_negative_contains_is_false(self):
        assert -3 not in RoaringBitmap([1])

    def test_equality(self):
        assert RoaringBitmap([1, 2]) == RoaringBitmap([2, 1])
        assert RoaringBitmap([1]) != RoaringBitmap([2])


class TestContainers:
    def test_dense_chunk_promotes_to_bitset(self):
        bitmap = RoaringBitmap(range(ARRAY_MAX + 10))
        assert bitmap.container_kinds()["bitset"] == 1
        assert len(bitmap) == ARRAY_MAX + 10

    def test_incremental_adds_promote(self):
        bitmap = RoaringBitmap()
        for value in range(ARRAY_MAX + 5):
            bitmap.add(value * 2)  # same chunk until 32768... keep in-chunk
        assert len(bitmap) == ARRAY_MAX + 5

    def test_run_optimize_shrinks_consecutive_runs(self):
        bitmap = RoaringBitmap(range(10_000))
        before = bitmap.byte_size()
        bitmap.run_optimize()
        assert bitmap.container_kinds()["run"] >= 1
        assert bitmap.byte_size() < before
        assert len(bitmap) == 10_000
        assert 9_999 in bitmap and 10_000 not in bitmap

    def test_run_container_add_converts_back(self):
        bitmap = RoaringBitmap(range(100))
        bitmap.run_optimize()
        bitmap.add(500)
        assert 500 in bitmap
        assert len(bitmap) == 101


class TestAlgebra:
    @settings(max_examples=60)
    @given(small_values, small_values)
    def test_union_matches_set_semantics(self, a, b):
        assert list(RoaringBitmap(a) | RoaringBitmap(b)) == sorted(set(a) | set(b))

    @settings(max_examples=60)
    @given(small_values, small_values)
    def test_intersection_matches_set_semantics(self, a, b):
        assert list(RoaringBitmap(a) & RoaringBitmap(b)) == sorted(set(a) & set(b))

    @settings(max_examples=60)
    @given(small_values, small_values)
    def test_intersection_cardinality(self, a, b):
        assert RoaringBitmap(a).intersection_cardinality(RoaringBitmap(b)) == len(
            set(a) & set(b)
        )

    @settings(max_examples=30)
    @given(small_values)
    def test_iteration_sorted_unique(self, values):
        assert list(RoaringBitmap(values)) == sorted(set(values))

    def test_dense_with_sparse_intersection(self):
        dense = RoaringBitmap(range(ARRAY_MAX + 100))
        sparse = RoaringBitmap([10, 20, 1 << 18])
        assert list(dense & sparse) == [10, 20]
        assert dense.intersection_cardinality(sparse) == 2

    def test_dense_union_dense(self):
        a = RoaringBitmap(range(0, 2 * ARRAY_MAX, 2))
        b = RoaringBitmap(range(1, 2 * ARRAY_MAX, 2))
        assert len(a | b) == 2 * ARRAY_MAX

    def test_run_containers_in_algebra(self):
        a = RoaringBitmap(range(1000))
        a.run_optimize()
        b = RoaringBitmap(range(500, 1500))
        assert list(a & b) == list(range(500, 1000))
        assert len(a | b) == 1500


class TestSizeAccounting:
    def test_sparse_much_smaller_than_dense_bound(self):
        bitmap = RoaringBitmap([1, 100_000, 4_000_000])
        # Three values must cost far less than three full bitset containers.
        assert bitmap.byte_size() < 3 * 8192

    def test_size_grows_with_content(self):
        small = RoaringBitmap(range(10))
        large = RoaringBitmap(range(2000))
        assert small.byte_size() < large.byte_size()
