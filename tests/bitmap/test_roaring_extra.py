"""Tests for roaring difference and removal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import RoaringBitmap

values = st.lists(st.integers(min_value=0, max_value=1 << 18), max_size=120)


class TestDifference:
    @settings(max_examples=50)
    @given(values, values)
    def test_matches_set_semantics(self, a, b):
        assert list(RoaringBitmap(a) - RoaringBitmap(b)) == sorted(set(a) - set(b))

    def test_disjoint_chunks_kept_whole(self):
        a = RoaringBitmap([1, 2, 1 << 17])
        b = RoaringBitmap([5])
        assert list(a - b) == [1, 2, 1 << 17]

    def test_difference_with_self_is_empty(self):
        a = RoaringBitmap(range(100))
        assert len(a - a) == 0


class TestRemove:
    def test_remove_present(self):
        bitmap = RoaringBitmap([1, 2, 3])
        bitmap.remove(2)
        assert list(bitmap) == [1, 3]

    def test_remove_absent_noop(self):
        bitmap = RoaringBitmap([1])
        bitmap.remove(99)
        bitmap.remove(-5)
        bitmap.remove(1 << 40)
        assert list(bitmap) == [1]

    def test_remove_last_value_drops_chunk(self):
        bitmap = RoaringBitmap([1 << 17])
        bitmap.remove(1 << 17)
        assert len(bitmap) == 0
        assert (1 << 17) not in bitmap

    @settings(max_examples=40)
    @given(values, st.integers(min_value=0, max_value=1 << 18))
    def test_remove_matches_set_semantics(self, contents, victim):
        bitmap = RoaringBitmap(contents)
        bitmap.remove(victim)
        expected = set(contents) - {victim}
        assert list(bitmap) == sorted(expected)
