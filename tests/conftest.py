"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import Dataset
from repro.datasets import uniform_dataset, zipf_dataset


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """The worked example family: six sets over tokens A..D plus extras."""
    return Dataset.from_token_lists(
        [
            ["A", "B"],
            ["A", "C"],
            ["B", "C", "D"],
            ["D"],
            ["A", "B", "C"],
            ["C", "D"],
        ]
    )


@pytest.fixture(scope="session")
def zipf_small() -> Dataset:
    """A 300-set Zipfian dataset used by many exactness tests."""
    return zipf_dataset(300, 250, (2, 10), seed=11)


@pytest.fixture(scope="session")
def uniform_small() -> Dataset:
    """A 200-set uniform dataset (the Section 4.1 model)."""
    return uniform_dataset(200, 150, (3, 8), seed=7)
