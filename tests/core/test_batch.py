"""Tests for batched query processing."""

import numpy as np
import pytest

from repro.core import (
    TokenGroupMatrix,
    batch_covered_counts,
    batch_knn_search,
    batch_range_search,
    knn_search,
    range_search,
)
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


@pytest.fixture(scope="module")
def indexed(zipf_small):
    partition = MinTokenPartitioner().partition(zipf_small, 10)
    return zipf_small, TokenGroupMatrix(zipf_small, partition.groups)


class TestBatchCoveredCounts:
    def test_matches_per_query_counts(self, indexed):
        dataset, tgm = indexed
        queries = sample_queries(dataset, 20, seed=30)
        batched = batch_covered_counts(tgm, queries)
        for i, query in enumerate(queries):
            known = [t for t in query.distinct if t < tgm.universe_size]
            np.testing.assert_array_equal(batched[i], tgm.covered_counts(known))

    def test_empty_batch(self, indexed):
        _, tgm = indexed
        assert batch_covered_counts(tgm, []).shape == (0, tgm.num_groups)

    def test_roaring_backend_fallback(self, zipf_small):
        partition = MinTokenPartitioner().partition(zipf_small, 6)
        dense = TokenGroupMatrix(zipf_small, partition.groups, backend="dense")
        roaring = TokenGroupMatrix(zipf_small, partition.groups, backend="roaring")
        queries = sample_queries(zipf_small, 5, seed=31)
        np.testing.assert_array_equal(
            batch_covered_counts(dense, queries), batch_covered_counts(roaring, queries)
        )


class TestBatchSearch:
    def test_batch_range_equals_sequential(self, indexed):
        dataset, tgm = indexed
        queries = sample_queries(dataset, 15, seed=32)
        batched = batch_range_search(dataset, tgm, queries, 0.5)
        for query, result in zip(queries, batched):
            assert result.matches == range_search(dataset, tgm, query, 0.5).matches

    def test_batch_knn_equals_sequential(self, indexed):
        dataset, tgm = indexed
        queries = sample_queries(dataset, 10, seed=33)
        batched = batch_knn_search(dataset, tgm, queries, 7)
        for query, result in zip(queries, batched):
            expected = sorted(s for _, s in knn_search(dataset, tgm, query, 7).matches)
            assert sorted(s for _, s in result.matches) == pytest.approx(expected)

    def test_stats_populated(self, indexed):
        dataset, tgm = indexed
        queries = sample_queries(dataset, 5, seed=34)
        for result in batch_range_search(dataset, tgm, queries, 0.8):
            assert result.stats.groups_scored == tgm.num_groups
            assert result.stats.groups_pruned >= 0

    def test_invalid_parameters(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError):
            batch_range_search(dataset, tgm, [], 1.5)
        with pytest.raises(ValueError):
            batch_knn_search(dataset, tgm, [], 0)
