"""The columnar CSR view and the vectorized verification kernel.

The kernel's contract is *bit-identical* similarities: for any records
(sets or multisets), any query, and any measure, ``GroupVerifier`` must
return exactly what the scalar ``measure(query, record)`` walk returns —
same floats, not approximately equal floats.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarView, make_verifier
from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.similarity import MEASURES, Similarity, get_measure
from repro.core.tokens import TokenUniverse


def random_dataset(seed: int, num_sets: int = 60, num_tokens: int = 80, multisets: bool = False) -> Dataset:
    rng = random.Random(seed)
    records = []
    for _ in range(num_sets):
        size = rng.randint(1, 12)
        if multisets:
            tokens = [rng.randrange(num_tokens) for _ in range(size)]
        else:
            tokens = rng.sample(range(num_tokens), min(size, num_tokens))
        records.append(SetRecord(tokens))
    return Dataset(records, TokenUniverse(range(num_tokens)))


class TestColumnarView:
    def test_csr_structure_matches_records(self):
        dataset = random_dataset(0, multisets=True)
        view = dataset.columnar()
        assert view.num_records == len(dataset)
        for index, record in enumerate(dataset.records):
            tokens = view.tokens_of(index)
            counts = view.counts_of(index)
            assert list(tokens) == sorted(record.distinct)
            assert {int(t): int(c) for t, c in zip(tokens, counts)} == dict(record.counts())
            assert view.size_of(index) == len(record)

    def test_plain_sets_have_unit_counts(self):
        dataset = random_dataset(1, multisets=False)
        view = dataset.columnar()
        for index in range(len(dataset)):
            assert (view.counts_of(index) == 1).all()

    def test_view_is_cached_on_the_dataset(self):
        dataset = random_dataset(2)
        assert dataset.columnar() is dataset.columnar()

    def test_sync_appends_inserted_records(self):
        dataset = random_dataset(3, num_sets=10)
        view = dataset.columnar()
        before = view.num_records
        dataset.append(SetRecord([0, 3, 5]))
        dataset.append(SetRecord([1, 1, 2]))  # multiset tail
        synced = dataset.columnar()
        assert synced is view
        assert synced.num_records == before + 2
        assert list(synced.tokens_of(before)) == [0, 3, 5]
        assert list(synced.tokens_of(before + 1)) == [1, 2]
        assert list(synced.counts_of(before + 1)) == [2, 1]
        assert synced.size_of(before + 1) == 3

    def test_incremental_sync_matches_fresh_build(self):
        dataset = random_dataset(4, num_sets=20, multisets=True)
        view = dataset.columnar()
        rng = random.Random(7)
        for _ in range(50):  # enough appends to force several capacity grows
            size = rng.randint(1, 9)
            dataset.append(SetRecord([rng.randrange(80) for _ in range(size)]))
            view.sync()
        fresh = ColumnarView(dataset)
        assert view.num_records == fresh.num_records == len(dataset)
        assert view.nnz == fresh.nnz
        for index in range(len(dataset)):
            assert (view.tokens_of(index) == fresh.tokens_of(index)).all()
            assert (view.counts_of(index) == fresh.counts_of(index)).all()
            assert view.size_of(index) == fresh.size_of(index)

    def test_byte_size_positive(self):
        assert random_dataset(5).columnar().byte_size() > 0


class TestGroupVerifier:
    @pytest.mark.parametrize("name", sorted(MEASURES))
    @pytest.mark.parametrize("multisets", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_scalar_walk(self, name, multisets, seed):
        dataset = random_dataset(seed, multisets=multisets)
        measure = get_measure(name)
        rng = random.Random(seed + 100)
        view = dataset.columnar()
        for _ in range(10):
            query = dataset.records[rng.randrange(len(dataset))]
            members = rng.sample(range(len(dataset)), rng.randint(1, len(dataset)))
            verifier = view.verifier(query, measure)
            similarities = verifier(members)
            expected = [measure(query, dataset.records[index]) for index in members]
            assert similarities.dtype == np.float64
            assert similarities.tolist() == expected  # exact, not approx

    def test_multiset_query_against_set_records(self):
        dataset = random_dataset(11, multisets=False)
        measure = get_measure("jaccard")
        query = SetRecord([0, 0, 1, 2, 2, 2])
        verifier = dataset.columnar().verifier(query, measure)
        members = list(range(len(dataset)))
        expected = [measure(query, record) for record in dataset.records]
        assert verifier(members).tolist() == expected

    def test_phantom_query_tokens_count_toward_size_only(self):
        # Tokens at/beyond the universe can overlap nothing but still
        # inflate |Q| (Section 3.1) — exactly like the scalar path.
        dataset = random_dataset(12)
        universe_size = len(dataset.universe)
        measure = get_measure("jaccard")
        query = SetRecord([0, 1, universe_size + 5, universe_size + 9])
        verifier = dataset.columnar().verifier(query, measure)
        members = list(range(len(dataset)))
        expected = [measure(query, record) for record in dataset.records]
        assert verifier(members).tolist() == expected

    def test_empty_member_list(self):
        dataset = random_dataset(13)
        verifier = dataset.columnar().verifier(dataset.records[0], get_measure("jaccard"))
        assert verifier([]).shape == (0,)

    def test_verifier_sees_records_inserted_after_build(self):
        dataset = random_dataset(14, num_sets=8)
        view = dataset.columnar()  # built before the insert
        index = dataset.append(SetRecord([0, 2, 4]))
        measure = get_measure("cosine")
        query = SetRecord([0, 2])
        verifier = view.verifier(query, measure)
        assert verifier([index]).tolist() == [measure(query, dataset.records[index])]


class TestMakeVerifier:
    def test_scalar_mode_returns_none(self):
        dataset = random_dataset(20)
        assert make_verifier(dataset, dataset.records[0], get_measure("jaccard"), "scalar") is None

    def test_unknown_mode_raises(self):
        dataset = random_dataset(21)
        with pytest.raises(ValueError, match="unknown verify mode"):
            make_verifier(dataset, dataset.records[0], get_measure("jaccard"), "simd")


overlap_triples = st.tuples(
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=40),
).filter(lambda t: t[0] <= min(t[1], t[2]))


class TestFromOverlaps:
    @pytest.mark.parametrize("name", sorted(MEASURES))
    @given(triples=st.lists(overlap_triples, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_from_overlap(self, name, triples):
        measure = get_measure(name)
        shared = np.array([t[0] for t in triples], dtype=np.int64)
        sizes_a = np.array([t[1] for t in triples], dtype=np.int64)
        sizes_b = np.array([t[2] for t in triples], dtype=np.int64)
        vectorized = measure.from_overlaps(shared, sizes_a, sizes_b)
        expected = [measure.from_overlap(*t) for t in triples]
        assert vectorized.tolist() == expected

    @pytest.mark.parametrize("name", sorted(MEASURES))
    def test_broadcasts_scalar_query_size(self, name):
        measure = get_measure(name)
        result = measure.from_overlaps(np.array([1, 2, 0]), 4, np.array([2, 5, 3]))
        expected = [measure.from_overlap(1, 4, 2), measure.from_overlap(2, 4, 5),
                    measure.from_overlap(0, 4, 3)]
        assert result.tolist() == expected

    @pytest.mark.parametrize("name", sorted(MEASURES))
    def test_zero_sizes_do_not_divide_by_zero(self, name):
        measure = get_measure(name)
        result = measure.from_overlaps(np.array([0, 0]), 0, np.array([0, 3]))
        assert result.tolist() == [measure.from_overlap(0, 0, 0), measure.from_overlap(0, 0, 3)]

    def test_base_class_fallback_loops_the_scalar_method(self):
        class Wacky(Similarity):
            name = "wacky"

            def from_overlap(self, shared, size_a, size_b):
                return shared / (1 + size_a + size_b)

            def group_upper_bound(self, covered, query_size):
                return 1.0

        measure = Wacky()
        result = measure.from_overlaps(np.array([1, 3]), 2, np.array([4, 6]))
        assert result.tolist() == [1 / 7, 3 / 9]
