"""Crash-safe compaction: interrupt ``compact_index`` everywhere.

The contract (mirroring ``test_crash_safe_save``): a compaction
interrupted at *any* injection point — its own ``compact.*`` points or
any of the fold-and-swap ``save.*`` points it rides — leaves the target
directory loadable as exactly the **old** generation (base + its intact
``delta.log``) or the **new** generation (folded base, empty delta),
never a mix.  Both generations answer queries identically, so the check
is twofold: the manifest epoch + delta presence must agree on *which*
generation survived, and the loaded engine must answer bit-identically
to the pre-crash reference either way.

The matrix is discovered, not hand-written: ``recording()`` captures the
ordered trace of a clean compaction on a scratch copy, and every
occurrence becomes one targeted injection.  A second matrix hard-kills
``repro compact`` subprocesses (SIGKILL via the ``kill`` fault action)
at every distinct point — the crash leaves no Python exception handling
to clean up, which is the scenario the two-step rename exists for.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.core import LES3, Dataset
from repro.core.delta import DELTA_LOG
from repro.core.persistence import (
    _load_engine,
    recover_interrupted_swap,
    save_engine,
)
from repro.datasets import zipf_dataset
from repro.distributed.persistence import _load_sharded, save_sharded
from repro.distributed.sharded import ShardedLES3
from repro.maintenance import compact_index
from repro.partitioning import MinTokenPartitioner
from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    armed,
    disarm,
    recording,
)


@pytest.fixture(autouse=True)
def _disarmed():
    disarm()
    yield
    disarm()


@pytest.fixture(scope="module")
def small_dataset() -> Dataset:
    return zipf_dataset(120, 160, (2, 7), seed=5)


def build_engine(dataset: Dataset) -> LES3:
    data = Dataset(list(dataset.records), dataset.universe.copy())
    return LES3.build(data, num_groups=6, partitioner=MinTokenPartitioner())


def build_sharded(dataset: Dataset) -> ShardedLES3:
    return ShardedLES3.build(
        dataset, 3, num_groups=6,
        partitioner_factory=lambda shard_id: MinTokenPartitioner(),
        strategy="range",
    )


def make_dirty(tmp_path, dataset, sharded: bool):
    """A saved generation with two pending delta ops (insert + remove)."""
    directory = tmp_path / "dirty"
    if sharded:
        engine = build_sharded(dataset)
        save_sharded(engine, directory)
    else:
        engine = build_engine(dataset)
        save_engine(engine, directory)
    engine.insert(["compact-a", "compact-b"])
    engine.remove(2)
    if sharded:
        engine.close()
    old_epoch = json.loads((directory / "manifest.json").read_text())["epoch"]
    return directory, old_epoch


def reference_answers(directory, load):
    """Queries + answers of the pre-crash state (base + delta replayed)."""
    engine = load(directory)
    queries = [engine.tokens_of(i) for i in (0, 7, 31)] + [["compact-a", "compact-b"]]
    answers = [engine.knn(q, 5).matches for q in queries]
    return len(engine.dataset), set(engine.removed), queries, answers


def record_trace(directory, tmp_path):
    """The ordered (point, detail) hits of one clean compaction."""
    probe = tmp_path / "probe"
    shutil.copytree(directory, probe)
    with recording() as trace:
        compact_index(probe)
    shutil.rmtree(probe)
    assert trace, "a compaction must traverse at least one injection point"
    return trace


def injections(trace):
    """One (point, skip) per occurrence in the trace (keyed by point alone:
    details carry directory paths that differ between runs)."""
    seen: dict[str, int] = {}
    for point, _detail in trace:
        skip = seen.get(point, 0)
        seen[point] = skip + 1
        yield point, skip


def assert_old_or_new(target, load, old_epoch, expected):
    """Post-crash: exactly the old generation or the new one, never mixed."""
    num_records, removed, queries, answers = expected
    # A hard kill between the two swap renames parks the old generation
    # at a .old-* sibling; every loader heals that first, so the check
    # does too (the explicit call keeps the epoch assertions meaningful).
    recover_interrupted_swap(target)
    assert target.exists(), "compaction must never lose the index"
    manifest = json.loads((target / "manifest.json").read_text())
    if (target / DELTA_LOG).exists():
        # Old generation: the base manifest is untouched and the delta is
        # still the one the writes produced (the load below replays it).
        assert manifest["epoch"] == old_epoch, (
            "a new manifest next to a surviving delta log is a mixed "
            "generation — the swap must be atomic"
        )
    else:
        assert manifest["epoch"] != old_epoch, (
            "the old manifest without its delta log loses committed writes"
        )
    loaded = load(target)
    try:
        assert len(loaded.dataset) == num_records
        assert set(loaded.removed) == removed
        for query, answer in zip(queries, answers):
            assert loaded.knn(query, 5).matches == answer
    finally:
        close = getattr(loaded, "close", None)
        if close is not None:
            close()


class TestCompactEngineMatrix:
    def test_interrupted_everywhere(self, small_dataset, tmp_path):
        dirty, old_epoch = make_dirty(tmp_path, small_dataset, sharded=False)
        expected = reference_answers(dirty, _load_engine)
        trace = record_trace(dirty, tmp_path)
        points = {point for point, _ in trace}
        assert {"compact.load", "compact.fold", "save.swap"} <= points
        for n, (point, skip) in enumerate(injections(trace)):
            target = tmp_path / f"fault-{n}"
            shutil.copytree(dirty, target)
            with armed(FaultPlan([FaultRule(point, skip=skip)])):
                with pytest.raises(InjectedFault):
                    compact_index(target)
            assert_old_or_new(target, _load_engine, old_epoch, expected)
            assert not list(tmp_path.glob(f"fault-{n}.tmp-*")), (
                f"staging left behind after fault at {point} #{skip}"
            )

    def test_clean_compact_folds_and_empties_delta(self, small_dataset, tmp_path):
        dirty, old_epoch = make_dirty(tmp_path, small_dataset, sharded=False)
        expected = reference_answers(dirty, _load_engine)
        stats = compact_index(dirty)
        assert stats["ops_folded"] == 2
        assert not (dirty / DELTA_LOG).exists()
        assert_old_or_new(dirty, _load_engine, old_epoch, expected)
        # Idempotent: compacting a clean generation folds nothing.
        assert compact_index(dirty)["ops_folded"] == 0


class TestCompactShardedMatrix:
    def test_interrupted_everywhere(self, small_dataset, tmp_path):
        dirty, old_epoch = make_dirty(tmp_path, small_dataset, sharded=True)
        expected = reference_answers(dirty, _load_sharded)
        trace = record_trace(dirty, tmp_path)
        for n, (point, skip) in enumerate(injections(trace)):
            target = tmp_path / f"fault-{n}"
            shutil.copytree(dirty, target)
            with armed(FaultPlan([FaultRule(point, skip=skip)])):
                with pytest.raises(InjectedFault):
                    compact_index(target)
            assert_old_or_new(target, _load_sharded, old_epoch, expected)


class TestCompactKillMatrix:
    """SIGKILL (not an exception) at every distinct point, via the CLI."""

    def test_killed_at_every_point(self, small_dataset, tmp_path):
        dirty, old_epoch = make_dirty(tmp_path, small_dataset, sharded=False)
        expected = reference_answers(dirty, _load_engine)
        points = sorted({point for point, _ in record_trace(dirty, tmp_path)})
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        for n, point in enumerate(points):
            target = tmp_path / f"kill-{n}"
            shutil.copytree(dirty, target)
            env["REPRO_FAULTS"] = FaultPlan(
                [FaultRule(point, action="kill")]
            ).to_json()
            result = subprocess.run(
                [sys.executable, "-m", "repro.cli", "compact", str(target)],
                capture_output=True, text=True, env=env, cwd=os.getcwd(),
            )
            assert result.returncode != 0, f"kill at {point} did not kill"
            assert_old_or_new(target, _load_engine, old_epoch, expected)
