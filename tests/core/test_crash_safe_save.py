"""Crash-safe saves: interrupt ``save_engine``/``save_sharded`` everywhere.

The contract under test (``atomic_directory``): a save interrupted at
*any* fsync/rename point leaves the target directory either absent or
fully loadable — for overwrites, loadable as exactly the old or the new
generation — never a half-written tree that ``load`` rejects with
:class:`PersistenceError`.

The matrix is discovered, not hand-written: ``recording()`` captures the
ordered ``(point, detail)`` trace of a clean save, and every occurrence
becomes one targeted injection via ``skip=<prior identical hits>``.
"""

from __future__ import annotations

import pytest

from repro.core import Dataset, LES3, load_engine, save_engine
from repro.datasets import zipf_dataset
from repro.distributed import ShardedLES3, load_sharded, save_sharded
from repro.partitioning import MinTokenPartitioner
from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    armed,
    disarm,
    recording,
)


@pytest.fixture(autouse=True)
def _disarmed():
    disarm()
    yield
    disarm()


def minitoken_factory(shard_id: int) -> MinTokenPartitioner:
    return MinTokenPartitioner()


@pytest.fixture(scope="module")
def small_dataset() -> Dataset:
    return zipf_dataset(120, 160, (2, 7), seed=5)


@pytest.fixture(scope="module")
def other_dataset() -> Dataset:
    return zipf_dataset(90, 160, (2, 7), seed=6)


def build_engine(dataset: Dataset) -> LES3:
    data = Dataset(list(dataset.records), dataset.universe.copy())
    return LES3.build(data, num_groups=6, partitioner=MinTokenPartitioner())


def build_sharded(dataset: Dataset) -> ShardedLES3:
    return ShardedLES3.build(
        dataset, 3, num_groups=6,
        partitioner_factory=minitoken_factory, strategy="range",
    )


def record_trace(save, tmp_path):
    """The ordered (point, detail) hits of one clean save."""
    with recording() as trace:
        save(tmp_path / "probe")
    assert trace, "a save must traverse at least one injection point"
    return trace


def injections(trace):
    """One (point, skip) per occurrence in the trace.

    Details carry the probe directory's path, which differs between
    saves, so occurrences are keyed by point alone: the *n*-th hit of a
    point in the probe is the *n*-th hit in the real save too.
    """
    seen: dict[str, int] = {}
    for point, _detail in trace:
        skip = seen.get(point, 0)
        seen[point] = skip + 1
        yield point, skip


def assert_absent_or_loads(target, load, sizes):
    """Post-crash state: absent, or loads as a complete known generation."""
    if not target.exists():
        return
    loaded = load(target)
    try:
        assert len(loaded.dataset) in sizes
    finally:
        close = getattr(loaded, "close", None)
        if close is not None:
            close()


class TestSaveEngineMatrix:
    def test_fresh_save_interrupted_everywhere(self, small_dataset, tmp_path):
        engine = build_engine(small_dataset)
        trace = record_trace(lambda d: save_engine(engine, d), tmp_path)
        for n, (point, skip) in enumerate(injections(trace)):
            target = tmp_path / f"fresh-{n}"
            plan = FaultPlan([FaultRule(point, skip=skip)])
            with armed(plan):
                with pytest.raises(InjectedFault):
                    save_engine(engine, target)
            assert_absent_or_loads(target, load_engine, {len(engine.dataset)})
            assert not list(tmp_path.glob(f"fresh-{n}.tmp-*")), (
                f"staging left behind after fault at {point} #{skip}"
            )

    def test_overwrite_interrupted_everywhere(
        self, small_dataset, other_dataset, tmp_path
    ):
        old = build_engine(small_dataset)
        new = build_engine(other_dataset)
        assert len(old.dataset) != len(new.dataset)
        trace = record_trace(lambda d: save_engine(new, d), tmp_path)
        sizes = {len(old.dataset), len(new.dataset)}
        for n, (point, skip) in enumerate(injections(trace)):
            target = tmp_path / f"over-{n}"
            save_engine(old, target)
            plan = FaultPlan([FaultRule(point, skip=skip)])
            with armed(plan):
                with pytest.raises(InjectedFault):
                    save_engine(new, target)
            assert_absent_or_loads(target, load_engine, sizes)

    def test_exception_mid_swap_rolls_old_generation_back(
        self, small_dataset, other_dataset, tmp_path
    ):
        # save.swap_mid fires between the two renames: the exception path
        # must restore the old generation rather than leave it parked.
        old = build_engine(small_dataset)
        new = build_engine(other_dataset)
        target = tmp_path / "idx"
        save_engine(old, target)
        with armed(FaultPlan([FaultRule("save.swap_mid")])):
            with pytest.raises(InjectedFault):
                save_engine(new, target)
        assert target.exists()
        assert len(load_engine(target).dataset) == len(old.dataset)

    def test_stale_siblings_cleared_by_next_save(self, small_dataset, tmp_path):
        engine = build_engine(small_dataset)
        target = tmp_path / "idx"
        for name in ("idx.tmp-999", "idx.old-999"):
            stale = tmp_path / name
            stale.mkdir()
            (stale / "junk.bin").write_bytes(b"\x00" * 16)
        save_engine(engine, target)
        assert not list(tmp_path.glob("idx.tmp-*"))
        assert not list(tmp_path.glob("idx.old-*"))
        assert len(load_engine(target).dataset) == len(engine.dataset)


class TestSaveShardedMatrix:
    def test_fresh_save_interrupted_everywhere(self, small_dataset, tmp_path):
        engine = build_sharded(small_dataset)
        trace = record_trace(lambda d: save_sharded(engine, d), tmp_path)
        for n, (point, skip) in enumerate(injections(trace)):
            target = tmp_path / f"fresh-{n}"
            plan = FaultPlan([FaultRule(point, skip=skip)])
            with armed(plan):
                with pytest.raises(InjectedFault):
                    save_sharded(engine, target)
            assert_absent_or_loads(target, load_sharded, {len(engine.dataset)})
            assert not list(tmp_path.glob(f"fresh-{n}.tmp-*"))

    def test_overwrite_interrupted_everywhere(
        self, small_dataset, other_dataset, tmp_path
    ):
        old = build_sharded(small_dataset)
        new = build_sharded(other_dataset)
        trace = record_trace(lambda d: save_sharded(new, d), tmp_path)
        sizes = {len(old.dataset), len(new.dataset)}
        for n, (point, skip) in enumerate(injections(trace)):
            target = tmp_path / f"over-{n}"
            save_sharded(old, target)
            plan = FaultPlan([FaultRule(point, skip=skip)])
            with armed(plan):
                with pytest.raises(InjectedFault):
                    save_sharded(new, target)
            assert_absent_or_loads(target, load_sharded, sizes)
