"""Tests for the Dataset container: construction, stats, persistence."""

import random

import pytest

from repro.core.dataset import Dataset
from repro.core.sets import SetRecord
from repro.core.tokens import TokenUniverse


class TestConstruction:
    def test_from_token_lists_interns(self, tiny_dataset):
        assert len(tiny_dataset) == 6
        assert len(tiny_dataset.universe) == 4

    def test_records_share_universe_ids(self, tiny_dataset):
        a_id = tiny_dataset.universe.id_of("A")
        assert a_id in tiny_dataset.records[0].distinct
        assert a_id in tiny_dataset.records[1].distinct

    def test_out_of_universe_record_rejected(self):
        with pytest.raises(ValueError, match="outside the universe"):
            Dataset([SetRecord([5])], TokenUniverse(["a"]))

    def test_append_and_getitem(self):
        dataset = Dataset.from_token_lists([["a", "b"]])
        index = dataset.append(SetRecord([0]))
        assert index == 1
        assert dataset[1] == SetRecord([0])

    def test_append_rejects_unknown_token_id(self):
        dataset = Dataset.from_token_lists([["a"]])
        with pytest.raises(ValueError):
            dataset.append(SetRecord([9]))


class TestStats:
    def test_table2_row(self, tiny_dataset):
        stats = tiny_dataset.stats()
        assert stats.num_sets == 6
        assert stats.max_set_size == 3
        assert stats.min_set_size == 1
        assert stats.avg_set_size == pytest.approx(13 / 6)
        assert stats.universe_size == 4
        assert stats.as_row() == (6, 3, 1, round(13 / 6, 1), 4)

    def test_empty_dataset_stats(self):
        stats = Dataset().stats()
        assert stats.num_sets == 0
        assert stats.avg_set_size == 0.0


class TestSampling:
    def test_sample_indices_distinct(self, zipf_small):
        indices = zipf_small.sample_indices(50, random.Random(0))
        assert len(indices) == 50
        assert len(set(indices)) == 50

    def test_sample_more_than_size_returns_all(self, tiny_dataset):
        assert tiny_dataset.sample_indices(100, random.Random(0)) == list(range(6))

    def test_sample_shares_universe(self, zipf_small):
        sub = zipf_small.sample(10, random.Random(1))
        assert sub.universe is zipf_small.universe
        assert len(sub) == 10


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, tiny_dataset):
        path = tmp_path / "sets.txt"
        tiny_dataset.save(path)
        loaded = Dataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        originals = [
            {tiny_dataset.universe.token_of(t) for t in record.distinct}
            for record in tiny_dataset.records
        ]
        reloaded = [
            {loaded.universe.token_of(t) for t in record.distinct} for record in loaded.records
        ]
        assert originals == reloaded

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "sets.txt"
        path.write_text("a b\n\nc\n")
        loaded = Dataset.load(path)
        assert len(loaded) == 2
