"""Tests for logical deletion (tombstones) in the TGM and engine."""

import pytest

from repro.core import (
    LES3,
    Dataset,
    TokenGroupMatrix,
    knn_search,
    range_search,
    validate_tgm,
)
from repro.core.updates import remove_set
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


@pytest.fixture()
def indexed(zipf_small):
    dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
    partition = MinTokenPartitioner().partition(dataset, 8)
    return dataset, TokenGroupMatrix(dataset, partition.groups)


class TestRemove:
    def test_removed_record_not_returned(self, indexed):
        dataset, tgm = indexed
        query = dataset.records[5]
        assert 5 in range_search(dataset, tgm, query, 1.0).indices()
        remove_set(tgm, 5)
        assert 5 not in range_search(dataset, tgm, query, 1.0).indices()
        assert 5 not in knn_search(dataset, tgm, query, len(dataset)).indices()

    def test_remove_unknown_record_raises(self, indexed):
        _, tgm = indexed
        with pytest.raises(KeyError):
            remove_set(tgm, 10_000)

    def test_double_remove_raises(self, indexed):
        _, tgm = indexed
        remove_set(tgm, 3)
        with pytest.raises(KeyError):
            remove_set(tgm, 3)

    def test_search_exact_on_survivors(self, indexed):
        dataset, tgm = indexed
        removed = {2, 7, 11, 30}
        for record_index in removed:
            remove_set(tgm, record_index)
        measure = tgm.measure
        for query in sample_queries(dataset, 10, seed=60):
            expected = sorted(
                (
                    (i, measure(query, dataset.records[i]))
                    for i in range(len(dataset))
                    if i not in removed and measure(query, dataset.records[i]) >= 0.5
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )
            assert range_search(dataset, tgm, query, 0.5).matches == expected

    def test_validation_accepts_declared_removals(self, indexed):
        dataset, tgm = indexed
        remove_set(tgm, 4)
        assert not validate_tgm(dataset, tgm).ok  # undeclared → orphan
        assert validate_tgm(dataset, tgm, removed={4}).ok

    def test_validation_flags_expected_absent_but_present(self, indexed):
        dataset, tgm = indexed
        report = validate_tgm(dataset, tgm, removed={4})  # never removed
        assert not report.ok
        assert 4 in report.duplicate_records


class TestRebuildBits:
    @pytest.mark.parametrize("backend", ["dense", "roaring"])
    def test_rebuild_tightens_after_deletions(self, zipf_small, backend):
        dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
        partition = MinTokenPartitioner().partition(dataset, 6)
        tgm = TokenGroupMatrix(dataset, partition.groups, backend=backend)
        victims = list(tgm.group_members[0][:10])
        for record_index in victims:
            remove_set(tgm, record_index)
        stale_vocab = tgm.group_vocabulary_size(0)
        tgm.rebuild_bits(dataset)
        assert tgm.group_vocabulary_size(0) <= stale_vocab
        # Still exact after the rebuild.
        query = dataset.records[tgm.group_members[0][0]]
        result = range_search(dataset, tgm, query, 1.0)
        assert query in [dataset.records[i] for i in result.indices()]

    def test_rebuild_preserves_exactness(self, indexed):
        dataset, tgm = indexed
        removed = {1, 9, 17}
        for record_index in removed:
            remove_set(tgm, record_index)
        tgm.rebuild_bits(dataset)
        measure = tgm.measure
        for query in sample_queries(dataset, 8, seed=61):
            expected = sorted(
                (
                    (i, measure(query, dataset.records[i]))
                    for i in range(len(dataset))
                    if i not in removed and measure(query, dataset.records[i]) >= 0.6
                ),
                key=lambda pair: (-pair[1], pair[0]),
            )
            assert range_search(dataset, tgm, query, 0.6).matches == expected


class TestEngineLifecycle:
    def test_insert_remove_insert(self):
        dataset = Dataset.from_token_lists([["a", "b"], ["c", "d"]])
        engine = LES3.build(dataset, num_groups=2, partitioner=MinTokenPartitioner())
        index, _ = engine.insert(["x", "y"])
        assert engine.knn(["x", "y"], k=1).matches[0][0] == index
        engine.remove(index)
        assert engine.knn(["x", "y"], k=1).matches[0][1] < 1.0
        new_index, _ = engine.insert(["x", "y"])
        assert engine.knn(["x", "y"], k=1).matches[0] == (new_index, 1.0)

    def test_default_group_count_rule(self, zipf_small):
        from repro.core.engine import suggest_num_groups

        assert suggest_num_groups(10_000) == 50
        assert suggest_num_groups(10) == 2
        dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
        engine = LES3.build(dataset, partitioner=MinTokenPartitioner())
        assert engine.tgm.num_groups == suggest_num_groups(len(dataset))