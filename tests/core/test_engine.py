"""Tests for the LES3 facade."""

import pytest

from repro.core import LES3, Dataset
from repro.partitioning import MinTokenPartitioner, RandomPartitioner


@pytest.fixture(scope="module")
def engine():
    dataset = Dataset.from_token_lists(
        [
            ["apple", "banana", "cherry"],
            ["banana", "cherry", "date"],
            ["x", "y"],
            ["x", "y", "z"],
            ["apple", "banana"],
            ["y", "z"],
        ]
    )
    return LES3.build(dataset, num_groups=2, partitioner=MinTokenPartitioner())


class TestBuild:
    def test_default_partitioner_is_l2p(self):
        dataset = Dataset.from_token_lists([[str(i), str(i + 1)] for i in range(60)])
        engine = LES3.build(dataset, num_groups=4, seed=1)
        assert engine.tgm.num_groups <= 4
        assert engine.tgm.num_groups >= 1

    def test_build_with_custom_partitioner_and_measure(self):
        dataset = Dataset.from_token_lists([["a", "b"], ["b", "c"], ["c", "d"]])
        engine = LES3.build(
            dataset, num_groups=3, partitioner=RandomPartitioner(), measure="cosine"
        )
        assert engine.measure.name == "cosine"

    def test_roaring_backend(self):
        dataset = Dataset.from_token_lists([["a", "b"], ["c", "d"]])
        engine = LES3.build(
            dataset, num_groups=2, partitioner=MinTokenPartitioner(), backend="roaring"
        )
        assert engine.index_bytes() > 0


class TestQueries:
    def test_knn_external_tokens(self, engine):
        result = engine.knn(["apple", "banana"], k=2)
        top_index, top_similarity = result.matches[0]
        assert top_similarity == 1.0
        assert set(engine.tokens_of(top_index)) == {"apple", "banana"}

    def test_range_external_tokens(self, engine):
        result = engine.range(["x", "y"], threshold=0.5)
        returned = {frozenset(engine.tokens_of(i)) for i in result.indices()}
        assert frozenset({"x", "y"}) in returned
        assert frozenset({"x", "y", "z"}) in returned

    def test_unknown_query_tokens_dilute_similarity(self, engine):
        exact = engine.knn(["apple", "banana"], k=1).matches[0][1]
        diluted = engine.knn(["apple", "banana", "from-mars"], k=1).matches[0][1]
        assert diluted < exact

    def test_fully_unknown_query_matches_nothing_above_zero(self, engine):
        result = engine.range(["q1", "q2"], threshold=0.1)
        assert result.matches == []

    def test_duplicate_unknown_tokens_single_phantom(self, engine):
        # The same unseen token twice is one multiset token id, |Q| = 3.
        result = engine.knn(["apple", "banana", "ghost", "ghost"], k=1)
        assert result.matches[0][1] == pytest.approx(0.5)


class TestInsert:
    def test_insert_then_query(self):
        dataset = Dataset.from_token_lists([["a", "b"], ["c", "d"]])
        engine = LES3.build(dataset, num_groups=2, partitioner=MinTokenPartitioner())
        index, _ = engine.insert(["a", "b", "new-token"])
        result = engine.knn(["a", "b", "new-token"], k=1)
        assert result.matches[0] == (index, 1.0)

    def test_repr(self, engine):
        assert "LES3" in repr(engine)
