"""The fault-injection harness itself: rules, arming, tokens, recording."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.testing.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    arm,
    armed,
    disarm,
    fault_point,
    recording,
)


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no plan armed."""
    disarm()
    yield
    disarm()


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule("p", action="explode")
        with pytest.raises(ValueError, match="skip"):
            FaultRule("p", skip=-1)
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultRule("p", delay_seconds=-0.1)

    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule("save.swap"),
                FaultRule("shard.task", action="kill", skip=3, token="/tmp/t"),
                FaultRule("storage.open", action="delay", delay_seconds=0.5,
                          match="shard=1", times=-1),
            ]
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert [r.to_payload() for r in restored.rules] == [
            r.to_payload() for r in plan.rules
        ]
        # Runtime counters are not serialized.
        assert "hits" not in json.loads(plan.to_json())["rules"][0]


class TestFirePolicies:
    def test_noop_when_disarmed(self):
        assert active_plan() is None
        fault_point("anything", "detail")  # must not raise

    def test_fail_action(self):
        with armed(FaultPlan([FaultRule("boom")])):
            with pytest.raises(InjectedFault, match="boom"):
                fault_point("boom", "ctx")

    def test_point_and_match_filtering(self):
        rule = FaultRule("shard.exec", match="shard=1", times=-1)
        with armed(FaultPlan([rule])):
            fault_point("other.point", "shard=1")  # wrong point
            fault_point("shard.exec", "knn:shard=0")  # wrong detail
            with pytest.raises(InjectedFault):
                fault_point("shard.exec", "knn:shard=1")

    def test_skip_then_times(self):
        rule = FaultRule("p", skip=2, times=2)
        with armed(FaultPlan([rule])):
            fault_point("p")  # skipped
            fault_point("p")  # skipped
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("p")
            fault_point("p")  # budget exhausted: no longer fires
        assert rule.hits == 5 and rule.fired == 2

    def test_times_forever(self):
        with armed(FaultPlan([FaultRule("p", times=-1)])):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    fault_point("p")

    def test_delay_action(self):
        plan = FaultPlan([FaultRule("slow", action="delay", delay_seconds=0.05)])
        with armed(plan):
            start = time.perf_counter()
            fault_point("slow")
            assert time.perf_counter() - start >= 0.05

    def test_token_fires_exactly_once(self, tmp_path):
        token = tmp_path / "once.tok"
        plan = FaultPlan([FaultRule("p", times=-1, token=str(token))])
        with armed(plan):
            with pytest.raises(InjectedFault):
                fault_point("p")
            fault_point("p")  # the token is claimed: never again
        assert token.exists()

    def test_armed_restores_previous_plan(self):
        outer = FaultPlan([])
        arm(outer)
        with armed(FaultPlan([FaultRule("p")])):
            assert active_plan() is not outer
        assert active_plan() is outer


class TestRecording:
    def test_recording_captures_without_firing(self):
        with armed(FaultPlan([FaultRule("p", times=-1)])):
            with recording() as trace:
                with pytest.raises(InjectedFault):
                    fault_point("p", "d1")
            fault_point("other", "d2")  # after the block: not captured
        assert trace == [("p", "d1")]

    def test_recording_is_noop_armed_free(self):
        with recording() as trace:
            fault_point("a", "1")
            fault_point("b", "2")
        assert trace == [("a", "1"), ("b", "2")]


class TestEnvArming:
    def test_env_var_arms_subprocess(self, tmp_path):
        plan = FaultPlan([FaultRule("env.point")])
        code = (
            "from repro.testing.faults import fault_point, InjectedFault\n"
            "try:\n"
            "    fault_point('env.point')\n"
            "except InjectedFault:\n"
            "    print('FIRED')\n"
        )
        env = dict(os.environ, REPRO_FAULTS=plan.to_json())
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH", "")])
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
            check=True,
        )
        assert out.stdout.strip() == "FIRED"
