"""Tests for the hierarchical TGM (nesting, exactness, cost accounting)."""

import pytest

from repro.baselines import BruteForceSearch
from repro.core import HierarchicalTGM, TokenGroupMatrix, range_search
from repro.datasets import powerlaw_similarity_dataset
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


def nested_levels(dataset, coarse_n, fine_n):
    """Build nested partitions by splitting each coarse group evenly."""
    coarse = MinTokenPartitioner().partition(dataset, coarse_n).groups
    per_group = max(fine_n // max(len(coarse), 1), 1)
    fine = []
    for group in coarse:
        chunk = max(len(group) // per_group, 1)
        for start in range(0, len(group), chunk):
            fine.append(group[start : start + chunk])
    return [coarse, fine]


@pytest.fixture(scope="module")
def dissimilar_dataset():
    return powerlaw_similarity_dataset(300, 500, 8, alpha=3.5, seed=9)


class TestConstruction:
    def test_rejects_non_nested_levels(self, tiny_dataset):
        with pytest.raises(ValueError, match="nested"):
            HierarchicalTGM(tiny_dataset, [[[0, 1], [2, 3, 4, 5]], [[0, 2], [1, 3, 4, 5]]])

    def test_rejects_empty_levels(self, tiny_dataset):
        with pytest.raises(ValueError, match="at least one level"):
            HierarchicalTGM(tiny_dataset, [])

    def test_num_levels_and_size(self, dissimilar_dataset):
        levels = nested_levels(dissimilar_dataset, 4, 16)
        htgm = HierarchicalTGM(dissimilar_dataset, levels)
        assert htgm.num_levels == 2
        assert htgm.byte_size() == sum(level.byte_size() for level in htgm.levels)


class TestFromCascade:
    def test_builds_from_level_partitions(self, dissimilar_dataset):
        from repro.learn import L2PPartitioner

        l2p = L2PPartitioner(
            pairs_per_model=400, epochs=2, initial_groups=4, min_group_size=4, seed=0
        )
        l2p.partition(dissimilar_dataset, 16)
        htgm = HierarchicalTGM.from_cascade(dissimilar_dataset, l2p, [4, 16])
        assert htgm.num_levels == 2
        brute = BruteForceSearch(dissimilar_dataset)
        query = dissimilar_dataset.records[0]
        assert (
            htgm.range_search(dissimilar_dataset, query, 0.7).matches
            == brute.range_search(query, 0.7).matches
        )

    def test_unavailable_level_rejected(self, dissimilar_dataset):
        from repro.learn import L2PPartitioner

        l2p = L2PPartitioner(
            pairs_per_model=400, epochs=2, initial_groups=4, min_group_size=4, seed=0
        )
        l2p.partition(dissimilar_dataset, 16)
        with pytest.raises(ValueError, match="no level with 7 groups"):
            HierarchicalTGM.from_cascade(dissimilar_dataset, l2p, [7, 16])


class TestExactness:
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_range_matches_brute_force(self, dissimilar_dataset, threshold):
        htgm = HierarchicalTGM(dissimilar_dataset, nested_levels(dissimilar_dataset, 4, 16))
        brute = BruteForceSearch(dissimilar_dataset)
        for query in sample_queries(dissimilar_dataset, 10, seed=1):
            assert (
                htgm.range_search(dissimilar_dataset, query, threshold).matches
                == brute.range_search(query, threshold).matches
            )

    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_knn_matches_brute_force(self, dissimilar_dataset, k):
        htgm = HierarchicalTGM(dissimilar_dataset, nested_levels(dissimilar_dataset, 4, 16))
        brute = BruteForceSearch(dissimilar_dataset)
        for query in sample_queries(dissimilar_dataset, 10, seed=2):
            expected = sorted(s for _, s in brute.knn_search(query, k).matches)
            actual = sorted(s for _, s in htgm.knn_search(dissimilar_dataset, query, k).matches)
            assert actual == pytest.approx(expected)

    def test_invalid_inputs(self, dissimilar_dataset):
        htgm = HierarchicalTGM(dissimilar_dataset, nested_levels(dissimilar_dataset, 2, 4))
        with pytest.raises(ValueError):
            htgm.range_search(dissimilar_dataset, dissimilar_dataset.records[0], -0.1)
        with pytest.raises(ValueError):
            htgm.knn_search(dissimilar_dataset, dissimilar_dataset.records[0], 0)


class TestCostAccounting:
    def test_hierarchy_saves_columns_on_dissimilar_data(self, dissimilar_dataset):
        """Section 7.7: HTGM wins when most sets are dissimilar (large α)."""
        levels = nested_levels(dissimilar_dataset, 4, 32)
        htgm = HierarchicalTGM(dissimilar_dataset, levels)
        flat = TokenGroupMatrix(dissimilar_dataset, levels[-1])
        htgm_columns = 0
        flat_columns = 0
        for query in sample_queries(dissimilar_dataset, 20, seed=3):
            htgm_columns += htgm.range_search(dissimilar_dataset, query, 0.8).stats.columns_visited
            flat_columns += range_search(
                dissimilar_dataset, flat, query, 0.8
            ).stats.columns_visited
        assert htgm_columns < flat_columns

    def test_three_level_htgm_exact_and_cheaper(self, dissimilar_dataset):
        """A 2+8+32 stack stays exact and saves columns over the flat TGM."""
        coarse = MinTokenPartitioner().partition(dissimilar_dataset, 2).groups
        middle = []
        for group in coarse:
            third = max(len(group) // 4, 1)
            middle.extend(group[i : i + third] for i in range(0, len(group), third))
        fine = []
        for group in middle:
            chunk = max(len(group) // 4, 1)
            fine.extend(group[i : i + chunk] for i in range(0, len(group), chunk))
        htgm = HierarchicalTGM(dissimilar_dataset, [coarse, middle, fine])
        assert htgm.num_levels == 3
        flat = TokenGroupMatrix(dissimilar_dataset, fine)
        brute = BruteForceSearch(dissimilar_dataset)
        htgm_columns = flat_columns = 0
        for query in sample_queries(dissimilar_dataset, 10, seed=4):
            h = htgm.range_search(dissimilar_dataset, query, 0.8)
            f = range_search(dissimilar_dataset, flat, query, 0.8)
            assert h.matches == brute.range_search(query, 0.8).matches == f.matches
            htgm_columns += h.stats.columns_visited
            flat_columns += f.stats.columns_visited
        assert htgm_columns < flat_columns

    def test_single_level_htgm_equals_tgm_costs(self, dissimilar_dataset):
        levels = nested_levels(dissimilar_dataset, 4, 16)
        htgm = HierarchicalTGM(dissimilar_dataset, [levels[-1]])
        flat = TokenGroupMatrix(dissimilar_dataset, levels[-1])
        query = dissimilar_dataset.records[0]
        a = htgm.range_search(dissimilar_dataset, query, 0.5).stats
        b = range_search(dissimilar_dataset, flat, query, 0.5).stats
        assert a.similarity_computations == b.similarity_computations
        assert a.columns_visited == b.columns_visited
