"""Tests for the TGM-accelerated similarity self-join."""

import pytest

from repro.core import Dataset, TokenGroupMatrix, similarity_self_join
from repro.partitioning import MinTokenPartitioner


def brute_force_join(dataset, threshold, measure):
    pairs = []
    records = dataset.records
    for x in range(len(records)):
        for y in range(x + 1, len(records)):
            similarity = measure(records[x], records[y])
            if similarity >= threshold:
                pairs.append((x, y, similarity))
    return sorted(pairs)


@pytest.fixture(scope="module")
def indexed(zipf_small):
    partition = MinTokenPartitioner().partition(zipf_small, 12)
    return zipf_small, TokenGroupMatrix(zipf_small, partition.groups)


class TestExactness:
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_matches_brute_force(self, indexed, threshold):
        dataset, tgm = indexed
        result = similarity_self_join(dataset, tgm, threshold)
        expected = brute_force_join(dataset, threshold, tgm.measure)
        assert result.pairs == expected

    def test_cosine_join(self, zipf_small):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        tgm = TokenGroupMatrix(zipf_small, partition.groups, measure="cosine")
        result = similarity_self_join(zipf_small, tgm, 0.8)
        assert result.pairs == brute_force_join(zipf_small, 0.8, tgm.measure)

    def test_duplicates_found(self):
        dataset = Dataset.from_token_lists([["a", "b"], ["a", "b"], ["c", "d"]])
        tgm = TokenGroupMatrix(dataset, [[0, 2], [1]])
        result = similarity_self_join(dataset, tgm, 1.0)
        assert result.pairs == [(0, 1, 1.0)]


class TestPruning:
    def test_group_pairs_pruned_on_clustered_data(self):
        """Group-pair pruning works when cross-group vocabularies barely
        overlap (token-disjoint clusters); on heavy-tailed data the bound
        is weak and the per-pair size filter carries the pruning."""
        import random

        rng = random.Random(6)
        lists = []
        for cluster in range(4):
            base = cluster * 40
            for _ in range(20):
                lists.append([str(t) for t in rng.sample(range(base, base + 30), 6)])
        dataset = Dataset.from_token_lists(lists)
        tgm = TokenGroupMatrix(
            dataset, [list(range(c * 20, (c + 1) * 20)) for c in range(4)]
        )
        result = similarity_self_join(dataset, tgm, 0.4)
        assert result.stats.groups_pruned > 0
        total_pairs = len(dataset) * (len(dataset) - 1) // 2
        assert result.stats.candidates_verified < total_pairs
        assert result.pairs == brute_force_join(dataset, 0.4, tgm.measure)

    def test_higher_threshold_verifies_less(self, indexed):
        dataset, tgm = indexed
        loose = similarity_self_join(dataset, tgm, 0.5).stats.candidates_verified
        strict = similarity_self_join(dataset, tgm, 0.95).stats.candidates_verified
        assert strict <= loose


class TestValidation:
    def test_invalid_threshold(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError):
            similarity_self_join(dataset, tgm, 0.0)
        with pytest.raises(ValueError):
            similarity_self_join(dataset, tgm, 1.5)

    def test_result_iterable_and_sized(self, indexed):
        dataset, tgm = indexed
        result = similarity_self_join(dataset, tgm, 0.9)
        assert len(result) == len(list(result))
