"""Tests for the TGM-accelerated similarity self-join.

The columnar verification path (``verify="columnar"``, the default) must
return bit-identical pairs to the scalar per-pair walk — same records,
same float64 similarities, same order — for every measure, backend, tiling
budget, and after updates.
"""

import random

import pytest

from repro.core import (
    LES3,
    Dataset,
    TokenGroupMatrix,
    similarity_join_between,
    similarity_self_join,
)
from repro.datasets import zipf_dataset
from repro.partitioning import MinTokenPartitioner


def brute_force_join(dataset, threshold, measure):
    pairs = []
    records = dataset.records
    for x in range(len(records)):
        for y in range(x + 1, len(records)):
            similarity = measure(records[x], records[y])
            if similarity >= threshold:
                pairs.append((x, y, similarity))
    return sorted(pairs)


@pytest.fixture(scope="module")
def indexed(zipf_small):
    partition = MinTokenPartitioner().partition(zipf_small, 12)
    return zipf_small, TokenGroupMatrix(zipf_small, partition.groups)


class TestExactness:
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_matches_brute_force(self, indexed, threshold):
        dataset, tgm = indexed
        result = similarity_self_join(dataset, tgm, threshold)
        expected = brute_force_join(dataset, threshold, tgm.measure)
        assert result.pairs == expected

    def test_cosine_join(self, zipf_small):
        partition = MinTokenPartitioner().partition(zipf_small, 8)
        tgm = TokenGroupMatrix(zipf_small, partition.groups, measure="cosine")
        result = similarity_self_join(zipf_small, tgm, 0.8)
        assert result.pairs == brute_force_join(zipf_small, 0.8, tgm.measure)

    def test_duplicates_found(self):
        dataset = Dataset.from_token_lists([["a", "b"], ["a", "b"], ["c", "d"]])
        tgm = TokenGroupMatrix(dataset, [[0, 2], [1]])
        result = similarity_self_join(dataset, tgm, 1.0)
        assert result.pairs == [(0, 1, 1.0)]


class TestPruning:
    def test_group_pairs_pruned_on_clustered_data(self):
        """Group-pair pruning works when cross-group vocabularies barely
        overlap (token-disjoint clusters); on heavy-tailed data the bound
        is weak and the per-pair size filter carries the pruning."""
        import random

        rng = random.Random(6)
        lists = []
        for cluster in range(4):
            base = cluster * 40
            for _ in range(20):
                lists.append([str(t) for t in rng.sample(range(base, base + 30), 6)])
        dataset = Dataset.from_token_lists(lists)
        tgm = TokenGroupMatrix(
            dataset, [list(range(c * 20, (c + 1) * 20)) for c in range(4)]
        )
        result = similarity_self_join(dataset, tgm, 0.4)
        assert result.stats.groups_pruned > 0
        total_pairs = len(dataset) * (len(dataset) - 1) // 2
        assert result.stats.candidates_verified < total_pairs
        assert result.pairs == brute_force_join(dataset, 0.4, tgm.measure)

    def test_higher_threshold_verifies_less(self, indexed):
        dataset, tgm = indexed
        loose = similarity_self_join(dataset, tgm, 0.5).stats.candidates_verified
        strict = similarity_self_join(dataset, tgm, 0.95).stats.candidates_verified
        assert strict <= loose


class TestColumnarEquivalence:
    """verify="columnar" must be a pure throughput knob: identical pairs."""

    @pytest.mark.parametrize(
        "measure", sorted(["jaccard", "dice", "cosine", "overlap", "containment"])
    )
    @pytest.mark.parametrize("backend", ["dense", "roaring"])
    def test_measures_and_backends(self, zipf_small, measure, backend):
        partition = MinTokenPartitioner().partition(zipf_small, 10)
        tgm = TokenGroupMatrix(zipf_small, partition.groups, measure, backend)
        for threshold in (0.4, 0.8):
            scalar = similarity_self_join(zipf_small, tgm, threshold, verify="scalar")
            columnar = similarity_self_join(zipf_small, tgm, threshold, verify="columnar")
            assert columnar.pairs == scalar.pairs  # identical floats, identical order
            assert columnar.pairs == brute_force_join(zipf_small, threshold, tgm.measure)

    def test_tiny_tiling_budget_is_exact(self, indexed):
        """max_cells=1 forces single-record tiles; pairs must not change."""
        dataset, tgm = indexed
        expected = similarity_self_join(dataset, tgm, 0.5, verify="scalar").pairs
        for max_cells in (1, 7, 64):
            tiled = similarity_self_join(
                dataset, tgm, 0.5, verify="columnar", max_cells=max_cells
            )
            assert tiled.pairs == expected

    def test_multiset_records(self):
        rng = random.Random(3)
        dataset = Dataset.from_token_lists(
            [
                [rng.randrange(40) for _ in range(rng.randint(1, 9))]
                for _ in range(70)
            ]
        )
        partition = MinTokenPartitioner().partition(dataset, 6)
        tgm = TokenGroupMatrix(dataset, partition.groups)
        scalar = similarity_self_join(dataset, tgm, 0.5, verify="scalar")
        columnar = similarity_self_join(dataset, tgm, 0.5, verify="columnar")
        assert columnar.pairs == scalar.pairs
        assert columnar.pairs == brute_force_join(dataset, 0.5, tgm.measure)

    def test_equivalence_after_inserts_and_removes(self):
        dataset = zipf_dataset(100, 160, (2, 7), seed=19)
        engine = LES3.build(dataset, num_groups=5, partitioner=MinTokenPartitioner())
        engine.join(0.5)  # build the columnar view before mutating
        engine.insert(["77", "78", "brand-new-token"])
        engine.insert(["1", "1", "2"])
        engine.remove(3)
        engine.remove(41)
        for threshold in (0.3, 0.7):
            scalar = engine.join(threshold, verify="scalar")
            columnar = engine.join(threshold, verify="columnar")
            assert columnar.pairs == scalar.pairs
            assert not any(x in (3, 41) or y in (3, 41) for x, y, _ in columnar.pairs)

    def test_engine_default_mode(self, zipf_small):
        engine = LES3.build(zipf_small, num_groups=8, partitioner=MinTokenPartitioner())
        assert engine.join(0.6).pairs == engine.join(0.6, verify="scalar").pairs


class TestJoinBetween:
    def test_tiles_the_self_join(self, zipf_small):
        """self(A) + self(B) + between(A, B) == self-join of everything."""
        partition = MinTokenPartitioner().partition(zipf_small, 12)
        half = len(partition.groups) // 2
        tgm_all = TokenGroupMatrix(zipf_small, partition.groups)
        tgm_a = TokenGroupMatrix(zipf_small, partition.groups[:half])
        tgm_b = TokenGroupMatrix(zipf_small, partition.groups[half:])
        for threshold in (0.4, 0.7):
            expected = similarity_self_join(zipf_small, tgm_all, threshold).pairs
            for verify in ("scalar", "columnar"):
                tiled = sorted(
                    similarity_self_join(zipf_small, tgm_a, threshold, verify).pairs
                    + similarity_self_join(zipf_small, tgm_b, threshold, verify).pairs
                    + similarity_join_between(
                        zipf_small, tgm_a, tgm_b, threshold, verify
                    ).pairs
                )
                assert tiled == expected

    def test_overlapping_tgms_never_self_pair(self):
        """A record the TGMs share is skipped identically in both modes."""
        dataset = Dataset.from_token_lists([["a", "b"], ["a", "b", "c"], ["x", "y"]])
        tgm_a = TokenGroupMatrix(dataset, [[0, 1]])
        tgm_b = TokenGroupMatrix(dataset, [[0, 2]])
        scalar = similarity_join_between(dataset, tgm_a, tgm_b, 0.5, "scalar")
        columnar = similarity_join_between(dataset, tgm_a, tgm_b, 0.5, "columnar")
        assert columnar.pairs == scalar.pairs
        assert all(x != y for x, y, _ in columnar.pairs)

    def test_precomputed_profiles_match(self, zipf_small):
        from repro.core import group_join_profiles

        partition = MinTokenPartitioner().partition(zipf_small, 6)
        tgm_a = TokenGroupMatrix(zipf_small, partition.groups[:3])
        tgm_b = TokenGroupMatrix(zipf_small, partition.groups[3:])
        profiles_a = group_join_profiles(zipf_small, tgm_a.group_members)
        profiles_b = group_join_profiles(zipf_small, tgm_b.group_members)
        assert similarity_join_between(
            zipf_small, tgm_a, tgm_b, 0.5,
            profiles_a=profiles_a, profiles_b=profiles_b,
        ).pairs == similarity_join_between(zipf_small, tgm_a, tgm_b, 0.5).pairs
        assert similarity_self_join(
            zipf_small, tgm_a, 0.5, profiles=profiles_a
        ).pairs == similarity_self_join(zipf_small, tgm_a, 0.5).pairs

    def test_measure_mismatch_rejected(self, zipf_small):
        partition = MinTokenPartitioner().partition(zipf_small, 4)
        tgm_a = TokenGroupMatrix(zipf_small, partition.groups[:2], "jaccard")
        tgm_b = TokenGroupMatrix(zipf_small, partition.groups[2:], "cosine")
        with pytest.raises(ValueError, match="measure"):
            similarity_join_between(zipf_small, tgm_a, tgm_b, 0.5)


class TestValidation:
    def test_invalid_threshold(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError):
            similarity_self_join(dataset, tgm, 0.0)
        with pytest.raises(ValueError):
            similarity_self_join(dataset, tgm, 1.5)

    def test_invalid_verify_mode(self, indexed):
        dataset, tgm = indexed
        with pytest.raises(ValueError, match="verify"):
            similarity_self_join(dataset, tgm, 0.5, verify="quantum")

    def test_result_iterable_and_sized(self, indexed):
        dataset, tgm = indexed
        result = similarity_self_join(dataset, tgm, 0.9)
        assert len(result) == len(list(result))
