"""Tests for Definition 2.3 pruning efficiency and QueryStats."""

import pytest

from repro.core.metrics import (
    QueryStats,
    knn_pruning_efficiency,
    range_pruning_efficiency,
)


class TestKnnPE:
    def test_perfect_filter(self):
        # Candidates == k → PE = 1.
        assert knn_pruning_efficiency(1000, candidates=10, k=10) == 1.0

    def test_brute_force(self):
        # Candidates == |D| → PE = k / |D|.
        assert knn_pruning_efficiency(1000, candidates=1000, k=10) == pytest.approx(0.01)

    def test_empty_database(self):
        assert knn_pruning_efficiency(0, 0, 5) == 1.0


class TestRangePE:
    def test_perfect_filter(self):
        assert range_pruning_efficiency(1000, candidates=7, result_size=7) == 1.0

    def test_brute_force(self):
        assert range_pruning_efficiency(100, candidates=100, result_size=4) == pytest.approx(
            0.04
        )

    def test_monotone_in_candidates(self):
        tighter = range_pruning_efficiency(100, 10, 5)
        looser = range_pruning_efficiency(100, 50, 5)
        assert tighter > looser


class TestQueryStats:
    def test_merge_accumulates(self):
        a = QueryStats(candidates_verified=3, similarity_computations=3, result_size=1)
        b = QueryStats(candidates_verified=2, similarity_computations=2, groups_pruned=4)
        a.merge(b)
        assert a.candidates_verified == 5
        assert a.similarity_computations == 5
        assert a.groups_pruned == 4
        assert a.result_size == 1

    def test_extra_dict_is_per_instance(self):
        a, b = QueryStats(), QueryStats()
        a.extra["x"] = 1
        assert b.extra == {}
