"""Single-engine out-of-core loads: ``load_engine(..., mode="mmap")``.

Contract: an mmap load answers knn/range/join bit-identically to the
in-memory text load of the same save — deletes and verify mode included —
without materializing the dataset's records; pre-v3 directories (no
``dataset.bin``) and directories whose binary header disagrees with the
manifest refuse to load.
"""

from __future__ import annotations

import json

import pytest

from repro.core import LES3, Dataset, PersistenceError, load_engine, save_engine
from repro.partitioning import MinTokenPartitioner
from repro.storage.columnar_file import LazyRecords
from repro.workloads import sample_queries


@pytest.fixture()
def engine(zipf_small):
    dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
    return LES3.build(dataset, num_groups=8, partitioner=MinTokenPartitioner())


@pytest.fixture()
def index_dir(engine, tmp_path):
    save_engine(engine, tmp_path / "index")
    return tmp_path / "index"


def str_queries(engine, count, seed=3):
    """Query token lists in the string normal form both load paths share."""
    return [
        [str(engine.dataset.universe.token_of(t)) for t in query.tokens]
        for query in sample_queries(engine.dataset, count, seed=seed)
    ]


class TestMmapEquivalence:
    def test_knn_range_join_bit_identical(self, engine, index_dir):
        memory = load_engine(index_dir)
        mapped = load_engine(index_dir, mode="mmap")
        for tokens in str_queries(engine, 10):
            assert memory.knn(tokens, k=5).matches == mapped.knn(tokens, k=5).matches
            assert (
                memory.range(tokens, 0.4).matches == mapped.range(tokens, 0.4).matches
            )
        assert memory.join(0.5).pairs == mapped.join(0.5).pairs

    def test_scalar_verify_matches_too(self, index_dir):
        memory = load_engine(index_dir)
        mapped = load_engine(index_dir, mode="mmap")
        tokens = [str(t) for t in memory.tokens_of(0)]
        assert (
            memory.knn(tokens, k=4, verify="scalar").matches
            == mapped.knn(tokens, k=4, verify="scalar").matches
            == mapped.knn(tokens, k=4, verify="columnar").matches
        )

    def test_mmap_load_does_not_materialize_records(self, index_dir):
        mapped = load_engine(index_dir, mode="mmap")
        records = mapped.dataset.records
        assert isinstance(records, LazyRecords)
        assert len(records._cache) == 0 and not records._overlay
        # A columnar-path query still materializes nothing.
        tokens = [str(mapped.dataset.universe.token_of(0))]
        mapped.knn(tokens, k=3)
        assert len(records._cache) == 0

    def test_deletes_round_trip_through_mmap(self, engine, tmp_path):
        engine.remove(0)
        engine.remove(7)
        save_engine(engine, tmp_path / "index")
        mapped = load_engine(tmp_path / "index", mode="mmap")
        assert mapped.removed == {0, 7}
        native = engine.tokens_of(0)
        tokens = [str(t) for t in native]
        assert 0 not in mapped.knn(tokens, k=5).indices()
        assert mapped.knn(tokens, k=5).matches == engine.knn(native, k=5).matches

    def test_insert_on_mapped_engine_still_works(self, index_dir):
        mapped = load_engine(index_dir, mode="mmap")
        before = len(mapped.dataset)
        index, _ = mapped.insert(["brand-new-token", "another-one"])
        assert index == before
        assert mapped.knn(["brand-new-token", "another-one"], k=1).matches == [
            (index, 1.0)
        ]

    def test_stats_served_from_the_mapping(self, engine, index_dir):
        mapped = load_engine(index_dir, mode="mmap")
        assert mapped.dataset.stats() == engine.dataset.stats()
        assert len(mapped.dataset.records._cache) == 0


class TestMmapRefusals:
    def test_unknown_mode(self, index_dir):
        with pytest.raises(ValueError, match="unknown load mode"):
            load_engine(index_dir, mode="laser")

    @pytest.mark.parametrize("version", [1, 2])
    def test_pre_v3_directory_has_no_binary_dataset(self, index_dir, version):
        """v1/v2 saves (text only) still load in memory mode, never mmap."""
        (index_dir / "dataset.bin").unlink()
        manifest = json.loads((index_dir / "manifest.json").read_text())
        manifest["format_version"] = version
        for field in ("dataset_digest", "dataset_bin_digest"):
            manifest.pop(field, None)
        if version == 1:
            for field in ("verify", "deleted"):
                manifest.pop(field, None)
        (index_dir / "manifest.json").write_text(json.dumps(manifest))
        assert load_engine(index_dir).verify == "columnar"  # memory path is fine
        with pytest.raises(PersistenceError, match="saved before format v3"):
            load_engine(index_dir, mode="mmap")

    def test_header_manifest_record_count_mismatch(self, index_dir):
        manifest = json.loads((index_dir / "manifest.json").read_text())
        manifest["num_records"] += 1
        (index_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="mixes files from different saves"):
            load_engine(index_dir, mode="mmap")

    def test_truncated_binary_dataset(self, index_dir):
        path = index_dir / "dataset.bin"
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(PersistenceError, match="shorter than its header claims"):
            load_engine(index_dir, mode="mmap")
        # The text path is untouched by binary corruption.
        assert load_engine(index_dir).num_groups > 0
