"""Tests for engine persistence (save/load round trips, corruption checks)."""

import json

import pytest

from repro.core import LES3, Dataset, load_engine, save_engine
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


@pytest.fixture()
def engine(zipf_small):
    dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
    return LES3.build(dataset, num_groups=8, partitioner=MinTokenPartitioner())


class TestRoundTrip:
    def test_structure_preserved(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        assert loaded.tgm.num_groups == engine.tgm.num_groups
        assert len(loaded.dataset) == len(engine.dataset)
        assert sorted(map(len, loaded.tgm.group_members)) == sorted(
            map(len, engine.tgm.group_members)
        )

    def test_external_token_queries_agree(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        for query in sample_queries(engine.dataset, 10, seed=41):
            tokens = [engine.dataset.universe.token_of(t) for t in query.distinct]
            original = {
                (frozenset(engine.tokens_of(i)), round(s, 12))
                for i, s in engine.range(tokens, 0.5).matches
            }
            reloaded = {
                (frozenset(str(t) for t in loaded.tokens_of(i)), round(s, 12))
                for i, s in loaded.range([str(t) for t in tokens], 0.5).matches
            }
            assert {(frozenset(str(t) for t in ts), s) for ts, s in original} == reloaded

    def test_measure_and_backend_preserved(self, zipf_small, tmp_path):
        dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
        engine = LES3.build(
            dataset,
            num_groups=4,
            partitioner=MinTokenPartitioner(),
            measure="cosine",
            backend="roaring",
        )
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        assert loaded.measure.name == "cosine"
        assert loaded.tgm.backend == "roaring"

    def test_save_is_idempotent(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        save_engine(engine, tmp_path / "index")
        assert load_engine(tmp_path / "index").tgm.num_groups == engine.tgm.num_groups


class TestCorruptionDetection:
    def test_version_mismatch(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            load_engine(tmp_path / "index")

    def test_record_count_mismatch(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        data_path = tmp_path / "index" / "dataset.txt"
        data_path.write_text(data_path.read_text() + "extra tokens here\n")
        with pytest.raises(ValueError, match="corrupt"):
            load_engine(tmp_path / "index")

    def test_groups_not_covering(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        groups_path = tmp_path / "index" / "groups.json"
        groups = json.loads(groups_path.read_text())
        groups[0] = groups[0][1:]  # drop one record
        groups_path.write_text(json.dumps(groups))
        with pytest.raises(ValueError, match="cover"):
            load_engine(tmp_path / "index")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_engine(tmp_path / "nope")
