"""Tests for engine persistence (save/load round trips, corruption checks)."""

import json

import pytest

from repro.core import LES3, Dataset, load_engine, save_engine
from repro.partitioning import MinTokenPartitioner
from repro.workloads import sample_queries


@pytest.fixture()
def engine(zipf_small):
    dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
    return LES3.build(dataset, num_groups=8, partitioner=MinTokenPartitioner())


class TestRoundTrip:
    def test_structure_preserved(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        assert loaded.tgm.num_groups == engine.tgm.num_groups
        assert len(loaded.dataset) == len(engine.dataset)
        assert sorted(map(len, loaded.tgm.group_members)) == sorted(
            map(len, engine.tgm.group_members)
        )

    def test_external_token_queries_agree(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        for query in sample_queries(engine.dataset, 10, seed=41):
            tokens = [engine.dataset.universe.token_of(t) for t in query.distinct]
            original = {
                (frozenset(engine.tokens_of(i)), round(s, 12))
                for i, s in engine.range(tokens, 0.5).matches
            }
            reloaded = {
                (frozenset(str(t) for t in loaded.tokens_of(i)), round(s, 12))
                for i, s in loaded.range([str(t) for t in tokens], 0.5).matches
            }
            assert {(frozenset(str(t) for t in ts), s) for ts, s in original} == reloaded

    def test_measure_and_backend_preserved(self, zipf_small, tmp_path):
        dataset = Dataset(list(zipf_small.records), zipf_small.universe.copy())
        engine = LES3.build(
            dataset,
            num_groups=4,
            partitioner=MinTokenPartitioner(),
            measure="cosine",
            backend="roaring",
        )
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        assert loaded.measure.name == "cosine"
        assert loaded.tgm.backend == "roaring"

    def test_save_is_idempotent(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        save_engine(engine, tmp_path / "index")
        assert load_engine(tmp_path / "index").tgm.num_groups == engine.tgm.num_groups


class TestDeleteRoundTrip:
    """An engine that saw remove_set must save and load (manifest v2)."""

    def assert_same_answers(self, engine, loaded, queries, threshold=0.4, k=5):
        for query in queries:
            tokens = [engine.dataset.universe.token_of(t) for t in query.distinct]
            loaded_tokens = [str(t) for t in tokens]
            live_range = {
                (frozenset(str(t) for t in engine.tokens_of(i)), s)
                for i, s in engine.range(tokens, threshold).matches
            }
            reloaded_range = {
                (frozenset(str(t) for t in loaded.tokens_of(i)), s)
                for i, s in loaded.range(loaded_tokens, threshold).matches
            }
            assert live_range == reloaded_range
            live_knn = [s for _, s in engine.knn(tokens, k).matches]
            reloaded_knn = [s for _, s in loaded.knn(loaded_tokens, k).matches]
            assert live_knn == reloaded_knn

    def test_round_trip_after_removes(self, engine, tmp_path):
        engine.remove(2)
        engine.remove(17)
        engine.remove(105)
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        assert loaded.removed == {2, 17, 105}
        assert len(loaded.dataset) == len(engine.dataset)  # indices stay stable
        self.assert_same_answers(engine, loaded, sample_queries(engine.dataset, 8, seed=44))
        assert loaded.join(0.6).pairs == engine.join(0.6).pairs

    def test_round_trip_after_interleaved_updates(self, engine, tmp_path):
        engine.remove(0)
        engine.insert(["brand", "new", "tokens"])
        engine.remove(30)
        engine.insert(["9000"])
        save_engine(engine, tmp_path / "index")
        loaded = load_engine(tmp_path / "index")
        assert loaded.removed == {0, 30}
        self.assert_same_answers(engine, loaded, sample_queries(engine.dataset, 6, seed=45))
        assert loaded.join(0.5).pairs == engine.join(0.5).pairs

    def test_verify_mode_round_trips(self, engine, tmp_path):
        engine.verify = "scalar"
        save_engine(engine, tmp_path / "index")
        assert load_engine(tmp_path / "index").verify == "scalar"
        engine.verify = "columnar"
        save_engine(engine, tmp_path / "index")
        assert load_engine(tmp_path / "index").verify == "columnar"

    def test_v1_directories_still_load(self, engine, tmp_path):
        """Pre-delete-aware manifests (format 1) must keep loading."""
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        del manifest["deleted"]
        del manifest["verify"]
        manifest_path.write_text(json.dumps(manifest))
        loaded = load_engine(tmp_path / "index")
        assert loaded.removed == set()
        assert loaded.verify == "columnar"
        assert loaded.tgm.num_groups == engine.tgm.num_groups

    def test_deleted_out_of_range_rejected(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["deleted"] = [len(engine.dataset) + 5]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="deleted"):
            load_engine(tmp_path / "index")

    def test_unknown_verify_mode_rejected(self, engine, tmp_path):
        """A corrupt 'verify' fails at load, not at the first query."""
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["verify"] = "scalr"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="verify"):
            load_engine(tmp_path / "index")

    def test_orphaned_record_is_not_laundered_into_tombstone(self, engine, tmp_path):
        """save writes the engine's delete log, not the unassigned records.

        A record missing from every group *without* having been removed is
        an orphan (partitioner bug, hand-built TGM); the saved index must
        keep failing the load-time coverage check instead of silently
        legitimizing it as a delete.
        """
        for members in engine.tgm.group_members:
            if members:
                members.pop()  # orphan one record behind the engine's back
                break
        save_engine(engine, tmp_path / "index")
        with pytest.raises(ValueError, match="cover"):
            load_engine(tmp_path / "index")

    @pytest.mark.parametrize("bad", [["0"], [True], [1.5], "0", {"a": 1}])
    def test_deleted_non_integer_rejected(self, engine, tmp_path, bad):
        """Corrupt 'deleted' entries must raise ValueError, not TypeError."""
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["deleted"] = bad
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="deleted"):
            load_engine(tmp_path / "index")

    def test_deleted_record_still_grouped_rejected(self, engine, tmp_path):
        """A record cannot be both deleted and a group member."""
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["deleted"] = [0]  # record 0 is still in groups.json
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="cover"):
            load_engine(tmp_path / "index")


class TestCorruptionDetection:
    def test_version_mismatch(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            load_engine(tmp_path / "index")

    def test_record_count_mismatch(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        data_path = tmp_path / "index" / "dataset.txt"
        data_path.write_text(data_path.read_text() + "extra tokens here\n")
        with pytest.raises(ValueError, match="corrupt"):
            load_engine(tmp_path / "index")

    def test_groups_not_covering(self, engine, tmp_path):
        save_engine(engine, tmp_path / "index")
        groups_path = tmp_path / "index" / "groups.json"
        groups = json.loads(groups_path.read_text())
        groups[0] = groups[0][1:]  # drop one record
        groups_path.write_text(json.dumps(groups))
        with pytest.raises(ValueError, match="cover"):
            load_engine(tmp_path / "index")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_engine(tmp_path / "nope")

    def test_tampered_dataset_same_count(self, engine, tmp_path):
        """Editing dataset.txt without changing the record count is caught."""
        save_engine(engine, tmp_path / "index")
        data_path = tmp_path / "index" / "dataset.txt"
        lines = data_path.read_text().splitlines()
        lines[0] = "totally different tokens"
        data_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="digest"):
            load_engine(tmp_path / "index")

    def test_digestless_v2_manifest_still_loads(self, engine, tmp_path):
        """Saves written before dataset_digest existed skip the check."""
        save_engine(engine, tmp_path / "index")
        manifest_path = tmp_path / "index" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["dataset_digest"]
        manifest_path.write_text(json.dumps(manifest))
        assert load_engine(tmp_path / "index").tgm.num_groups == engine.tgm.num_groups
