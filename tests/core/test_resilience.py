"""Resilience primitives: deadlines, retry policy, circuit breaker.

The circuit breaker additionally gets a Hypothesis state machine:
whatever interleaving of failures, successes, probes, and clock
advances occurs, the breaker never enters an invalid state, never
refuses progress forever, and always re-closes after a healthy probe.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)


class TestDeadline:
    def test_remaining_and_expired(self):
        assert not Deadline(60.0).expired()
        assert Deadline(0.0).expired()
        assert Deadline(-1.0).remaining() < 0.0

    def test_check_raises_with_context(self):
        deadline = Deadline(0.0)
        with pytest.raises(DeadlineExceeded, match="awaiting shard 3"):
            deadline.check("awaiting shard 3")
        Deadline(60.0).check("plenty of budget")  # no raise

    def test_from_timeout_ms(self):
        assert Deadline.from_timeout_ms(None) is None
        deadline = Deadline.from_timeout_ms(50)
        assert 0.0 < deadline.remaining() <= 0.05

    def test_deadline_exceeded_is_timeout(self):
        assert issubclass(DeadlineExceeded, TimeoutError)


class TestRetryPolicy:
    def test_exponential_schedule_no_jitter(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert [round(policy.delay(n), 3) for n in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_max_delay_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, jitter=0.0)
        assert policy.delay(5) == 2.0

    def test_jitter_only_shrinks(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 6):
            delay = policy.delay(attempt)
            assert 0.25 <= delay <= 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=10.0):
        state = {"now": 0.0}
        breaker = CircuitBreaker(threshold, reset, clock=lambda: state["now"])
        return breaker, state

    def test_opens_after_threshold(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # failures were not consecutive

    def test_half_open_single_probe(self):
        breaker, state = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        state["now"] = 10.0
        assert breaker.allow()  # the one half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # a second concurrent probe is refused

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, state = self.make(threshold=1, reset=10.0)
        breaker.record_failure()
        state["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        state["now"] = 19.0  # 9s since the re-open: still cooling down
        assert not breaker.allow()
        state["now"] = 20.0
        assert breaker.allow()

    def test_probe_success_closes(self):
        breaker, state = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        state["now"] = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(0)
        with pytest.raises(ValueError, match="reset_seconds"):
            CircuitBreaker(1, -1.0)


class BreakerMachine(RuleBasedStateMachine):
    """Adversarial interleavings of failures, probes, and clock advances.

    Two liveness/safety properties:

    * the breaker is always in one of its three named states, and
      ``allow()`` never raises or blocks;
    * from *any* state, one clock advance plus one healthy probe
      re-closes it — the breaker can never deadlock into refusing a
      healthy shard forever.
    """

    RESET = 10.0

    def __init__(self) -> None:
        super().__init__()
        self.now = 0.0
        self.breaker = CircuitBreaker(3, self.RESET, clock=lambda: self.now)

    @rule(delta=st.floats(min_value=0.0, max_value=25.0, allow_nan=False))
    def advance_clock(self, delta):
        self.now += delta

    @rule()
    def shard_fails(self):
        if self.breaker.allow():
            self.breaker.record_failure()

    @rule()
    def shard_succeeds(self):
        if self.breaker.allow():
            self.breaker.record_success()
            assert self.breaker.state == "closed"

    @rule()
    def probe_without_resolution(self):
        # A caller asked permission but never reported back (e.g. died).
        self.breaker.allow()

    @rule()
    def healthy_shard_always_recovers(self):
        if self.breaker.state == "open":
            self.now += self.RESET  # cooldown elapses
            assert self.breaker.allow(), "open breaker refused its half-open probe"
        # closed: allowed trivially; half_open: an in-flight probe may
        # report back directly.  Either way one success must re-close.
        self.breaker.record_success()
        assert self.breaker.state == "closed"
        assert self.breaker.allow()

    @invariant()
    def state_is_always_valid(self):
        assert self.breaker.state in ("closed", "open", "half_open")

    @invariant()
    def closed_always_allows(self):
        if self.breaker.state == "closed":
            assert self.breaker.allow()


TestBreakerStateMachine = BreakerMachine.TestCase
TestBreakerStateMachine.settings = settings(max_examples=60, stateful_step_count=30)
